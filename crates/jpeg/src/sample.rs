//! Chroma down- and upsampling.
//!
//! The upsampler implements paper **Algorithm 1** verbatim: a blockwise
//! "fancy" (triangular) filter that expands an 8-sample chroma row segment
//! to 16 output samples using only that segment — end pixels replicate
//! instead of peeking at neighbouring blocks. The paper chose this
//! formulation so two GPU work-items can upsample one row without
//! cross-block communication (§4.2); we use the identical arithmetic on the
//! CPU so both devices produce the same bytes.
//!
//! A row-wide variant (the filter libjpeg applies across whole rows) is also
//! provided for comparison and is exercised by tests and an ablation bench.

/// Paper Algorithm 1: upsample an 8-sample row segment to 16 samples.
///
/// Even outputs sit on the original samples' left half, odd outputs are the
/// 3:1 weighted blends; rounding alternates +2 / +1 exactly as printed.
#[inline]
pub fn upsample_h2v1_block8(input: &[u8; 8]) -> [u8; 16] {
    let inp = |i: usize| input[i] as u16;
    let mut out = [0u8; 16];
    out[0] = input[0];
    out[1] = ((inp(0) * 3 + inp(1) + 2) / 4) as u8;
    out[2] = ((inp(1) * 3 + inp(0) + 1) / 4) as u8;
    out[3] = ((inp(1) * 3 + inp(2) + 2) / 4) as u8;
    out[4] = ((inp(2) * 3 + inp(1) + 1) / 4) as u8;
    out[5] = ((inp(2) * 3 + inp(3) + 2) / 4) as u8;
    out[6] = ((inp(3) * 3 + inp(2) + 1) / 4) as u8;
    out[7] = ((inp(3) * 3 + inp(4) + 2) / 4) as u8;
    out[8] = ((inp(4) * 3 + inp(3) + 1) / 4) as u8;
    out[9] = ((inp(4) * 3 + inp(5) + 2) / 4) as u8;
    out[10] = ((inp(5) * 3 + inp(4) + 1) / 4) as u8;
    out[11] = ((inp(5) * 3 + inp(6) + 2) / 4) as u8;
    out[12] = ((inp(6) * 3 + inp(5) + 1) / 4) as u8;
    out[13] = ((inp(6) * 3 + inp(7) + 2) / 4) as u8;
    out[14] = ((inp(7) * 3 + inp(6) + 1) / 4) as u8;
    out[15] = input[7];
    out
}

/// The even-ID work-item half of Algorithm 1: produces `Out[0..8)` from
/// `In[0..=4]` (§4.2: "The work-item with the even ID reads `In[0]` to `In[4]`").
#[inline]
pub fn upsample_h2v1_even_half(input: &[u8]) -> [u8; 8] {
    debug_assert!(input.len() >= 5);
    let inp = |i: usize| input[i] as u16;
    [
        input[0],
        ((inp(0) * 3 + inp(1) + 2) / 4) as u8,
        ((inp(1) * 3 + inp(0) + 1) / 4) as u8,
        ((inp(1) * 3 + inp(2) + 2) / 4) as u8,
        ((inp(2) * 3 + inp(1) + 1) / 4) as u8,
        ((inp(2) * 3 + inp(3) + 2) / 4) as u8,
        ((inp(3) * 3 + inp(2) + 1) / 4) as u8,
        ((inp(3) * 3 + inp(4) + 2) / 4) as u8,
    ]
}

/// The odd-ID work-item half of Algorithm 1: produces `Out[8..16)` from
/// `In[3..=7]` (indices relative to the 8-sample segment).
#[inline]
pub fn upsample_h2v1_odd_half(input: &[u8]) -> [u8; 8] {
    debug_assert!(input.len() >= 8);
    let inp = |i: usize| input[i] as u16;
    [
        ((inp(4) * 3 + inp(3) + 1) / 4) as u8,
        ((inp(4) * 3 + inp(5) + 2) / 4) as u8,
        ((inp(5) * 3 + inp(4) + 1) / 4) as u8,
        ((inp(5) * 3 + inp(6) + 2) / 4) as u8,
        ((inp(6) * 3 + inp(5) + 1) / 4) as u8,
        ((inp(6) * 3 + inp(7) + 2) / 4) as u8,
        ((inp(7) * 3 + inp(6) + 1) / 4) as u8,
        input[7],
    ]
}

/// Upsample a whole chroma row of `len_in` samples to `2 * len_in` samples by
/// applying Algorithm 1 to each aligned 8-sample segment.
pub fn upsample_row_h2v1_blockwise(input: &[u8], output: &mut [u8]) {
    debug_assert_eq!(output.len(), input.len() * 2);
    debug_assert_eq!(input.len() % 8, 0);
    for (seg_in, seg_out) in input.chunks_exact(8).zip(output.chunks_exact_mut(16)) {
        let mut arr = [0u8; 8];
        arr.copy_from_slice(seg_in);
        seg_out.copy_from_slice(&upsample_h2v1_block8(&arr));
    }
}

/// Row-wide triangular h2v1 upsampling (libjpeg "fancy" filter): interior
/// outputs read across segment boundaries; only image edges replicate.
pub fn upsample_row_h2v1_rowwide(input: &[u8], output: &mut [u8]) {
    let n = input.len();
    debug_assert_eq!(output.len(), n * 2);
    if n == 0 {
        return;
    }
    output[0] = input[0];
    for i in 0..n {
        let cur = input[i] as u16 * 3;
        if i > 0 {
            output[2 * i] = ((cur + input[i - 1] as u16 + 1) / 4) as u8;
        }
        if i + 1 < n {
            output[2 * i + 1] = ((cur + input[i + 1] as u16 + 2) / 4) as u8;
        }
    }
    output[2 * n - 1] = input[n - 1];
}

/// Duplicate-sample ("non-fancy") h2v1 upsampling, kept for the ablation
/// bench: cheapest filter, visibly blockier chroma.
pub fn upsample_row_h2v1_replicate(input: &[u8], output: &mut [u8]) {
    debug_assert_eq!(output.len(), input.len() * 2);
    for (i, &s) in input.iter().enumerate() {
        output[2 * i] = s;
        output[2 * i + 1] = s;
    }
}

/// Encoder direction: average horizontal sample pairs (h2v1).
pub fn downsample_row_h2v1(input: &[u8], output: &mut [u8]) {
    debug_assert_eq!(input.len(), output.len() * 2);
    for (o, pair) in output.iter_mut().zip(input.chunks_exact(2)) {
        *o = (pair[0] as u16 + pair[1] as u16).div_ceil(2) as u8;
    }
}

/// Encoder direction: average a 2x2 neighbourhood (h2v2, for 4:2:0).
pub fn downsample_h2v2(row0: &[u8], row1: &[u8], output: &mut [u8]) {
    debug_assert_eq!(row0.len(), row1.len());
    debug_assert_eq!(row0.len(), output.len() * 2);
    for (i, o) in output.iter_mut().enumerate() {
        let s = row0[2 * i] as u16
            + row0[2 * i + 1] as u16
            + row1[2 * i] as u16
            + row1[2 * i + 1] as u16;
        *o = ((s + 2) / 4) as u8;
    }
}

/// Vertical doubling used for 4:2:0 ("similar manner as 4:2:2", §6): the
/// blockwise triangular filter applied between vertically adjacent rows.
#[inline]
pub fn upsample_v2_pair(near: u8, far: u8) -> u8 {
    ((near as u16 * 3 + far as u16 + 2) / 4) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm1_reproduces_paper_listing() {
        // A recognisable ramp; check a few outputs against the printed rules.
        let inp = [0u8, 40, 80, 120, 160, 200, 240, 255];
        let out = upsample_h2v1_block8(&inp);
        assert_eq!(out[0], 0); // Out[0] = In[0]
        assert_eq!(out[1], ((40 + 2) / 4) as u8); // (In[0]*3 + In[1] + 2)/4 = 10
        assert_eq!(out[2], (((40 * 3) + 1) / 4) as u8); // = 30
        assert_eq!(out[8], ((160 * 3 + 120 + 1) / 4) as u8);
        assert_eq!(out[15], 255); // Out[15] = In[7]
    }

    #[test]
    fn halves_concatenate_to_full_block() {
        let inp: [u8; 8] = [13, 7, 200, 156, 92, 31, 255, 0];
        let full = upsample_h2v1_block8(&inp);
        let even = upsample_h2v1_even_half(&inp);
        let odd = upsample_h2v1_odd_half(&inp);
        assert_eq!(&full[0..8], &even);
        assert_eq!(&full[8..16], &odd);
    }

    #[test]
    fn constant_input_stays_constant() {
        let inp = [77u8; 8];
        let out = upsample_h2v1_block8(&inp);
        assert!(out.iter().all(|&v| v == 77));
        let mut row = [0u8; 32];
        upsample_row_h2v1_rowwide(&[77u8; 16], &mut row);
        assert!(row.iter().all(|&v| v == 77));
    }

    #[test]
    fn blockwise_and_rowwide_agree_inside_blocks() {
        // Interior outputs (not adjacent to an 8-boundary) match.
        let input: Vec<u8> = (0..16).map(|i| (i * 16) as u8).collect();
        let mut blockwise = vec![0u8; 32];
        let mut rowwide = vec![0u8; 32];
        upsample_row_h2v1_blockwise(&input, &mut blockwise);
        upsample_row_h2v1_rowwide(&input, &mut rowwide);
        // Outputs 2..14 come from inputs 0..8 without boundary effects.
        for i in 2..14 {
            assert_eq!(blockwise[i], rowwide[i], "index {i}");
        }
        // The seam between segments may differ (replication vs true blend).
        assert_ne!(&blockwise[..], &rowwide[..]);
    }

    #[test]
    fn upsample_preserves_mean_roughly() {
        let input: Vec<u8> = (0..24).map(|i| ((i * 37) % 256) as u8).collect();
        let mut out = vec![0u8; 48];
        upsample_row_h2v1_blockwise(&input, &mut out);
        let mean_in: f64 = input.iter().map(|&v| v as f64).sum::<f64>() / input.len() as f64;
        let mean_out: f64 = out.iter().map(|&v| v as f64).sum::<f64>() / out.len() as f64;
        assert!((mean_in - mean_out).abs() < 4.0);
    }

    #[test]
    fn downsample_h2v1_averages() {
        let input = [10u8, 20, 30, 30, 0, 255];
        let mut out = [0u8; 3];
        downsample_row_h2v1(&input, &mut out);
        assert_eq!(out, [15, 30, 128]);
    }

    #[test]
    fn downsample_h2v2_averages() {
        let r0 = [0u8, 4, 100, 104];
        let r1 = [8u8, 12, 108, 112];
        let mut out = [0u8; 2];
        downsample_h2v2(&r0, &r1, &mut out);
        assert_eq!(out, [6, 106]);
    }

    #[test]
    fn replicate_duplicates() {
        let mut out = [0u8; 4];
        upsample_row_h2v1_replicate(&[9, 200], &mut out);
        assert_eq!(out, [9, 9, 200, 200]);
    }

    #[test]
    fn downsample_then_upsample_is_close_on_smooth_data() {
        // Smooth ramp survives the down/up cycle within a small error.
        let input: Vec<u8> = (0..32).map(|i| (i * 8) as u8).collect();
        let mut down = vec![0u8; 16];
        downsample_row_h2v1(&input, &mut down);
        let mut up = vec![0u8; 32];
        upsample_row_h2v1_blockwise(&down, &mut up);
        for i in 2..30 {
            assert!(
                (up[i] as i32 - input[i] as i32).abs() <= 8,
                "i={i}: {} vs {}",
                up[i],
                input[i]
            );
        }
    }
}
