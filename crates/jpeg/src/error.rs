//! Error type shared by the codec.

use std::fmt;

/// Errors produced while parsing, decoding or encoding JPEG data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The byte stream ended before a complete syntactic unit was read.
    UnexpectedEof,
    /// A marker segment was malformed; the string names the offending field.
    Malformed(&'static str),
    /// A feature of the JPEG standard this baseline codec does not support
    /// (progressive scans, arithmetic coding, 12-bit precision, ...).
    Unsupported(&'static str),
    /// A Huffman code was read that is absent from the active table.
    BadHuffmanCode,
    /// A restart marker was expected but something else was found.
    RestartMismatch { expected: u8, found: u8 },
    /// Image dimensions are zero or exceed the supported 65535 limit.
    BadDimensions,
    /// The caller supplied a buffer of the wrong length.
    BufferSize { expected: usize, got: usize },
    /// The frame uses arithmetic entropy coding (SOF9/SOF10). Recognized
    /// but not implemented: this codec is Huffman-only, like the paper's
    /// evaluation set and the overwhelming majority of deployed JPEGs.
    ArithmeticCoding,
    /// The stream is a hierarchical JPEG (DHP marker, T.81 Annex J).
    /// Recognized but not implemented — hierarchical frames are vanishingly
    /// rare in practice and out of scope for this decoder.
    Hierarchical,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnexpectedEof => write!(f, "unexpected end of JPEG stream"),
            Error::Malformed(what) => write!(f, "malformed JPEG: {what}"),
            Error::Unsupported(what) => write!(f, "unsupported JPEG feature: {what}"),
            Error::BadHuffmanCode => write!(f, "invalid Huffman code in entropy stream"),
            Error::RestartMismatch { expected, found } => {
                write!(
                    f,
                    "restart marker mismatch: expected RST{expected}, found {found:#x}"
                )
            }
            Error::BadDimensions => write!(f, "invalid image dimensions"),
            Error::BufferSize { expected, got } => {
                write!(f, "buffer size mismatch: expected {expected}, got {got}")
            }
            Error::ArithmeticCoding => {
                write!(f, "arithmetic-coded JPEG (SOF9/SOF10) is not supported")
            }
            Error::Hierarchical => {
                write!(f, "hierarchical JPEG (DHP) is not supported")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;
