//! The whole-image coefficient buffer.
//!
//! Paper §3 replaces libjpeg-turbo's MCU-row buffers with whole-image
//! buffers "large enough to keep an image as a whole in memory", and §4
//! fixes the layout as "Y blocks followed by Cb blocks followed by Cr
//! blocks" so the upsampling kernel never has to skip over interleaved luma
//! data — the property the coalescing ablation bench measures.

use crate::geometry::Geometry;

/// Whole-image DCT coefficient storage: one contiguous `i16` allocation,
/// blocks of 64 natural-order coefficients, planar per component.
#[derive(Debug, Clone)]
pub struct CoefBuffer {
    data: Vec<i16>,
}

impl CoefBuffer {
    /// Allocate a zeroed buffer for an image's geometry.
    pub fn new(geom: &Geometry) -> Self {
        CoefBuffer { data: vec![0; geom.total_blocks * 64] }
    }

    /// Borrow the coefficients of one block (natural order).
    #[inline]
    pub fn block(&self, block_index: usize) -> &[i16; 64] {
        let off = block_index * 64;
        self.data[off..off + 64].try_into().expect("block slice")
    }

    /// Mutably borrow one block.
    #[inline]
    pub fn block_mut(&mut self, block_index: usize) -> &mut [i16; 64] {
        let off = block_index * 64;
        (&mut self.data[off..off + 64]).try_into().expect("block slice")
    }

    /// The raw flat storage (e.g. for simulated PCIe transfer sizing).
    #[inline]
    pub fn as_slice(&self) -> &[i16] {
        &self.data
    }

    /// Mutable access to the raw flat storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [i16] {
        &mut self.data
    }

    /// Byte length of the buffer (what a host→device write would ship).
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.data.len() * 2
    }

    /// Copy the coefficient range covering MCU rows `[start, end)` of every
    /// component into a packed staging vector, in component order. This is
    /// the chunk payload of the pipelined execution mode (§4.5): each
    /// Huffman-decoded chunk ships only its own blocks.
    pub fn pack_mcu_rows(&self, geom: &Geometry, start: usize, end: usize) -> Vec<i16> {
        let mut out = Vec::with_capacity(geom.blocks_in_mcu_rows(start, end) * 64);
        for (c, comp) in geom.comps.iter().enumerate() {
            let by0 = start * comp.v_samp;
            let by1 = (end * comp.v_samp).min(comp.height_blocks);
            for by in by0..by1 {
                let first = geom.block_index(c, 0, by) * 64;
                let last = first + comp.width_blocks * 64;
                out.extend_from_slice(&self.data[first..last]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Subsampling;

    #[test]
    fn allocation_matches_geometry() {
        let g = Geometry::new(32, 16, Subsampling::S422).unwrap();
        let buf = CoefBuffer::new(&g);
        assert_eq!(buf.as_slice().len(), g.total_blocks * 64);
        assert_eq!(buf.byte_len(), g.total_blocks * 128);
    }

    #[test]
    fn block_views_are_disjoint_and_stable() {
        let g = Geometry::new(32, 16, Subsampling::S444).unwrap();
        let mut buf = CoefBuffer::new(&g);
        buf.block_mut(0)[0] = 11;
        buf.block_mut(1)[0] = 22;
        assert_eq!(buf.block(0)[0], 11);
        assert_eq!(buf.block(1)[0], 22);
        assert_eq!(buf.block(0)[1], 0);
    }

    #[test]
    fn pack_mcu_rows_collects_all_components() {
        let g = Geometry::new(16, 16, Subsampling::S422).unwrap();
        let mut buf = CoefBuffer::new(&g);
        // Tag each block with its index.
        for b in 0..g.total_blocks {
            buf.block_mut(b)[0] = b as i16;
        }
        // MCU row 0 of a 16x16 4:2:2 image: Y row 0 (2 blocks), Cb row 0
        // (1 block), Cr row 0 (1 block).
        let packed = buf.pack_mcu_rows(&g, 0, 1);
        assert_eq!(packed.len(), 4 * 64);
        let tags: Vec<i16> = packed.chunks_exact(64).map(|b| b[0]).collect();
        let y_off = 0;
        let cb_off = g.comps[1].plane_block_offset as i16;
        let cr_off = g.comps[2].plane_block_offset as i16;
        assert_eq!(tags, vec![y_off, y_off + 1, cb_off, cr_off]);
    }

    #[test]
    fn pack_full_image_equals_whole_buffer_size() {
        let g = Geometry::new(24, 24, Subsampling::S444).unwrap();
        let buf = CoefBuffer::new(&g);
        let packed = buf.pack_mcu_rows(&g, 0, g.mcus_y);
        assert_eq!(packed.len(), buf.as_slice().len());
    }
}
