//! The whole-image coefficient buffer.
//!
//! Paper §3 replaces libjpeg-turbo's MCU-row buffers with whole-image
//! buffers "large enough to keep an image as a whole in memory", and §4
//! fixes the layout as "Y blocks followed by Cb blocks followed by Cr
//! blocks" so the upsampling kernel never has to skip over interleaved luma
//! data — the property the coalescing ablation bench measures.
//!
//! Alongside the coefficients the buffer carries one **end-of-block index**
//! per block: the highest zigzag position that may hold a nonzero
//! coefficient, recorded for free during entropy decode. Downstream IDCT
//! stages dispatch on it to sparse fast paths (see [`crate::dct::sparse`])
//! without rescanning the block. The stored value is an *upper bound* —
//! using a larger EOB is always correct, just slower — and every write path
//! that bypasses entropy decode resets it to the dense-safe 63.

use crate::geometry::Geometry;

/// Whole-image DCT coefficient storage: one contiguous `i16` allocation,
/// blocks of 64 natural-order coefficients, planar per component, plus a
/// per-block EOB side array.
#[derive(Debug, Clone)]
pub struct CoefBuffer {
    data: Vec<i16>,
    /// Per-block EOB upper bound (highest possibly-nonzero zigzag index).
    eob: Vec<u8>,
}

/// Dense-safe EOB: assume every coefficient may be nonzero.
pub const EOB_DENSE: u8 = 63;

impl CoefBuffer {
    /// Allocate a zeroed buffer for an image's geometry.
    pub fn new(geom: &Geometry) -> Self {
        CoefBuffer {
            data: vec![0; geom.total_blocks * 64],
            eob: vec![EOB_DENSE; geom.total_blocks],
        }
    }

    /// Number of blocks the buffer holds.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.eob.len()
    }

    /// Re-shape the buffer for another image's geometry, reusing the
    /// existing allocations. All coefficients are zeroed and every EOB is
    /// reset to the dense-safe maximum, exactly as a fresh buffer starts —
    /// what callers that may leave blocks untouched (e.g. salvage of a
    /// truncated stream) need.
    pub fn reset_for(&mut self, geom: &Geometry) {
        self.data.clear();
        self.data.resize(geom.total_blocks * 64, 0);
        self.eob.clear();
        self.eob.resize(geom.total_blocks, EOB_DENSE);
    }

    /// Re-shape for another image *without* clearing: contents are
    /// unspecified (stale from the previous image) until written. A full
    /// entropy decode overwrites every block's 64 coefficients and its EOB,
    /// so the decode paths skip the whole-buffer memset `reset_for` pays —
    /// the difference is measurable on batch decodes (see BENCH_PR2.json).
    pub fn reset_for_entropy(&mut self, geom: &Geometry) {
        self.data.resize(geom.total_blocks * 64, 0);
        self.eob.resize(geom.total_blocks, EOB_DENSE);
    }

    /// Borrow the coefficients of one block (natural order).
    #[inline]
    pub fn block(&self, block_index: usize) -> &[i16; 64] {
        let off = block_index * 64;
        self.data[off..off + 64].try_into().expect("block slice")
    }

    /// Mutably borrow one block. Resets the block's EOB to the dense-safe
    /// maximum, since the caller may write anywhere; use [`Self::set_eob`]
    /// afterwards to restore a tighter bound.
    #[inline]
    pub fn block_mut(&mut self, block_index: usize) -> &mut [i16; 64] {
        self.eob[block_index] = EOB_DENSE;
        let off = block_index * 64;
        (&mut self.data[off..off + 64])
            .try_into()
            .expect("block slice")
    }

    /// The block's EOB upper bound (highest possibly-nonzero zigzag index).
    #[inline]
    pub fn eob(&self, block_index: usize) -> u8 {
        self.eob[block_index]
    }

    /// Record a block's EOB. `eob` must bound the highest nonzero zigzag
    /// position actually present, or sparse IDCT dispatch will drop
    /// coefficients.
    #[inline]
    pub fn set_eob(&mut self, block_index: usize, eob: u8) {
        debug_assert!(eob <= EOB_DENSE);
        self.eob[block_index] = eob;
    }

    /// The raw flat storage (e.g. for simulated PCIe transfer sizing).
    #[inline]
    pub fn as_slice(&self) -> &[i16] {
        &self.data
    }

    /// Mutable access to the raw flat storage. The caller may write any
    /// coefficient, so every block's EOB is reset to the dense-safe
    /// maximum — previously recorded sparsity is discarded.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [i16] {
        self.eob.fill(EOB_DENSE);
        &mut self.data
    }

    /// Byte length of the buffer (what a host→device write would ship).
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.data.len() * 2
    }

    /// Copy the coefficient range covering MCU rows `[start, end)` of every
    /// component into a packed staging vector, in component order. This is
    /// the chunk payload of the pipelined execution mode (§4.5): each
    /// Huffman-decoded chunk ships only its own blocks.
    pub fn pack_mcu_rows(&self, geom: &Geometry, start: usize, end: usize) -> Vec<i16> {
        let mut out = Vec::new();
        self.pack_mcu_rows_into(geom, start, end, &mut out);
        out
    }

    /// Like [`Self::pack_mcu_rows`] but reuses `out`'s allocation — the
    /// pipelined executor recycles chunk buffers through a pool so
    /// steady-state decode performs no per-chunk heap allocation.
    pub fn pack_mcu_rows_into(
        &self,
        geom: &Geometry,
        start: usize,
        end: usize,
        out: &mut Vec<i16>,
    ) {
        out.clear();
        out.reserve(geom.blocks_in_mcu_rows(start, end) * 64);
        for r in packed_block_ranges(geom, start, end) {
            out.extend_from_slice(&self.data[r.start * 64..r.end * 64]);
        }
    }

    /// Pack the per-block EOB sidecar for MCU rows `[start, end)` in
    /// exactly the block order of [`Self::pack_mcu_rows`] — the one extra
    /// byte per block the GPU path ships so its IDCT kernels can dispatch
    /// on sparsity like the CPU ones (PR 5). Both packers walk
    /// `packed_block_ranges`, so the orders cannot drift apart.
    pub fn pack_eobs_mcu_rows_into(
        &self,
        geom: &Geometry,
        start: usize,
        end: usize,
        out: &mut Vec<u8>,
    ) {
        out.clear();
        out.reserve(geom.blocks_in_mcu_rows(start, end));
        for r in packed_block_ranges(geom, start, end) {
            out.extend_from_slice(&self.eob[r]);
        }
    }

    /// A copy of this buffer with every EOB forced to the dense-safe
    /// maximum — the pre-PR-5 "GPU baseline is dense" behaviour, kept for
    /// the bench ablation that measures what the GPU EOB dispatch buys.
    pub fn clone_with_dense_eobs(&self) -> Self {
        CoefBuffer {
            data: self.data.clone(),
            eob: vec![EOB_DENSE; self.eob.len()],
        }
    }

    /// Create a shared handle for concurrent block writes from multiple
    /// threads (the parallel restart-segment entropy decoder). The handle
    /// borrows the buffer exclusively, so no other access can overlap it.
    pub fn writer(&mut self) -> CoefWriter<'_> {
        CoefWriter {
            data: self.data.as_mut_ptr(),
            eob: self.eob.as_mut_ptr(),
            blocks: self.eob.len(),
            _marker: std::marker::PhantomData,
        }
    }
}

/// The packed block-index ranges of MCU rows `[start, end)`, in exactly
/// the order the packed buffers store them: per component, each block
/// row's contiguous index range. The coefficient packer and the EOB
/// sidecar packer both iterate this one definition — the GPU kernels'
/// `eob_base` arithmetic (byte `i` of the sidecar describes block `i` of
/// the packed coefficients) depends on the two orders never drifting
/// apart, so the traversal is written once.
fn packed_block_ranges<'a>(
    geom: &'a Geometry,
    start: usize,
    end: usize,
) -> impl Iterator<Item = std::ops::Range<usize>> + 'a {
    geom.comps.iter().enumerate().flat_map(move |(c, comp)| {
        let by0 = start * comp.v_samp;
        let by1 = (end * comp.v_samp).min(comp.height_blocks);
        (by0..by1).map(move |by| {
            let first = geom.block_index(c, 0, by);
            first..first + comp.width_blocks
        })
    })
}

/// Shared-write handle over a [`CoefBuffer`], allowing worker threads to
/// store decoded blocks directly into their disjoint regions instead of
/// accumulating `(index, block)` pairs and copying after a join.
///
/// Block granularity is the unit of disjointness: writes to *different*
/// block indices never alias (each block owns its 64 coefficients and its
/// EOB slot), so threads decoding disjoint MCU ranges — e.g. distinct
/// restart segments — can write concurrently without synchronization.
pub struct CoefWriter<'a> {
    data: *mut i16,
    eob: *mut u8,
    blocks: usize,
    _marker: std::marker::PhantomData<&'a mut CoefBuffer>,
}

// SAFETY: the writer only exposes `write_block`, whose contract (below)
// requires callers to keep concurrently written block indices disjoint;
// under that contract all pointer accesses are race-free.
unsafe impl Send for CoefWriter<'_> {}
unsafe impl Sync for CoefWriter<'_> {}

impl CoefWriter<'_> {
    /// Store one block's coefficients and EOB.
    ///
    /// # Safety
    ///
    /// No two threads may call this concurrently with the same
    /// `block_index`. Callers decoding restart segments satisfy this by
    /// construction: segments partition the MCU sequence, and every block
    /// index belongs to exactly one MCU.
    #[inline]
    pub unsafe fn write_block(&self, block_index: usize, block: &[i16; 64], eob: u8) {
        assert!(block_index < self.blocks, "block index out of range");
        // SAFETY: in-bounds per the assert; disjointness per the contract.
        unsafe {
            std::ptr::copy_nonoverlapping(block.as_ptr(), self.data.add(block_index * 64), 64);
            *self.eob.add(block_index) = eob;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Subsampling;

    #[test]
    fn allocation_matches_geometry() {
        let g = Geometry::new(32, 16, Subsampling::S422).unwrap();
        let buf = CoefBuffer::new(&g);
        assert_eq!(buf.as_slice().len(), g.total_blocks * 64);
        assert_eq!(buf.byte_len(), g.total_blocks * 128);
    }

    #[test]
    fn block_views_are_disjoint_and_stable() {
        let g = Geometry::new(32, 16, Subsampling::S444).unwrap();
        let mut buf = CoefBuffer::new(&g);
        buf.block_mut(0)[0] = 11;
        buf.block_mut(1)[0] = 22;
        assert_eq!(buf.block(0)[0], 11);
        assert_eq!(buf.block(1)[0], 22);
        assert_eq!(buf.block(0)[1], 0);
    }

    #[test]
    fn eob_defaults_dense_and_block_mut_resets_it() {
        let g = Geometry::new(16, 16, Subsampling::S444).unwrap();
        let mut buf = CoefBuffer::new(&g);
        assert_eq!(buf.eob(0), EOB_DENSE);
        buf.set_eob(0, 3);
        assert_eq!(buf.eob(0), 3);
        // Any raw rewrite must fall back to the dense-safe bound.
        buf.block_mut(0)[63] = 5;
        assert_eq!(buf.eob(0), EOB_DENSE);
        buf.set_eob(1, 9);
        let _ = buf.as_mut_slice();
        assert_eq!(buf.eob(1), EOB_DENSE);
    }

    #[test]
    fn writer_stores_blocks_and_eobs() {
        let g = Geometry::new(32, 32, Subsampling::S444).unwrap();
        let mut buf = CoefBuffer::new(&g);
        let mut block = [0i16; 64];
        block[0] = 7;
        block[9] = -3;
        {
            let w = buf.writer();
            // SAFETY: single thread, distinct indices.
            unsafe {
                w.write_block(2, &block, 9);
                w.write_block(5, &block, 9);
            }
        }
        assert_eq!(buf.block(2)[0], 7);
        assert_eq!(buf.block(5)[9], -3);
        assert_eq!(buf.eob(2), 9);
        assert_eq!(buf.block(3)[0], 0);
    }

    #[test]
    fn pack_mcu_rows_collects_all_components() {
        let g = Geometry::new(16, 16, Subsampling::S422).unwrap();
        let mut buf = CoefBuffer::new(&g);
        // Tag each block with its index.
        for b in 0..g.total_blocks {
            buf.block_mut(b)[0] = b as i16;
        }
        // MCU row 0 of a 16x16 4:2:2 image: Y row 0 (2 blocks), Cb row 0
        // (1 block), Cr row 0 (1 block).
        let packed = buf.pack_mcu_rows(&g, 0, 1);
        assert_eq!(packed.len(), 4 * 64);
        let tags: Vec<i16> = packed.chunks_exact(64).map(|b| b[0]).collect();
        let y_off = 0;
        let cb_off = g.comps[1].plane_block_offset as i16;
        let cr_off = g.comps[2].plane_block_offset as i16;
        assert_eq!(tags, vec![y_off, y_off + 1, cb_off, cr_off]);
    }

    #[test]
    fn pack_into_reuses_allocation() {
        let g = Geometry::new(32, 32, Subsampling::S420).unwrap();
        let buf = CoefBuffer::new(&g);
        let mut out = Vec::new();
        buf.pack_mcu_rows_into(&g, 0, 1, &mut out);
        let first = out.len();
        let cap = out.capacity();
        buf.pack_mcu_rows_into(&g, 1, 2, &mut out);
        assert_eq!(out.len(), first);
        assert_eq!(out.capacity(), cap);
        assert_eq!(out, buf.pack_mcu_rows(&g, 1, 2));
    }

    #[test]
    fn pack_full_image_equals_whole_buffer_size() {
        let g = Geometry::new(24, 24, Subsampling::S444).unwrap();
        let buf = CoefBuffer::new(&g);
        let packed = buf.pack_mcu_rows(&g, 0, g.mcus_y);
        assert_eq!(packed.len(), buf.as_slice().len());
    }
}
