//! The whole-image coefficient buffer.
//!
//! Paper §3 replaces libjpeg-turbo's MCU-row buffers with whole-image
//! buffers "large enough to keep an image as a whole in memory", and §4
//! fixes the layout as "Y blocks followed by Cb blocks followed by Cr
//! blocks" so the upsampling kernel never has to skip over interleaved luma
//! data — the property the coalescing ablation bench measures.
//!
//! Alongside the coefficients the buffer carries one **end-of-block index**
//! per block: the highest zigzag position that may hold a nonzero
//! coefficient, recorded for free during entropy decode. Downstream IDCT
//! stages dispatch on it to sparse fast paths (see [`crate::dct::sparse`])
//! without rescanning the block. The stored value is an *upper bound* —
//! using a larger EOB is always correct, just slower — and every write path
//! that bypasses entropy decode resets it to the dense-safe 63.

use crate::geometry::Geometry;

/// Whole-image DCT coefficient storage: one contiguous `i16` allocation,
/// blocks of 64 natural-order coefficients, planar per component, plus a
/// per-block EOB side array.
#[derive(Debug, Clone)]
pub struct CoefBuffer {
    data: Vec<i16>,
    /// Per-block EOB upper bound (highest possibly-nonzero zigzag index).
    eob: Vec<u8>,
}

/// Dense-safe EOB: assume every coefficient may be nonzero.
pub const EOB_DENSE: u8 = 63;

impl CoefBuffer {
    /// Allocate a zeroed buffer for an image's geometry.
    pub fn new(geom: &Geometry) -> Self {
        CoefBuffer {
            data: vec![0; geom.total_blocks * 64],
            eob: vec![EOB_DENSE; geom.total_blocks],
        }
    }

    /// Number of blocks the buffer holds.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.eob.len()
    }

    /// Re-shape the buffer for another image's geometry, reusing the
    /// existing allocations. All coefficients are zeroed and every EOB is
    /// reset to the dense-safe maximum, exactly as a fresh buffer starts —
    /// what callers that may leave blocks untouched (e.g. salvage of a
    /// truncated stream) need.
    pub fn reset_for(&mut self, geom: &Geometry) {
        self.data.clear();
        self.data.resize(geom.total_blocks * 64, 0);
        self.eob.clear();
        self.eob.resize(geom.total_blocks, EOB_DENSE);
    }

    /// Re-shape for another image *without* clearing: contents are
    /// unspecified (stale from the previous image) until written. A full
    /// entropy decode overwrites every block's 64 coefficients and its EOB,
    /// so the decode paths skip the whole-buffer memset `reset_for` pays —
    /// the difference is measurable on batch decodes (see BENCH_PR2.json).
    pub fn reset_for_entropy(&mut self, geom: &Geometry) {
        self.data.resize(geom.total_blocks * 64, 0);
        self.eob.resize(geom.total_blocks, EOB_DENSE);
    }

    /// Borrow the coefficients of one block (natural order).
    #[inline]
    pub fn block(&self, block_index: usize) -> &[i16; 64] {
        let off = block_index * 64;
        self.data[off..off + 64].try_into().expect("block slice")
    }

    /// Mutably borrow one block. Resets the block's EOB to the dense-safe
    /// maximum, since the caller may write anywhere; use [`Self::set_eob`]
    /// afterwards to restore a tighter bound.
    #[inline]
    pub fn block_mut(&mut self, block_index: usize) -> &mut [i16; 64] {
        self.eob[block_index] = EOB_DENSE;
        let off = block_index * 64;
        (&mut self.data[off..off + 64])
            .try_into()
            .expect("block slice")
    }

    /// The block's EOB upper bound (highest possibly-nonzero zigzag index).
    #[inline]
    pub fn eob(&self, block_index: usize) -> u8 {
        self.eob[block_index]
    }

    /// Record a block's EOB. `eob` must bound the highest nonzero zigzag
    /// position actually present, or sparse IDCT dispatch will drop
    /// coefficients.
    #[inline]
    pub fn set_eob(&mut self, block_index: usize, eob: u8) {
        debug_assert!(eob <= EOB_DENSE);
        self.eob[block_index] = eob;
    }

    /// The raw flat storage (e.g. for simulated PCIe transfer sizing).
    #[inline]
    pub fn as_slice(&self) -> &[i16] {
        &self.data
    }

    /// Mutable access to the raw flat storage. The caller may write any
    /// coefficient, so every block's EOB is reset to the dense-safe
    /// maximum — previously recorded sparsity is discarded.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [i16] {
        self.eob.fill(EOB_DENSE);
        &mut self.data
    }

    /// Byte length of the buffer (what a host→device write would ship).
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.data.len() * 2
    }

    /// Copy the coefficient range covering MCU rows `[start, end)` of every
    /// component into a packed staging vector, in component order. This is
    /// the chunk payload of the pipelined execution mode (§4.5): each
    /// Huffman-decoded chunk ships only its own blocks.
    pub fn pack_mcu_rows(&self, geom: &Geometry, start: usize, end: usize) -> Vec<i16> {
        let mut out = Vec::new();
        self.pack_mcu_rows_into(geom, start, end, &mut out);
        out
    }

    /// Like [`Self::pack_mcu_rows`] but reuses `out`'s allocation — the
    /// pipelined executor recycles chunk buffers through a pool so
    /// steady-state decode performs no per-chunk heap allocation.
    pub fn pack_mcu_rows_into(
        &self,
        geom: &Geometry,
        start: usize,
        end: usize,
        out: &mut Vec<i16>,
    ) {
        out.clear();
        out.reserve(geom.blocks_in_mcu_rows(start, end) * 64);
        for r in packed_block_ranges(geom, start, end) {
            out.extend_from_slice(&self.data[r.start * 64..r.end * 64]);
        }
    }

    /// Pack the per-block EOB sidecar for MCU rows `[start, end)` in
    /// exactly the block order of [`Self::pack_mcu_rows`] — the one extra
    /// byte per block the GPU path ships so its IDCT kernels can dispatch
    /// on sparsity like the CPU ones (PR 5). Both packers walk
    /// `packed_block_ranges`, so the orders cannot drift apart.
    pub fn pack_eobs_mcu_rows_into(
        &self,
        geom: &Geometry,
        start: usize,
        end: usize,
        out: &mut Vec<u8>,
    ) {
        out.clear();
        out.reserve(geom.blocks_in_mcu_rows(start, end));
        for r in packed_block_ranges(geom, start, end) {
            out.extend_from_slice(&self.eob[r]);
        }
    }

    /// A copy of this buffer with every EOB forced to the dense-safe
    /// maximum — the pre-PR-5 "GPU baseline is dense" behaviour. Kernel
    /// tests/benches/examples stage this ablation through
    /// `hetjpeg_core::kernels::testutil` rather than calling this directly,
    /// so the three transfer-layout variants share one staging definition.
    pub fn clone_with_dense_eobs(&self) -> Self {
        CoefBuffer {
            data: self.data.clone(),
            eob: vec![EOB_DENSE; self.eob.len()],
        }
    }

    /// Pack MCU rows `[start, end)` in the **compacted transfer layout**
    /// (Weißenberger & Schmidt): per block, only the ≤EOB class corner —
    /// `k`×`k` natural-order coefficients, row major, `k` =
    /// [`SparseClass::live_k`](crate::dct::sparse::SparseClass::live_k) —
    /// plus a `u32` offset-table entry per block (in `i16` units from the
    /// payload start) so a GPU work-item can index any block directly.
    ///
    /// The offset table is computed by an **exclusive scan over per-block-row
    /// EOB-class histograms** (the parallel-packer formulation: each block
    /// row's size is a pure function of its histogram,
    /// [`crate::metrics::compacted_coefs`]), then filled in row-locally.
    /// Block order is exactly [`Self::pack_mcu_rows_into`]'s
    /// (`packed_block_ranges` is the single traversal definition), so the
    /// offset table, the EOB sidecar and the dense layout all agree on
    /// which block is which.
    pub fn pack_compacted_into(
        &self,
        geom: &Geometry,
        start: usize,
        end: usize,
        payload: &mut Vec<i16>,
        offsets: &mut Vec<u32>,
    ) {
        use crate::dct::sparse::class_for_eob;
        payload.clear();
        offsets.clear();
        offsets.reserve(geom.blocks_in_mcu_rows(start, end));

        // Pass 1: per-block-row class histograms -> exclusive scan.
        let mut row_base = Vec::new();
        let mut acc = 0usize;
        for r in packed_block_ranges(geom, start, end) {
            let mut hist = [0u64; crate::dct::sparse::NUM_SPARSE_CLASSES];
            for &e in &self.eob[r] {
                hist[class_for_eob(e).index()] += 1;
            }
            row_base.push(acc);
            acc += crate::metrics::compacted_coefs(&hist) as usize;
        }
        assert!(
            acc <= u32::MAX as usize,
            "compacted offset table overflow: {acc} i16s"
        );
        payload.reserve(acc);

        // Pass 2: emit each block's corner at its scanned offset.
        for (r, base) in packed_block_ranges(geom, start, end).zip(row_base) {
            let mut off = base;
            for b in r {
                offsets.push(off as u32);
                off += push_compacted_block(self.block(b), self.eob[b], payload);
            }
        }
        debug_assert_eq!(payload.len(), acc);
    }

    /// Create a shared handle for concurrent block writes from multiple
    /// threads (the parallel restart-segment entropy decoder). The handle
    /// borrows the buffer exclusively, so no other access can overlap it.
    pub fn writer(&mut self) -> CoefWriter<'_> {
        CoefWriter {
            data: self.data.as_mut_ptr(),
            eob: self.eob.as_mut_ptr(),
            blocks: self.eob.len(),
            _marker: std::marker::PhantomData,
        }
    }
}

/// The packed block-index ranges of MCU rows `[start, end)`, in exactly
/// the order the packed buffers store them: per component, each block
/// row's contiguous index range. The coefficient packer and the EOB
/// sidecar packer both iterate this one definition — the GPU kernels'
/// `eob_base` arithmetic (byte `i` of the sidecar describes block `i` of
/// the packed coefficients) depends on the two orders never drifting
/// apart, so the traversal is written once.
fn packed_block_ranges<'a>(
    geom: &'a Geometry,
    start: usize,
    end: usize,
) -> impl Iterator<Item = std::ops::Range<usize>> + 'a {
    geom.comps.iter().enumerate().flat_map(move |(c, comp)| {
        let by0 = start * comp.v_samp;
        let by1 = (end * comp.v_samp).min(comp.height_blocks);
        (by0..by1).map(move |by| {
            let first = geom.block_index(c, 0, by);
            first..first + comp.width_blocks
        })
    })
}

/// Append one block's compacted representation — its EOB class's `k`×`k`
/// natural-order corner, row major — to `payload`; returns the number of
/// `i16` values appended ([`crate::dct::sparse::CLASS_COEFS`] of the
/// class). Every compacted packer goes through this one emitter so the
/// block layout cannot drift between the whole-buffer path, the packed-
/// chunk path and the tests' oracle.
#[inline]
pub fn push_compacted_block(block: &[i16; 64], eob: u8, payload: &mut Vec<i16>) -> usize {
    let k = crate::dct::sparse::class_for_eob(eob).live_k();
    for row in 0..k {
        payload.extend_from_slice(&block[row * 8..row * 8 + k]);
    }
    k * k
}

/// Compact an already-packed dense chunk (64 `i16` per block, the pipelined
/// executor's channel payload) plus its EOB sidecar into the compacted
/// layout of [`CoefBuffer::pack_compacted_into`]. Block order is the packed
/// order, i.e. byte `i` of `eobs` describes blocks `64*i..64*i+64` of
/// `packed` and offset-table entry `i` of the output.
pub fn compact_packed_blocks(
    packed: &[i16],
    eobs: &[u8],
    payload: &mut Vec<i16>,
    offsets: &mut Vec<u32>,
) {
    assert_eq!(packed.len(), eobs.len() * 64, "packed/sidecar disagree");
    payload.clear();
    offsets.clear();
    offsets.reserve(eobs.len());
    for (i, &eob) in eobs.iter().enumerate() {
        let block: &[i16; 64] = packed[i * 64..i * 64 + 64].try_into().expect("block");
        let off = payload.len();
        assert!(off <= u32::MAX as usize, "compacted offset table overflow");
        offsets.push(off as u32);
        push_compacted_block(block, eob, payload);
    }
}

/// Reconstruct the dense packed layout (64 `i16` per block) from a
/// compacted payload, its offset table and the EOB sidecar — the host-side
/// unpack oracle the transfer-layer property tests round-trip through (the
/// GPU kernels index the compacted payload directly instead).
pub fn unpack_compacted_blocks(payload: &[i16], offsets: &[u32], eobs: &[u8]) -> Vec<i16> {
    assert_eq!(offsets.len(), eobs.len(), "offset table/sidecar disagree");
    let mut out = vec![0i16; eobs.len() * 64];
    for (i, (&off, &eob)) in offsets.iter().zip(eobs).enumerate() {
        let k = crate::dct::sparse::class_for_eob(eob).live_k();
        let off = off as usize;
        for row in 0..k {
            out[i * 64 + row * 8..i * 64 + row * 8 + k]
                .copy_from_slice(&payload[off + row * k..off + row * k + k]);
        }
    }
    out
}

/// Shared-write handle over a [`CoefBuffer`], allowing worker threads to
/// store decoded blocks directly into their disjoint regions instead of
/// accumulating `(index, block)` pairs and copying after a join.
///
/// Block granularity is the unit of disjointness: writes to *different*
/// block indices never alias (each block owns its 64 coefficients and its
/// EOB slot), so threads decoding disjoint MCU ranges — e.g. distinct
/// restart segments — can write concurrently without synchronization.
pub struct CoefWriter<'a> {
    data: *mut i16,
    eob: *mut u8,
    blocks: usize,
    _marker: std::marker::PhantomData<&'a mut CoefBuffer>,
}

// SAFETY: the writer only exposes `write_block`, whose contract (below)
// requires callers to keep concurrently written block indices disjoint;
// under that contract all pointer accesses are race-free.
unsafe impl Send for CoefWriter<'_> {}
unsafe impl Sync for CoefWriter<'_> {}

impl CoefWriter<'_> {
    /// Store one block's coefficients and EOB.
    ///
    /// # Safety
    ///
    /// No two threads may call this concurrently with the same
    /// `block_index`. Callers decoding restart segments satisfy this by
    /// construction: segments partition the MCU sequence, and every block
    /// index belongs to exactly one MCU.
    #[inline]
    pub unsafe fn write_block(&self, block_index: usize, block: &[i16; 64], eob: u8) {
        assert!(block_index < self.blocks, "block index out of range");
        // SAFETY: in-bounds per the assert; disjointness per the contract.
        unsafe {
            std::ptr::copy_nonoverlapping(block.as_ptr(), self.data.add(block_index * 64), 64);
            *self.eob.add(block_index) = eob;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Subsampling;

    #[test]
    fn allocation_matches_geometry() {
        let g = Geometry::new(32, 16, Subsampling::S422).unwrap();
        let buf = CoefBuffer::new(&g);
        assert_eq!(buf.as_slice().len(), g.total_blocks * 64);
        assert_eq!(buf.byte_len(), g.total_blocks * 128);
    }

    #[test]
    fn block_views_are_disjoint_and_stable() {
        let g = Geometry::new(32, 16, Subsampling::S444).unwrap();
        let mut buf = CoefBuffer::new(&g);
        buf.block_mut(0)[0] = 11;
        buf.block_mut(1)[0] = 22;
        assert_eq!(buf.block(0)[0], 11);
        assert_eq!(buf.block(1)[0], 22);
        assert_eq!(buf.block(0)[1], 0);
    }

    #[test]
    fn eob_defaults_dense_and_block_mut_resets_it() {
        let g = Geometry::new(16, 16, Subsampling::S444).unwrap();
        let mut buf = CoefBuffer::new(&g);
        assert_eq!(buf.eob(0), EOB_DENSE);
        buf.set_eob(0, 3);
        assert_eq!(buf.eob(0), 3);
        // Any raw rewrite must fall back to the dense-safe bound.
        buf.block_mut(0)[63] = 5;
        assert_eq!(buf.eob(0), EOB_DENSE);
        buf.set_eob(1, 9);
        let _ = buf.as_mut_slice();
        assert_eq!(buf.eob(1), EOB_DENSE);
    }

    #[test]
    fn writer_stores_blocks_and_eobs() {
        let g = Geometry::new(32, 32, Subsampling::S444).unwrap();
        let mut buf = CoefBuffer::new(&g);
        let mut block = [0i16; 64];
        block[0] = 7;
        block[9] = -3;
        {
            let w = buf.writer();
            // SAFETY: single thread, distinct indices.
            unsafe {
                w.write_block(2, &block, 9);
                w.write_block(5, &block, 9);
            }
        }
        assert_eq!(buf.block(2)[0], 7);
        assert_eq!(buf.block(5)[9], -3);
        assert_eq!(buf.eob(2), 9);
        assert_eq!(buf.block(3)[0], 0);
    }

    #[test]
    fn pack_mcu_rows_collects_all_components() {
        let g = Geometry::new(16, 16, Subsampling::S422).unwrap();
        let mut buf = CoefBuffer::new(&g);
        // Tag each block with its index.
        for b in 0..g.total_blocks {
            buf.block_mut(b)[0] = b as i16;
        }
        // MCU row 0 of a 16x16 4:2:2 image: Y row 0 (2 blocks), Cb row 0
        // (1 block), Cr row 0 (1 block).
        let packed = buf.pack_mcu_rows(&g, 0, 1);
        assert_eq!(packed.len(), 4 * 64);
        let tags: Vec<i16> = packed.chunks_exact(64).map(|b| b[0]).collect();
        let y_off = 0;
        let cb_off = g.comps[1].plane_block_offset as i16;
        let cr_off = g.comps[2].plane_block_offset as i16;
        assert_eq!(tags, vec![y_off, y_off + 1, cb_off, cr_off]);
    }

    #[test]
    fn pack_into_reuses_allocation() {
        let g = Geometry::new(32, 32, Subsampling::S420).unwrap();
        let buf = CoefBuffer::new(&g);
        let mut out = Vec::new();
        buf.pack_mcu_rows_into(&g, 0, 1, &mut out);
        let first = out.len();
        let cap = out.capacity();
        buf.pack_mcu_rows_into(&g, 1, 2, &mut out);
        assert_eq!(out.len(), first);
        assert_eq!(out.capacity(), cap);
        assert_eq!(out, buf.pack_mcu_rows(&g, 1, 2));
    }

    #[test]
    fn pack_full_image_equals_whole_buffer_size() {
        let g = Geometry::new(24, 24, Subsampling::S444).unwrap();
        let buf = CoefBuffer::new(&g);
        let packed = buf.pack_mcu_rows(&g, 0, g.mcus_y);
        assert_eq!(packed.len(), buf.as_slice().len());
    }

    /// Seed a buffer with one block of every sparse class, cycling.
    fn classy_buffer(g: &Geometry) -> CoefBuffer {
        let mut buf = CoefBuffer::new(g);
        let eobs = [0u8, 2, 9, 63];
        for b in 0..g.total_blocks {
            let eob = eobs[b % 4];
            let block = crate::testutil::coef_block_for_eob(b as u64 + 7, eob as usize, 300);
            *buf.block_mut(b) = block;
            buf.set_eob(b, eob);
        }
        buf
    }

    #[test]
    fn compacted_pack_roundtrips_and_matches_histogram_prediction() {
        for sub in [Subsampling::S444, Subsampling::S422, Subsampling::S420] {
            let g = Geometry::new(40, 24, sub).unwrap();
            let buf = classy_buffer(&g);
            for (a, b) in [(0usize, g.mcus_y), (0, 1), (1, g.mcus_y)] {
                let dense = buf.pack_mcu_rows(&g, a, b);
                let mut eobs = Vec::new();
                buf.pack_eobs_mcu_rows_into(&g, a, b, &mut eobs);
                let (mut payload, mut offsets) = (Vec::new(), Vec::new());
                buf.pack_compacted_into(&g, a, b, &mut payload, &mut offsets);

                // Size is exactly the histogram prediction.
                let mut hist = [0u64; 4];
                for &e in &eobs {
                    hist[crate::dct::sparse::class_for_eob(e).index()] += 1;
                }
                assert_eq!(
                    payload.len() as u64,
                    crate::metrics::compacted_coefs(&hist),
                    "{:?} rows {a}..{b}",
                    sub
                );
                assert_eq!(offsets.len(), eobs.len());

                // Roundtrip through the unpack oracle is the dense layout.
                assert_eq!(unpack_compacted_blocks(&payload, &offsets, &eobs), dense);

                // The packed-chunk compactor agrees with the scan packer.
                let (mut p2, mut o2) = (Vec::new(), Vec::new());
                compact_packed_blocks(&dense, &eobs, &mut p2, &mut o2);
                assert_eq!(p2, payload);
                assert_eq!(o2, offsets);
            }
        }
    }

    #[test]
    fn compacted_pack_degenerate_extremes() {
        let g = Geometry::new(16, 16, Subsampling::S444).unwrap();
        // All-dense: compacted degenerates to the dense layout plus offsets.
        let mut buf = CoefBuffer::new(&g);
        for b in 0..g.total_blocks {
            buf.block_mut(b)[63] = b as i16 + 1; // EOB stays dense-safe 63
        }
        let (mut payload, mut offsets) = (Vec::new(), Vec::new());
        buf.pack_compacted_into(&g, 0, g.mcus_y, &mut payload, &mut offsets);
        assert_eq!(payload, buf.pack_mcu_rows(&g, 0, g.mcus_y));
        assert_eq!(offsets[1], 64);

        // All DC-only: one i16 per block.
        let mut buf = CoefBuffer::new(&g);
        for b in 0..g.total_blocks {
            buf.block_mut(b)[0] = -(b as i16);
            buf.set_eob(b, 0);
        }
        buf.pack_compacted_into(&g, 0, g.mcus_y, &mut payload, &mut offsets);
        assert_eq!(payload.len(), g.total_blocks);
        assert!(offsets.iter().enumerate().all(|(i, &o)| o as usize == i));
        let mut eobs = Vec::new();
        buf.pack_eobs_mcu_rows_into(&g, 0, g.mcus_y, &mut eobs);
        assert_eq!(
            unpack_compacted_blocks(&payload, &offsets, &eobs),
            buf.pack_mcu_rows(&g, 0, g.mcus_y)
        );
    }
}
