//! Coordinate algebra: pixels ↔ MCUs ↔ blocks ↔ component planes.
//!
//! All partitioning in the scheduler happens at MCU-row granularity (paper
//! §5.2: "Variable x is rounded to the nearest value evenly divisible by the
//! number of rows in an MCU ... due to libjpeg-turbo's convention to decode
//! images in units of MCUs"). This module centralizes the conversions so
//! every stage — CPU or GPU — agrees on where a region starts and ends.

use crate::error::{Error, Result};
use crate::types::Subsampling;

/// Per-component geometry derived from sampling factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompGeom {
    /// Horizontal sampling factor.
    pub h_samp: usize,
    /// Vertical sampling factor.
    pub v_samp: usize,
    /// Width of the padded component plane in blocks.
    pub width_blocks: usize,
    /// Height of the padded component plane in blocks.
    pub height_blocks: usize,
    /// Offset (in blocks) of this component's plane inside the shared
    /// coefficient buffer (planar Y ‖ Cb ‖ Cr layout of paper §4).
    pub plane_block_offset: usize,
}

impl CompGeom {
    /// Plane width in samples (padded to whole blocks).
    #[inline]
    pub fn plane_width(&self) -> usize {
        self.width_blocks * 8
    }

    /// Plane height in samples (padded to whole blocks).
    #[inline]
    pub fn plane_height(&self) -> usize {
        self.height_blocks * 8
    }

    /// Blocks per MCU row of the image for this component.
    #[inline]
    pub fn blocks_per_mcu_row(&self) -> usize {
        self.width_blocks * self.v_samp
    }
}

/// Whole-image geometry: dimensions, MCU grid and component planes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Geometry {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Chroma subsampling.
    pub subsampling: Subsampling,
    /// MCU width in pixels (8 or 16).
    pub mcu_w: usize,
    /// MCU height in pixels (8 or 16).
    pub mcu_h: usize,
    /// MCUs per image row.
    pub mcus_x: usize,
    /// Number of MCU rows.
    pub mcus_y: usize,
    /// Per-component geometry: `[Y, Cb, Cr]`.
    pub comps: [CompGeom; 3],
    /// Total coefficient blocks in the image (all components).
    pub total_blocks: usize,
}

impl Geometry {
    /// Compute the geometry for an image.
    pub fn new(width: usize, height: usize, subsampling: Subsampling) -> Result<Self> {
        if width == 0 || height == 0 || width > 65535 || height > 65535 {
            return Err(Error::BadDimensions);
        }
        let (hs, vs) = subsampling.luma_factors();
        let mcu_w = hs * 8;
        let mcu_h = vs * 8;
        let mcus_x = width.div_ceil(mcu_w);
        let mcus_y = height.div_ceil(mcu_h);

        let mut comps = [CompGeom {
            h_samp: 1,
            v_samp: 1,
            width_blocks: 0,
            height_blocks: 0,
            plane_block_offset: 0,
        }; 3];
        let mut offset = 0usize;
        for (i, comp) in comps.iter_mut().enumerate() {
            let (ch, cv) = if i == 0 { (hs, vs) } else { (1, 1) };
            comp.h_samp = ch;
            comp.v_samp = cv;
            comp.width_blocks = mcus_x * ch;
            comp.height_blocks = mcus_y * cv;
            comp.plane_block_offset = offset;
            offset += comp.width_blocks * comp.height_blocks;
        }

        Ok(Geometry {
            width,
            height,
            subsampling,
            mcu_w,
            mcu_h,
            mcus_x,
            mcus_y,
            comps,
            total_blocks: offset,
        })
    }

    /// Total pixels in the (unpadded) image.
    #[inline]
    pub fn pixels(&self) -> usize {
        self.width * self.height
    }

    /// Pixel row range covered by MCU rows `[start, end)`, clipped to the
    /// image height.
    #[inline]
    pub fn mcu_rows_to_pixel_rows(&self, start: usize, end: usize) -> (usize, usize) {
        (
            (start * self.mcu_h).min(self.height),
            (end * self.mcu_h).min(self.height),
        )
    }

    /// Number of MCU rows covering `pixel_rows` rows, i.e. the partition
    /// rounding the paper applies to the Newton solution.
    #[inline]
    pub fn pixel_rows_to_mcu_rows(&self, pixel_rows: usize) -> usize {
        pixel_rows.div_ceil(self.mcu_h).min(self.mcus_y)
    }

    /// Round a pixel-row count to the *nearest* MCU-row multiple (paper
    /// §5.2), clamped to `[0, height of image in MCU rows]`.
    #[inline]
    pub fn round_rows_to_mcu(&self, pixel_rows: f64) -> usize {
        let rows = (pixel_rows / self.mcu_h as f64).round();
        (rows.max(0.0) as usize).min(self.mcus_y)
    }

    /// Blocks contained in MCU rows `[start, end)` for all components.
    pub fn blocks_in_mcu_rows(&self, start: usize, end: usize) -> usize {
        let rows = end.saturating_sub(start);
        self.comps
            .iter()
            .map(|c| c.width_blocks * c.v_samp * rows)
            .sum()
    }

    /// Blocks contained in one interleaved MCU across all components.
    #[inline]
    pub fn blocks_per_mcu(&self) -> usize {
        self.comps.iter().map(|c| c.h_samp * c.v_samp).sum()
    }

    /// Coefficient-buffer block index of block (`bx`, `by`) of component `c`.
    #[inline]
    pub fn block_index(&self, c: usize, bx: usize, by: usize) -> usize {
        let comp = &self.comps[c];
        debug_assert!(bx < comp.width_blocks && by < comp.height_blocks);
        comp.plane_block_offset + by * comp.width_blocks + bx
    }

    /// Size in bytes of the coefficient data for MCU rows `[start, end)`
    /// (i16 per coefficient) — the quantity shipped over the simulated PCIe
    /// bus before GPU decoding.
    pub fn coef_bytes_in_mcu_rows(&self, start: usize, end: usize) -> usize {
        self.blocks_in_mcu_rows(start, end) * 64 * 2
    }

    /// Size in bytes of the RGB output for MCU rows `[start, end)` (clipped
    /// to real image rows) — the read-back volume.
    pub fn rgb_bytes_in_mcu_rows(&self, start: usize, end: usize) -> usize {
        let (r0, r1) = self.mcu_rows_to_pixel_rows(start, end);
        (r1 - r0) * self.width * 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_444() {
        let g = Geometry::new(64, 48, Subsampling::S444).unwrap();
        assert_eq!((g.mcu_w, g.mcu_h), (8, 8));
        assert_eq!((g.mcus_x, g.mcus_y), (8, 6));
        for c in &g.comps {
            assert_eq!(c.width_blocks, 8);
            assert_eq!(c.height_blocks, 6);
        }
        assert_eq!(g.total_blocks, 3 * 48);
    }

    #[test]
    fn geometry_422() {
        let g = Geometry::new(64, 48, Subsampling::S422).unwrap();
        assert_eq!((g.mcu_w, g.mcu_h), (16, 8));
        assert_eq!((g.mcus_x, g.mcus_y), (4, 6));
        assert_eq!(g.comps[0].width_blocks, 8);
        assert_eq!(g.comps[1].width_blocks, 4);
        assert_eq!(g.comps[2].width_blocks, 4);
        // Y plane: 48 blocks, chroma: 24 each.
        assert_eq!(g.total_blocks, 48 + 24 + 24);
        assert_eq!(g.comps[1].plane_block_offset, 48);
        assert_eq!(g.comps[2].plane_block_offset, 72);
    }

    #[test]
    fn geometry_420() {
        let g = Geometry::new(33, 17, Subsampling::S420).unwrap();
        assert_eq!((g.mcu_w, g.mcu_h), (16, 16));
        assert_eq!((g.mcus_x, g.mcus_y), (3, 2));
        assert_eq!(g.comps[0].width_blocks, 6);
        assert_eq!(g.comps[0].height_blocks, 4);
        assert_eq!(g.comps[1].width_blocks, 3);
        assert_eq!(g.comps[1].height_blocks, 2);
    }

    #[test]
    fn non_multiple_dimensions_pad_up() {
        let g = Geometry::new(17, 9, Subsampling::S422).unwrap();
        assert_eq!((g.mcus_x, g.mcus_y), (2, 2));
        assert_eq!(g.comps[0].plane_width(), 32);
        assert_eq!(g.comps[0].plane_height(), 16);
    }

    #[test]
    fn pixel_row_round_trips() {
        let g = Geometry::new(128, 128, Subsampling::S422).unwrap();
        assert_eq!(g.mcu_rows_to_pixel_rows(0, 2), (0, 16));
        assert_eq!(g.pixel_rows_to_mcu_rows(16), 2);
        assert_eq!(g.pixel_rows_to_mcu_rows(17), 3);
        assert_eq!(g.round_rows_to_mcu(12.0), 2); // 12/8 = 1.5 rounds to 2
        assert_eq!(g.round_rows_to_mcu(11.9), 1);
        assert_eq!(g.round_rows_to_mcu(-5.0), 0);
        assert_eq!(g.round_rows_to_mcu(1e9), g.mcus_y);
    }

    #[test]
    fn transfer_sizes() {
        let g = Geometry::new(32, 32, Subsampling::S444).unwrap();
        // One MCU row: 4 blocks per component = 12 blocks = 12*128 bytes.
        assert_eq!(g.coef_bytes_in_mcu_rows(0, 1), 12 * 128);
        assert_eq!(g.rgb_bytes_in_mcu_rows(0, 1), 8 * 32 * 3);
        // Clipping: last MCU row of a 17px-high image covers 1 pixel row.
        let g = Geometry::new(32, 17, Subsampling::S444).unwrap();
        assert_eq!(g.rgb_bytes_in_mcu_rows(2, 3), 32 * 3);
    }

    #[test]
    fn zero_and_oversized_dimensions_rejected() {
        assert!(Geometry::new(0, 10, Subsampling::S444).is_err());
        assert!(Geometry::new(10, 0, Subsampling::S444).is_err());
        assert!(Geometry::new(70000, 10, Subsampling::S444).is_err());
    }

    #[test]
    fn block_index_layout_is_planar() {
        let g = Geometry::new(32, 16, Subsampling::S422).unwrap();
        // Y plane first, row-major blocks.
        assert_eq!(g.block_index(0, 0, 0), 0);
        assert_eq!(g.block_index(0, 3, 1), 4 + 3);
        // Cb plane follows all Y blocks.
        assert_eq!(g.block_index(1, 0, 0), 8);
        assert_eq!(g.block_index(2, 0, 0), 12);
    }
}
