//! Huffman symbol encoding over a bit writer.

use super::magnitude_category;
use super::table::EncodeTable;
use crate::bitio::BitWriter;
use crate::error::{Error, Result};
use crate::zigzag::ZIGZAG;

/// Stateless encoder operations; DC prediction state lives in the caller.
pub struct HuffEncoder;

impl HuffEncoder {
    /// Emit one symbol.
    #[inline]
    pub fn encode_symbol(writer: &mut BitWriter, table: &EncodeTable, sym: u8) -> Result<()> {
        let size = table.size[sym as usize];
        if size == 0 {
            return Err(Error::Malformed("symbol not in Huffman table"));
        }
        writer.put_bits(table.code[sym as usize] as u32, size as u32);
        Ok(())
    }

    /// Emit the magnitude bits for a nonzero value of category `s`
    /// (T.81 F.1.2.1: negative values send `v - 1` in `s` low bits).
    #[inline]
    pub(crate) fn put_magnitude(writer: &mut BitWriter, v: i32, s: u32) {
        let raw = (if v < 0 { v - 1 } else { v }) as u32 & ((1u32 << s) - 1);
        writer.put_bits(raw, s);
    }

    /// Encode a DC difference.
    pub fn encode_dc_diff(writer: &mut BitWriter, table: &EncodeTable, diff: i32) -> Result<()> {
        let s = magnitude_category(diff);
        if s > 11 {
            return Err(Error::Malformed("DC difference out of range"));
        }
        Self::encode_symbol(writer, table, s as u8)?;
        if s > 0 {
            Self::put_magnitude(writer, diff, s);
        }
        Ok(())
    }

    /// Encode the 63 AC coefficients of one natural-order block with
    /// run-length + EOB coding (T.81 F.1.2.2).
    pub fn encode_ac_block(
        writer: &mut BitWriter,
        table: &EncodeTable,
        block: &[i16; 64],
    ) -> Result<()> {
        let mut run = 0u32;
        for k in 1..64 {
            let v = block[ZIGZAG[k]] as i32;
            if v == 0 {
                run += 1;
                continue;
            }
            while run >= 16 {
                Self::encode_symbol(writer, table, 0xF0)?; // ZRL
                run -= 16;
            }
            let s = magnitude_category(v);
            if s > 10 {
                return Err(Error::Malformed("AC coefficient out of range"));
            }
            Self::encode_symbol(writer, table, ((run as u8) << 4) | s as u8)?;
            Self::put_magnitude(writer, v, s);
            run = 0;
        }
        if run > 0 {
            Self::encode_symbol(writer, table, 0x00)?; // EOB
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::huffman::spec;

    #[test]
    fn rejects_out_of_range_dc() {
        let t = EncodeTable::build(&spec::dc_luma()).unwrap();
        let mut w = BitWriter::new();
        assert!(HuffEncoder::encode_dc_diff(&mut w, &t, 5000).is_err());
        assert!(HuffEncoder::encode_dc_diff(&mut w, &t, 2047).is_ok());
        assert!(HuffEncoder::encode_dc_diff(&mut w, &t, -2047).is_ok());
    }

    #[test]
    fn rejects_out_of_range_ac() {
        let t = EncodeTable::build(&spec::ac_luma()).unwrap();
        let mut w = BitWriter::new();
        let mut block = [0i16; 64];
        block[1] = 1500; // category 11 > max 10 for AC
        assert!(HuffEncoder::encode_ac_block(&mut w, &t, &block).is_err());
    }

    #[test]
    fn all_zero_ac_block_is_just_eob() {
        let t = EncodeTable::build(&spec::ac_luma()).unwrap();
        let mut w = BitWriter::new();
        HuffEncoder::encode_ac_block(&mut w, &t, &[0i16; 64]).unwrap();
        let bytes = w.finish();
        // EOB in K.5 is 4 bits (1010) -> padded to one byte 1010_1111.
        assert_eq!(bytes.len(), 1);
        assert_eq!(bytes[0], 0b1010_1111);
    }

    #[test]
    fn trailing_nonzero_at_63_has_no_eob() {
        let t = EncodeTable::build(&spec::ac_luma()).unwrap();
        let mut block = [0i16; 64];
        block[ZIGZAG[63]] = 1;
        let mut w = BitWriter::new();
        HuffEncoder::encode_ac_block(&mut w, &t, &block).unwrap();
        // 62 zeros => 3 ZRL (48) + run 14, size 1, then magnitude bit; no EOB.
        // Just check it decodes back correctly via the decoder.
        let bytes = w.finish();
        let dec = crate::huffman::table::DecodeTable::build(&spec::ac_luma()).unwrap();
        let mut r = crate::bitio::BitReader::new(&bytes);
        let mut out = [0i16; 64];
        HuffDecoderShim::decode(&mut r, &dec, &mut out);
        assert_eq!(out, block);
    }

    struct HuffDecoderShim;
    impl HuffDecoderShim {
        fn decode(
            r: &mut crate::bitio::BitReader<'_>,
            dec: &crate::huffman::table::DecodeTable,
            out: &mut [i16; 64],
        ) {
            crate::huffman::decode::HuffDecoder::decode_ac_block(r, dec, out).unwrap();
        }
    }
}
