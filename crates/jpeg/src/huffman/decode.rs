//! Huffman symbol decoding over a bit reader.

use super::extend;
use super::table::{DecodeTable, LOOKAHEAD_BITS};
use crate::bitio::BitReader;
use crate::error::{Error, Result};
use crate::zigzag::ZIGZAG;

/// Stateless decoder operations bundled for convenience; DC prediction state
/// lives in the caller ([`crate::entropy::EntropyDecoder`]).
pub struct HuffDecoder;

impl HuffDecoder {
    /// Decode one Huffman symbol: LUT fast path, canonical slow path beyond
    /// [`LOOKAHEAD_BITS`] bits.
    #[inline]
    pub fn decode_symbol(reader: &mut BitReader<'_>, table: &DecodeTable) -> Result<u8> {
        let peek = reader.peek_bits(LOOKAHEAD_BITS);
        let la = table.lookahead[peek as usize];
        if la.nbits != 0 {
            reader.skip_bits(la.nbits as u32);
            return Ok(la.value);
        }
        // Slow path: extend bit by bit past the lookahead width.
        let mut code = peek as i32;
        reader.skip_bits(LOOKAHEAD_BITS);
        let mut l = LOOKAHEAD_BITS;
        while code > table.maxcode[l as usize] {
            if l >= 16 {
                return Err(Error::BadHuffmanCode);
            }
            code = (code << 1) | reader.get_bits(1) as i32;
            l += 1;
        }
        let idx = table.valoff[l as usize] + code;
        table
            .values
            .get(idx as usize)
            .copied()
            .ok_or(Error::BadHuffmanCode)
    }

    /// Decode a DC coefficient difference: category symbol then extended
    /// magnitude bits (T.81 F.2.2.1).
    #[inline]
    pub fn decode_dc_diff(reader: &mut BitReader<'_>, table: &DecodeTable) -> Result<i32> {
        let s = Self::decode_symbol(reader, table)? as u32;
        if s > 11 {
            return Err(Error::Malformed("DC category > 11"));
        }
        let raw = reader.get_bits(s);
        Ok(extend(raw, s))
    }

    /// Decode the 63 AC coefficients of one block into `block` (natural
    /// order, de-zigzagged on the fly). Returns `(symbols, nonzero, eob)` —
    /// the number of Huffman symbols read, the number of nonzero AC
    /// coefficients produced (both feed the performance model's work
    /// metrics), and the end-of-block index: the highest zigzag position
    /// holding a nonzero AC coefficient, 0 for an all-zero AC block. The EOB
    /// is recorded per block so downstream IDCT stages can dispatch to
    /// sparse fast paths without rescanning coefficients.
    #[inline]
    pub fn decode_ac_block(
        reader: &mut BitReader<'_>,
        table: &DecodeTable,
        block: &mut [i16; 64],
    ) -> Result<(u32, u32, u8)> {
        let mut k = 1usize;
        let mut nonzero = 0u32;
        let mut symbols = 0u32;
        let mut eob = 0usize;
        while k < 64 {
            let rs = Self::decode_symbol(reader, table)?;
            symbols += 1;
            let r = (rs >> 4) as usize;
            let s = (rs & 0x0F) as u32;
            if s == 0 {
                if r == 15 {
                    k += 16; // ZRL: sixteen zeros
                    continue;
                }
                break; // EOB
            }
            k += r;
            if k >= 64 {
                return Err(Error::Malformed("AC run past block end"));
            }
            let raw = reader.get_bits(s);
            block[ZIGZAG[k]] = extend(raw, s) as i16;
            nonzero += 1;
            eob = k;
            k += 1;
        }
        Ok((symbols, nonzero, eob as u8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitio::BitWriter;
    use crate::huffman::encode::HuffEncoder;
    use crate::huffman::spec;
    use crate::huffman::table::EncodeTable;

    #[test]
    fn symbol_roundtrip_all_lengths() {
        let s = spec::ac_luma();
        let enc = EncodeTable::build(&s).unwrap();
        let dec = DecodeTable::build(&s).unwrap();
        // Encode every symbol in the table once, decode them back.
        let mut w = BitWriter::new();
        for &sym in &s.values {
            w.put_bits(enc.code[sym as usize] as u32, enc.size[sym as usize] as u32);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &sym in &s.values {
            assert_eq!(HuffDecoder::decode_symbol(&mut r, &dec).unwrap(), sym);
        }
    }

    #[test]
    fn dc_diff_roundtrip() {
        let s = spec::dc_luma();
        let enc = EncodeTable::build(&s).unwrap();
        let dec = DecodeTable::build(&s).unwrap();
        let values = [-2047, -1024, -255, -1, 0, 1, 2, 31, 512, 2047];
        let mut w = BitWriter::new();
        for &v in &values {
            HuffEncoder::encode_dc_diff(&mut w, &enc, v).unwrap();
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(HuffDecoder::decode_dc_diff(&mut r, &dec).unwrap(), v);
        }
    }

    #[test]
    fn ac_block_roundtrip_sparse() {
        let s = spec::ac_chroma();
        let enc = EncodeTable::build(&s).unwrap();
        let dec = DecodeTable::build(&s).unwrap();
        // A sparse block with runs, a ZRL-requiring gap, and a trailing EOB.
        let mut block = [0i16; 64];
        block[ZIGZAG[1]] = -3;
        block[ZIGZAG[5]] = 17;
        block[ZIGZAG[30]] = -120; // gap of 24 zeros => ZRL + run
        block[ZIGZAG[31]] = 1;
        let mut w = BitWriter::new();
        HuffEncoder::encode_ac_block(&mut w, &enc, &block).unwrap();
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let mut out = [0i16; 64];
        let (symbols, nz, eob) = HuffDecoder::decode_ac_block(&mut r, &dec, &mut out).unwrap();
        assert_eq!(out, block);
        assert_eq!(nz, 4);
        // 4 value symbols + 1 ZRL + 1 EOB.
        assert_eq!(symbols, 6);
        assert_eq!(eob, 31); // last nonzero zigzag position written above
    }

    #[test]
    fn ac_block_roundtrip_dense() {
        let s = spec::ac_luma();
        let enc = EncodeTable::build(&s).unwrap();
        let dec = DecodeTable::build(&s).unwrap();
        let mut block = [0i16; 64];
        for k in 1..64 {
            block[ZIGZAG[k]] = if k % 2 == 0 { k as i16 } else { -(k as i16) };
        }
        let mut w = BitWriter::new();
        HuffEncoder::encode_ac_block(&mut w, &enc, &block).unwrap();
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let mut out = [0i16; 64];
        let (_, _, eob) = HuffDecoder::decode_ac_block(&mut r, &dec, &mut out).unwrap();
        assert_eq!(out, block);
        assert_eq!(eob, 63);
    }

    #[test]
    fn garbage_input_errors_not_panics() {
        let s = spec::dc_luma();
        let dec = DecodeTable::build(&s).unwrap();
        // All-ones is the longest-code prefix; with zero padding afterwards
        // the decoder must hit BadHuffmanCode rather than panic.
        let bytes = [0xFFu8, 0x00, 0xFF, 0x00];
        let mut r = BitReader::new(&bytes);
        let mut saw_error = false;
        for _ in 0..8 {
            if HuffDecoder::decode_symbol(&mut r, &dec).is_err() {
                saw_error = true;
                break;
            }
        }
        assert!(saw_error);
    }
}
