//! Canonical Huffman code construction (T.81 Annex C) and derived
//! decode/encode tables.

use crate::error::{Error, Result};

/// Number of bits resolved by the fast decode lookahead (libjpeg's
/// `HUFF_LOOKAHEAD`).
pub const LOOKAHEAD_BITS: u32 = 8;

/// A Huffman table specification as transmitted in a DHT segment:
/// `bits[l]` = number of codes of length `l` (1..=16), `values` = the symbols
/// in code order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuffSpec {
    /// Code-length histogram; index 0 is unused.
    pub bits: [u8; 17],
    /// Symbols ordered by (length, code).
    pub values: Vec<u8>,
}

impl HuffSpec {
    /// Construct and sanity-check a specification.
    pub fn new(bits: [u8; 17], values: Vec<u8>) -> Self {
        let spec = HuffSpec { bits, values };
        debug_assert!(spec.validate().is_ok());
        spec
    }

    /// Check Kraft validity and that `values` matches the histogram.
    pub fn validate(&self) -> Result<()> {
        let total: usize = self.bits[1..=16].iter().map(|&b| b as usize).sum();
        if total != self.values.len() {
            return Err(Error::Malformed("DHT value count"));
        }
        if total > 256 {
            return Err(Error::Malformed("DHT too many codes"));
        }
        // Kraft inequality for a prefix-free code with max length 16.
        let mut kraft: u64 = 0;
        for l in 1..=16u32 {
            kraft += (self.bits[l as usize] as u64) << (16 - l);
        }
        if kraft > 1 << 16 {
            return Err(Error::Malformed("DHT violates Kraft inequality"));
        }
        Ok(())
    }

    /// Generate the (size, code) list for each symbol (T.81 C.1–C.3).
    fn code_list(&self) -> Vec<(u8, u16)> {
        let mut out = Vec::with_capacity(self.values.len());
        let mut code: u16 = 0;
        for l in 1..=16u8 {
            for _ in 0..self.bits[l as usize] {
                out.push((l, code));
                code += 1;
            }
            code <<= 1;
        }
        out
    }
}

/// One lookahead entry: how many bits the code spans and the decoded symbol.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lookahead {
    /// Code length in bits; 0 means the LUT cannot resolve this prefix.
    pub nbits: u8,
    /// The decoded symbol when `nbits != 0`.
    pub value: u8,
}

/// Decoding table: 8-bit lookahead LUT plus the canonical slow path arrays.
#[derive(Debug, Clone)]
pub struct DecodeTable {
    /// Fast path: indexed by the next [`LOOKAHEAD_BITS`] bits.
    pub lookahead: Box<[Lookahead; 256]>,
    /// `maxcode[l]` = largest code of length `l` (or -1 if none); index 17
    /// is a sentinel that terminates the scan.
    pub maxcode: [i32; 18],
    /// `valptr[l] - mincode[l]` folded: `value = values[valoff[l] + code]`.
    pub valoff: [i32; 17],
    /// Symbols in code order.
    pub values: Vec<u8>,
}

impl DecodeTable {
    /// Build decode structures from a DHT specification.
    pub fn build(spec: &HuffSpec) -> Result<Self> {
        spec.validate()?;
        let list = spec.code_list();

        let mut maxcode = [-1i32; 18];
        let mut valoff = [0i32; 17];
        let mut index = 0usize;
        let mut p = 0usize; // running index into values
        for l in 1..=16usize {
            let n = spec.bits[l] as usize;
            if n > 0 {
                let first_code = list[p].1 as i32;
                valoff[l] = p as i32 - first_code;
                p += n;
                maxcode[l] = list[p - 1].1 as i32;
            }
            index += n;
        }
        debug_assert_eq!(index, spec.values.len());
        maxcode[17] = i32::MAX; // sentinel

        let mut lookahead = Box::new([Lookahead::default(); 256]);
        for (sym_idx, &(size, code)) in list.iter().enumerate() {
            if (size as u32) <= LOOKAHEAD_BITS {
                let shift = LOOKAHEAD_BITS - size as u32;
                let base = (code as usize) << shift;
                for entry in lookahead.iter_mut().skip(base).take(1 << shift) {
                    *entry = Lookahead {
                        nbits: size,
                        value: spec.values[sym_idx],
                    };
                }
            }
        }

        Ok(DecodeTable {
            lookahead,
            maxcode,
            valoff,
            values: spec.values.clone(),
        })
    }
}

/// Encoding table: per-symbol code and size.
#[derive(Debug, Clone)]
pub struct EncodeTable {
    /// `code[s]` = canonical code bits for symbol `s`.
    pub code: [u16; 256],
    /// `size[s]` = code length; 0 marks symbols absent from the table.
    pub size: [u8; 256],
}

impl EncodeTable {
    /// Build encode structures from a DHT specification.
    pub fn build(spec: &HuffSpec) -> Result<Self> {
        spec.validate()?;
        let list = spec.code_list();
        let mut code = [0u16; 256];
        let mut size = [0u8; 256];
        for (i, &(s, c)) in list.iter().enumerate() {
            let sym = spec.values[i] as usize;
            if size[sym] != 0 {
                return Err(Error::Malformed("DHT duplicate symbol"));
            }
            code[sym] = c;
            size[sym] = s;
        }
        Ok(EncodeTable { code, size })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::huffman::spec;

    #[test]
    fn canonical_codes_are_prefix_free() {
        for s in [
            spec::dc_luma(),
            spec::dc_chroma(),
            spec::ac_luma(),
            spec::ac_chroma(),
        ] {
            let list = s.code_list();
            for (i, &(la, ca)) in list.iter().enumerate() {
                for &(lb, cb) in list.iter().skip(i + 1) {
                    assert!(la <= lb);
                    if la == lb {
                        assert_ne!(ca, cb);
                    } else {
                        // a must not be a prefix of b.
                        assert_ne!(ca as u32, (cb as u32) >> (lb - la), "prefix collision");
                    }
                }
            }
        }
    }

    #[test]
    fn dc_luma_known_codes() {
        // K.3 assigns: category 0 -> 00 (2 bits), 1 -> 010, 2 -> 011, ...
        let t = EncodeTable::build(&spec::dc_luma()).unwrap();
        assert_eq!((t.size[0], t.code[0]), (2, 0b00));
        assert_eq!((t.size[1], t.code[1]), (3, 0b010));
        assert_eq!((t.size[2], t.code[2]), (3, 0b011));
        assert_eq!((t.size[5], t.code[5]), (3, 0b110));
        assert_eq!((t.size[6], t.code[6]), (4, 0b1110));
        assert_eq!((t.size[11], t.code[11]), (9, 0b111111110));
    }

    #[test]
    fn lookahead_agrees_with_slow_path_tables() {
        let s = spec::ac_luma();
        let t = DecodeTable::build(&s).unwrap();
        let enc = EncodeTable::build(&s).unwrap();
        // For every symbol with a short code, feeding the code through the
        // LUT must return the symbol.
        for sym in 0..256usize {
            let size = enc.size[sym];
            if size == 0 || size as u32 > LOOKAHEAD_BITS {
                continue;
            }
            let idx = (enc.code[sym] as usize) << (LOOKAHEAD_BITS - size as u32);
            let la = t.lookahead[idx];
            assert_eq!(la.nbits, size);
            assert_eq!(la.value as usize, sym);
        }
    }

    #[test]
    fn validate_rejects_bad_specs() {
        // Count mismatch.
        let mut bits = [0u8; 17];
        bits[2] = 2;
        assert!(HuffSpec {
            bits,
            values: vec![1]
        }
        .validate()
        .is_err());
        // Kraft violation: three 1-bit codes.
        let mut bits = [0u8; 17];
        bits[1] = 3;
        assert!(HuffSpec {
            bits,
            values: vec![1, 2, 3]
        }
        .validate()
        .is_err());
    }

    #[test]
    fn duplicate_symbol_rejected_by_encoder() {
        let mut bits = [0u8; 17];
        bits[2] = 2;
        let s = HuffSpec {
            bits,
            values: vec![7, 7],
        };
        assert!(EncodeTable::build(&s).is_err());
    }
}
