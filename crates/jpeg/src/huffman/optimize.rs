//! Optimal Huffman table generation from symbol frequencies.
//!
//! The Annex K baseline tables only carry the symbols baseline scans emit
//! (EOB, ZRL and the (run, size) pairs) — progressive AC scans additionally
//! need the EOBn run-length symbols `(n << 4)` for n = 1..=14, which K.5 does
//! not define. Progressive encoders therefore build custom tables from
//! two-pass symbol statistics; this module implements the classic IJG
//! code-length construction (T.81 Annex K.2 flowcharts, the algorithm of
//! libjpeg's `jpeg_gen_optimal_table`): pairwise merging of the two
//! least-frequent symbols, followed by the length-limiting adjustment to the
//! JPEG maximum of 16 bits.

use super::HuffSpec;
use crate::error::{Error, Result};

/// Number of frequency slots: 256 real symbols plus the reserved
/// pseudo-symbol 256 that guarantees no real symbol is assigned the
/// all-ones code (T.81 K.2).
pub const FREQ_SLOTS: usize = 257;

/// Internal cap on code length during construction; lengths beyond 16 are
/// folded back by the adjustment pass.
const MAX_CLEN: usize = 32;

/// Build a [`HuffSpec`] assigning near-optimal code lengths for the given
/// symbol frequencies. `freq[s]` counts occurrences of symbol `s`; slot 256
/// is overwritten with the reserved count of 1. Symbols with zero frequency
/// get no code. Fails only if more than 256 distinct symbols are in use
/// (impossible by construction) — the result always passes
/// [`HuffSpec::validate`].
pub fn spec_from_frequencies(freq: &[u32; FREQ_SLOTS]) -> Result<HuffSpec> {
    let mut freq: Vec<i64> = freq.iter().map(|&f| f as i64).collect();
    freq[256] = 1; // reserved: ensures the all-ones code stays unassigned

    let mut codesize = [0usize; FREQ_SLOTS];
    let mut others = [-1i32; FREQ_SLOTS];

    // Merge the two least-frequent chains until one remains. Ties choose the
    // larger symbol index, matching the IJG reference so the emitted tables
    // are reproducible against it.
    loop {
        let mut c1: i32 = -1;
        let mut v = i64::MAX;
        for (i, &f) in freq.iter().enumerate() {
            if f != 0 && f <= v {
                v = f;
                c1 = i as i32;
            }
        }
        let mut c2: i32 = -1;
        let mut v = i64::MAX;
        for (i, &f) in freq.iter().enumerate() {
            if f != 0 && f <= v && i as i32 != c1 {
                v = f;
                c2 = i as i32;
            }
        }
        if c2 < 0 {
            break;
        }
        let (c1u, c2u) = (c1 as usize, c2 as usize);
        freq[c1u] += freq[c2u];
        freq[c2u] = 0;
        // Lengthen c1's chain, then append c2's chain to it.
        let mut i = c1u;
        codesize[i] += 1;
        while others[i] >= 0 {
            i = others[i] as usize;
            codesize[i] += 1;
        }
        others[i] = c2;
        let mut i = c2u;
        codesize[i] += 1;
        while others[i] >= 0 {
            i = others[i] as usize;
            codesize[i] += 1;
        }
    }

    // Count codes per length.
    let mut bits = [0i32; MAX_CLEN + 1];
    for &size in codesize.iter() {
        if size > 0 {
            if size > MAX_CLEN {
                return Err(Error::Malformed("Huffman code length overflow"));
            }
            bits[size] += 1;
        }
    }

    // JPEG limits code length to 16 bits: fold longer codes back by moving
    // a pair of leaves up under a shorter prefix (T.81 K.2 "Adjust_BITS").
    for i in (17..=MAX_CLEN).rev() {
        while bits[i] > 0 {
            let mut j = i - 2;
            while bits[j] == 0 {
                j -= 1;
            }
            bits[i] -= 2;
            bits[i - 1] += 1;
            bits[j + 1] += 2;
            bits[j] -= 1;
        }
    }

    // Remove the reserved symbol's leaf from the longest occupied length.
    let mut i = 16;
    while i > 0 && bits[i] == 0 {
        i -= 1;
    }
    if i > 0 {
        bits[i] -= 1;
    }

    // Symbols sorted by (code length, symbol value); the reserved 256 is
    // excluded, which is exactly the leaf removed above (it always lands on
    // the longest length: its frequency of 1 is minimal).
    let mut values = Vec::new();
    for len in 1..=MAX_CLEN {
        for (sym, &size) in codesize.iter().take(256).enumerate() {
            if size == len {
                values.push(sym as u8);
            }
        }
    }

    let mut out_bits = [0u8; 17];
    for l in 1..=16usize {
        out_bits[l] = bits[l] as u8;
    }
    let spec = HuffSpec {
        bits: out_bits,
        values,
    };
    spec.validate()?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::huffman::{DecodeTable, EncodeTable};

    #[test]
    fn all_used_symbols_get_codes_and_tables_build() {
        let mut freq = [0u32; FREQ_SLOTS];
        for (s, f) in freq.iter_mut().enumerate().take(201) {
            *f = (s as u32 % 17) + 1;
        }
        let spec = spec_from_frequencies(&freq).unwrap();
        assert_eq!(spec.values.len(), 201);
        let enc = EncodeTable::build(&spec).unwrap();
        for s in 0..=200usize {
            assert!(enc.size[s] > 0 && enc.size[s] <= 16, "symbol {s}");
        }
        DecodeTable::build(&spec).unwrap();
    }

    #[test]
    fn frequent_symbols_get_shorter_codes() {
        let mut freq = [0u32; FREQ_SLOTS];
        freq[7] = 10_000;
        freq[8] = 1;
        freq[9] = 1;
        let spec = spec_from_frequencies(&freq).unwrap();
        let enc = EncodeTable::build(&spec).unwrap();
        assert!(enc.size[7] < enc.size[8]);
        assert!(enc.size[7] < enc.size[9]);
    }

    #[test]
    fn single_symbol_table_is_valid() {
        let mut freq = [0u32; FREQ_SLOTS];
        freq[0x00] = 42;
        let spec = spec_from_frequencies(&freq).unwrap();
        let enc = EncodeTable::build(&spec).unwrap();
        assert!(enc.size[0x00] > 0);
        assert_eq!(spec.values, vec![0x00]);
    }

    #[test]
    fn skewed_distribution_respects_16_bit_limit() {
        // Exponential-ish skew would want lengths > 16 without adjustment.
        let mut freq = [0u32; FREQ_SLOTS];
        for (s, f) in freq.iter_mut().enumerate().take(30) {
            *f = 1u32 << (30 - s.min(29));
        }
        for f in freq.iter_mut().take(256).skip(30) {
            *f = 1;
        }
        let spec = spec_from_frequencies(&freq).unwrap();
        assert!(spec.bits[1..=16].iter().map(|&b| b as usize).sum::<usize>() == 256);
        EncodeTable::build(&spec).unwrap();
    }

    #[test]
    fn roundtrip_through_bit_io() {
        use crate::bitio::{BitReader, BitWriter};
        use crate::huffman::{HuffDecoder, HuffEncoder};
        let mut freq = [0u32; FREQ_SLOTS];
        let syms: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(37)).collect();
        for &s in &syms {
            freq[s as usize] += 1 + (s as u32 % 5);
        }
        let spec = spec_from_frequencies(&freq).unwrap();
        let enc = EncodeTable::build(&spec).unwrap();
        let dec = DecodeTable::build(&spec).unwrap();
        let mut w = BitWriter::new();
        for &s in &syms {
            HuffEncoder::encode_symbol(&mut w, &enc, s).unwrap();
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &syms {
            assert_eq!(HuffDecoder::decode_symbol(&mut r, &dec).unwrap(), s);
        }
    }
}
