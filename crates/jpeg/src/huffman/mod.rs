//! Baseline JPEG Huffman entropy coding.
//!
//! Huffman decompression is the strictly sequential stage of JPEG decoding
//! (paper §1): codewords have variable length and the start of a codeword is
//! known only once the previous one has been decoded. The scheduler therefore
//! always runs this stage on the CPU; everything here is written for a single
//! thread, with a libjpeg-style 8-bit lookahead LUT for speed.
//!
//! * [`spec`] — the ITU-T T.81 Annex K standard tables,
//! * [`table`] — canonical code construction ([`HuffSpec`] → decode/encode
//!   tables),
//! * [`decode`] — symbol decoding over a [`crate::bitio::BitReader`],
//! * [`encode`] — symbol encoding over a [`crate::bitio::BitWriter`],
//! * [`optimize`] — optimal table generation from symbol frequencies (the
//!   progressive encoder's two-pass statistics).

pub mod decode;
pub mod encode;
pub mod optimize;
pub mod spec;
pub mod table;

pub use decode::HuffDecoder;
pub use encode::HuffEncoder;
pub use optimize::spec_from_frequencies;
pub use table::{DecodeTable, EncodeTable, HuffSpec};

/// Sign-extend a `size`-bit magnitude into a JPEG "extended" value
/// (T.81 F.2.2.1 EXTEND procedure).
#[inline(always)]
pub fn extend(v: u32, size: u32) -> i32 {
    if size == 0 {
        return 0;
    }
    if v < (1 << (size - 1)) {
        v as i32 - ((1 << size) - 1)
    } else {
        v as i32
    }
}

/// Number of bits needed to represent `v` in JPEG magnitude coding
/// (the category / SSSS value).
#[inline(always)]
pub fn magnitude_category(v: i32) -> u32 {
    let a = v.unsigned_abs();
    32 - a.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extend_matches_spec_examples() {
        // Size 3: raw 0..3 map to -7..-4, raw 4..7 map to 4..7.
        assert_eq!(extend(0, 3), -7);
        assert_eq!(extend(3, 3), -4);
        assert_eq!(extend(4, 3), 4);
        assert_eq!(extend(7, 3), 7);
        assert_eq!(extend(0, 0), 0);
        assert_eq!(extend(1, 1), 1);
        assert_eq!(extend(0, 1), -1);
    }

    #[test]
    fn magnitude_category_inverts_extend_range() {
        for v in -255i32..=255 {
            let s = magnitude_category(v);
            if v == 0 {
                assert_eq!(s, 0);
            } else {
                assert!(v.unsigned_abs() < (1 << s));
                assert!(v.unsigned_abs() >= (1 << (s - 1)));
            }
        }
        assert_eq!(magnitude_category(1), 1);
        assert_eq!(magnitude_category(-1), 1);
        assert_eq!(magnitude_category(255), 8);
        assert_eq!(magnitude_category(-1024), 11);
    }

    #[test]
    fn extend_and_category_roundtrip() {
        for v in -2047i32..=2047 {
            if v == 0 {
                continue;
            }
            let s = magnitude_category(v);
            // Encoder writes the low s bits of v (two's complement trick).
            let raw = (if v < 0 { v - 1 } else { v }) as u32 & ((1 << s) - 1);
            assert_eq!(extend(raw, s), v, "v = {v}");
        }
    }
}
