//! Per-component sample planes between IDCT and color conversion.

use crate::geometry::Geometry;

/// Padded 8-bit sample storage for the three components after IDCT.
///
/// Chroma planes are stored at their *subsampled* resolution; upsampling
/// happens on the way into color conversion (merged, as in the §4.4 GPU
/// kernel) or explicitly via [`crate::decoder::stages`].
#[derive(Debug, Clone)]
pub struct SamplePlanes {
    /// One plane per component, `plane_width x plane_height` raster each.
    pub planes: [Vec<u8>; 3],
    /// Row stride (= padded plane width) per component.
    pub strides: [usize; 3],
}

impl SamplePlanes {
    /// Allocate zeroed planes for the image geometry.
    pub fn new(geom: &Geometry) -> Self {
        let mk = |c: usize| {
            let comp = &geom.comps[c];
            vec![0u8; comp.plane_width() * comp.plane_height()]
        };
        SamplePlanes {
            planes: [mk(0), mk(1), mk(2)],
            strides: [
                geom.comps[0].plane_width(),
                geom.comps[1].plane_width(),
                geom.comps[2].plane_width(),
            ],
        }
    }

    /// Re-shape the planes for another image's geometry, reusing the
    /// existing allocations (zeroed, like a fresh instance).
    pub fn reset_for(&mut self, geom: &Geometry) {
        for (c, plane) in self.planes.iter_mut().enumerate() {
            let comp = &geom.comps[c];
            plane.clear();
            plane.resize(comp.plane_width() * comp.plane_height(), 0);
            self.strides[c] = comp.plane_width();
        }
    }

    /// Write an 8x8 IDCT output block at block coordinates (`bx`, `by`) of
    /// component `c`.
    #[inline]
    pub fn store_block(&mut self, c: usize, bx: usize, by: usize, samples: &[u8; 64]) {
        let stride = self.strides[c];
        let base = by * 8 * stride + bx * 8;
        let plane = &mut self.planes[c];
        for (r, row) in samples.chunks_exact(8).enumerate() {
            let off = base + r * stride;
            plane[off..off + 8].copy_from_slice(row);
        }
    }

    /// Borrow one raster row of component `c`.
    #[inline]
    pub fn row(&self, c: usize, y: usize) -> &[u8] {
        let stride = self.strides[c];
        &self.planes[c][y * stride..(y + 1) * stride]
    }

    /// Mutably borrow one raster row of component `c`.
    #[inline]
    pub fn row_mut(&mut self, c: usize, y: usize) -> &mut [u8] {
        let stride = self.strides[c];
        &mut self.planes[c][y * stride..(y + 1) * stride]
    }

    /// Sample accessor with plane-local coordinates.
    #[inline]
    pub fn at(&self, c: usize, x: usize, y: usize) -> u8 {
        self.planes[c][y * self.strides[c] + x]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Subsampling;

    #[test]
    fn plane_sizes_follow_geometry() {
        let g = Geometry::new(20, 12, Subsampling::S422).unwrap();
        let p = SamplePlanes::new(&g);
        // Y: 2 MCUs wide => 32x16 padded.
        assert_eq!(p.planes[0].len(), 32 * 16);
        assert_eq!(p.strides[0], 32);
        // Chroma: 16x16 padded.
        assert_eq!(p.planes[1].len(), 16 * 16);
        assert_eq!(p.strides[1], 16);
    }

    #[test]
    fn store_block_lands_at_raster_position() {
        let g = Geometry::new(16, 16, Subsampling::S444).unwrap();
        let mut p = SamplePlanes::new(&g);
        let mut block = [0u8; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = i as u8;
        }
        p.store_block(0, 1, 1, &block);
        assert_eq!(p.at(0, 8, 8), 0);
        assert_eq!(p.at(0, 9, 8), 1);
        assert_eq!(p.at(0, 8, 9), 8);
        assert_eq!(p.at(0, 15, 15), 63);
        // Outside the block untouched.
        assert_eq!(p.at(0, 0, 0), 0);
        assert_eq!(p.at(0, 7, 7), 0);
    }

    #[test]
    fn rows_are_stride_wide() {
        let g = Geometry::new(16, 16, Subsampling::S422).unwrap();
        let mut p = SamplePlanes::new(&g);
        p.row_mut(1, 3)[0] = 9;
        assert_eq!(p.row(1, 3).len(), p.strides[1]);
        assert_eq!(p.at(1, 0, 3), 9);
    }
}
