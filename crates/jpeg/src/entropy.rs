//! Stateful, strictly sequential Huffman scan decoding.
//!
//! "Among all stages, Huffman decompression is strictly sequential, because
//! code-words have variable lengths and the start of a codeword in the
//! encoded bitstream is only known once the previous codeword has been
//! decoded" (paper §1). The decoder here therefore advances one MCU row at a
//! time on a single thread; the heterogeneous schedulers interleave calls to
//! [`EntropyDecoder::decode_mcu_row`] with (simulated) GPU dispatches to
//! build the pipelined timelines of paper Fig. 5(b)/Fig. 8.

use crate::bitio::BitReader;
use crate::coef::CoefBuffer;
use crate::error::{Error, Result};
use crate::geometry::Geometry;
use crate::huffman::{DecodeTable, HuffDecoder};
use crate::markers::ParsedJpeg;
use crate::metrics::{EntropyMetrics, RowMetrics};

/// Per-component entropy state.
#[derive(Debug, Clone, Copy)]
struct CompState {
    dc_table: usize,
    ac_table: usize,
    h_samp: usize,
    v_samp: usize,
}

/// Incremental scan decoder: one call per MCU row.
pub struct EntropyDecoder<'a> {
    reader: BitReader<'a>,
    geom: Geometry,
    comps: Vec<CompState>,
    dc_tables: [Option<DecodeTable>; 4],
    ac_tables: [Option<DecodeTable>; 4],
    dc_pred: [i32; 4],
    restart_interval: usize,
    mcus_until_restart: usize,
    next_restart: u8,
    next_row: usize,
}

impl<'a> EntropyDecoder<'a> {
    /// Prepare a decoder from parsed headers. Fails if a referenced Huffman
    /// table is missing.
    pub fn new(parsed: &ParsedJpeg<'a>, geom: &Geometry) -> Result<Self> {
        let mut dc_tables: [Option<DecodeTable>; 4] = [None, None, None, None];
        let mut ac_tables: [Option<DecodeTable>; 4] = [None, None, None, None];
        let mut comps = Vec::with_capacity(parsed.frame.components.len());
        for c in &parsed.frame.components {
            if dc_tables[c.dc_tbl].is_none() {
                let spec = parsed.dc_specs[c.dc_tbl]
                    .as_ref()
                    .ok_or(Error::Malformed("missing DC Huffman table"))?;
                dc_tables[c.dc_tbl] = Some(DecodeTable::build(spec)?);
            }
            if ac_tables[c.ac_tbl].is_none() {
                let spec = parsed.ac_specs[c.ac_tbl]
                    .as_ref()
                    .ok_or(Error::Malformed("missing AC Huffman table"))?;
                ac_tables[c.ac_tbl] = Some(DecodeTable::build(spec)?);
            }
            comps.push(CompState {
                dc_table: c.dc_tbl,
                ac_table: c.ac_tbl,
                h_samp: c.h_samp,
                v_samp: c.v_samp,
            });
        }
        let restart_interval = parsed.frame.restart_interval;
        Ok(EntropyDecoder {
            reader: BitReader::new(parsed.scan_data),
            geom: geom.clone(),
            comps,
            dc_tables,
            ac_tables,
            dc_pred: [0; 4],
            restart_interval,
            mcus_until_restart: restart_interval,
            next_restart: 0,
            next_row: 0,
        })
    }

    /// MCU rows decoded so far.
    #[inline]
    pub fn rows_done(&self) -> usize {
        self.next_row
    }

    /// True once every MCU row has been decoded.
    #[inline]
    pub fn is_finished(&self) -> bool {
        self.next_row >= self.geom.mcus_y
    }

    /// Decode the next MCU row into the shared coefficient buffer, returning
    /// the row's work metrics.
    pub fn decode_mcu_row(&mut self, coef: &mut CoefBuffer) -> Result<RowMetrics> {
        if self.is_finished() {
            return Err(Error::Malformed("decode past last MCU row"));
        }
        let row = self.next_row;
        let bits_before = self.reader.bits_consumed();
        let mut metrics = RowMetrics::default();

        for mcu_x in 0..self.geom.mcus_x {
            if self.restart_interval > 0 && self.mcus_until_restart == 0 {
                let n = self.reader.read_restart_marker()?;
                if n != self.next_restart {
                    return Err(Error::RestartMismatch {
                        expected: self.next_restart,
                        found: 0xD0 + n,
                    });
                }
                self.next_restart = (self.next_restart + 1) & 7;
                self.mcus_until_restart = self.restart_interval;
                self.dc_pred = [0; 4];
            }

            for (ci, comp) in self.comps.iter().enumerate() {
                let dc = self.dc_tables[comp.dc_table].as_ref().expect("dc table");
                let ac = self.ac_tables[comp.ac_table].as_ref().expect("ac table");
                for v in 0..comp.v_samp {
                    for h in 0..comp.h_samp {
                        let bx = mcu_x * comp.h_samp + h;
                        let by = row * comp.v_samp + v;
                        let idx = self.geom.block_index(ci, bx, by);
                        let block = coef.block_mut(idx);
                        *block = [0i16; 64];

                        let diff = HuffDecoder::decode_dc_diff(&mut self.reader, dc)?;
                        self.dc_pred[ci] += diff;
                        block[0] = self.dc_pred[ci] as i16;

                        let (symbols, nonzero, eob) =
                            HuffDecoder::decode_ac_block(&mut self.reader, ac, block)?;
                        coef.set_eob(idx, eob);
                        metrics.symbols += symbols as u64 + 1; // +1 DC symbol
                        metrics.nonzero_coefs += nonzero as u64 + (diff != 0) as u64;
                        metrics.blocks += 1;
                        metrics.record_eob(eob);
                    }
                }
            }
            if self.restart_interval > 0 {
                self.mcus_until_restart -= 1;
            }
        }

        metrics.bits = self.reader.bits_consumed() - bits_before;
        self.next_row += 1;
        Ok(metrics)
    }

    /// Decode every remaining MCU row, collecting per-row metrics.
    pub fn decode_remaining(&mut self, coef: &mut CoefBuffer) -> Result<EntropyMetrics> {
        let mut all = EntropyMetrics::default();
        while !self.is_finished() {
            all.per_row.push(self.decode_mcu_row(coef)?);
        }
        Ok(all)
    }
}

/// A restart-delimited slice of the entropy stream.
///
/// Restart markers byte-align the stream and reset the DC predictors, which
/// makes each interval *independently decodable* — the property the paper
/// notes general JPEG lacks (§1, discussing self-synchronizing codes \[12\]):
/// "the JPEG standard does not enforce the self-synchronization property".
/// When the encoder emitted DRI, Huffman decoding stops being strictly
/// sequential; `hetjpeg-core`'s parallel entropy driver exploits this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartSegment {
    /// Byte offset of the segment inside the scan data (past the marker).
    pub offset: usize,
    /// Byte length up to the next marker (or end of scan).
    pub len: usize,
    /// Global index of the segment's first MCU.
    pub start_mcu: usize,
    /// Number of MCUs in the segment.
    pub mcu_count: usize,
}

/// Split the scan data at restart markers. Returns one segment per restart
/// interval; without DRI the whole scan is a single segment.
pub fn split_restart_segments(parsed: &ParsedJpeg<'_>, geom: &Geometry) -> Vec<RestartSegment> {
    let total_mcus = geom.mcus_x * geom.mcus_y;
    let interval = parsed.frame.restart_interval;
    let scan = parsed.scan_data;
    if interval == 0 {
        return vec![RestartSegment {
            offset: 0,
            len: scan.len(),
            start_mcu: 0,
            mcu_count: total_mcus,
        }];
    }
    let mut segments = Vec::with_capacity(total_mcus.div_ceil(interval));
    let mut seg_start = 0usize;
    let mut mcu = 0usize;
    let mut i = 0usize;
    while i + 1 < scan.len() && mcu < total_mcus {
        if scan[i] == 0xFF {
            let m = scan[i + 1];
            if (0xD0..=0xD7).contains(&m) {
                segments.push(RestartSegment {
                    offset: seg_start,
                    len: i - seg_start,
                    start_mcu: mcu,
                    mcu_count: interval.min(total_mcus - mcu),
                });
                mcu += interval;
                seg_start = i + 2;
                i += 2;
                continue;
            }
            if m != 0x00 && m != 0xFF {
                break; // EOI or another marker terminates the scan
            }
        }
        i += 1;
    }
    if mcu < total_mcus {
        segments.push(RestartSegment {
            offset: seg_start,
            len: scan.len() - seg_start,
            start_mcu: mcu,
            mcu_count: total_mcus - mcu,
        });
    }
    segments
}

/// Core of the segment decoders: decode every block of `segment`, handing
/// `(block_index, coefficients, eob)` to `emit` as each block completes.
fn decode_segment_with(
    parsed: &ParsedJpeg<'_>,
    geom: &Geometry,
    segment: &RestartSegment,
    mut emit: impl FnMut(usize, &[i16; 64], u8),
) -> Result<RowMetrics> {
    let data = parsed
        .scan_data
        .get(segment.offset..segment.offset + segment.len)
        .ok_or(Error::UnexpectedEof)?;
    let mut reader = BitReader::new(data);

    // Build tables (cheap relative to a segment's work).
    let mut dc_tables: [Option<DecodeTable>; 4] = [None, None, None, None];
    let mut ac_tables: [Option<DecodeTable>; 4] = [None, None, None, None];
    for c in &parsed.frame.components {
        if dc_tables[c.dc_tbl].is_none() {
            let spec = parsed.dc_specs[c.dc_tbl]
                .as_ref()
                .ok_or(Error::Malformed("missing DC Huffman table"))?;
            dc_tables[c.dc_tbl] = Some(DecodeTable::build(spec)?);
        }
        if ac_tables[c.ac_tbl].is_none() {
            let spec = parsed.ac_specs[c.ac_tbl]
                .as_ref()
                .ok_or(Error::Malformed("missing AC Huffman table"))?;
            ac_tables[c.ac_tbl] = Some(DecodeTable::build(spec)?);
        }
    }

    let mut metrics = RowMetrics::default();
    let mut dc_pred = [0i32; 4];
    let mut block;
    for k in 0..segment.mcu_count {
        let mcu = segment.start_mcu + k;
        let mcu_x = mcu % geom.mcus_x;
        let row = mcu / geom.mcus_x;
        for (ci, comp) in parsed.frame.components.iter().enumerate() {
            let dc = dc_tables[comp.dc_tbl].as_ref().expect("dc table");
            let ac = ac_tables[comp.ac_tbl].as_ref().expect("ac table");
            for v in 0..comp.v_samp {
                for h in 0..comp.h_samp {
                    let bx = mcu_x * comp.h_samp + h;
                    let by = row * comp.v_samp + v;
                    let idx = geom.block_index(ci, bx, by);
                    block = [0i16; 64];
                    let diff = HuffDecoder::decode_dc_diff(&mut reader, dc)?;
                    dc_pred[ci] += diff;
                    block[0] = dc_pred[ci] as i16;
                    let (symbols, nonzero, eob) =
                        HuffDecoder::decode_ac_block(&mut reader, ac, &mut block)?;
                    metrics.symbols += symbols as u64 + 1;
                    metrics.nonzero_coefs += nonzero as u64 + (diff != 0) as u64;
                    metrics.blocks += 1;
                    metrics.record_eob(eob);
                    emit(idx, &block, eob);
                }
            }
        }
    }
    metrics.bits = reader.bits_consumed();
    Ok(metrics)
}

/// `(block_index, coefficients)` pairs of a decoded segment.
pub type SegmentBlocks = Vec<(usize, [i16; 64])>;

/// Decode one restart segment into `(block_index, coefficients)` pairs.
///
/// The segment's bitstream is self-contained: byte-aligned start, reset DC
/// predictors, no interior restart markers. Prefer
/// [`decode_mcu_segment_into`] in parallel drivers — it skips this
/// function's per-segment accumulation vector and the copy after the join.
pub fn decode_mcu_segment(
    parsed: &ParsedJpeg<'_>,
    geom: &Geometry,
    segment: &RestartSegment,
) -> Result<(SegmentBlocks, RowMetrics)> {
    let mut out = Vec::with_capacity(segment.mcu_count * geom.blocks_per_mcu());
    let metrics = decode_segment_with(parsed, geom, segment, |idx, block, _eob| {
        out.push((idx, *block))
    })?;
    Ok((out, metrics))
}

/// Decode one restart segment, storing each block (coefficients + EOB)
/// directly into its slot of the shared coefficient buffer.
///
/// # Safety
///
/// Concurrent calls must target disjoint segments (no shared block
/// indices). Segments produced by [`split_restart_segments`], each passed to
/// exactly one call, satisfy this by construction: they partition the MCU
/// sequence.
pub unsafe fn decode_mcu_segment_into(
    parsed: &ParsedJpeg<'_>,
    geom: &Geometry,
    segment: &RestartSegment,
    out: &crate::coef::CoefWriter<'_>,
) -> Result<RowMetrics> {
    decode_segment_with(parsed, geom, segment, |idx, block, eob| {
        // SAFETY: forwarded from this function's contract — disjoint
        // segments yield disjoint block indices.
        unsafe { out.write_block(idx, block, eob) }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{encode_rgb, EncodeParams};
    use crate::markers::parse_jpeg;
    use crate::types::Subsampling;

    fn gradient_rgb(w: usize, h: usize) -> Vec<u8> {
        let mut rgb = Vec::with_capacity(w * h * 3);
        for y in 0..h {
            for x in 0..w {
                rgb.push(((x * 255) / w.max(1)) as u8);
                rgb.push(((y * 255) / h.max(1)) as u8);
                rgb.push((((x + y) * 127) / (w + h).max(1)) as u8);
            }
        }
        rgb
    }

    #[test]
    fn row_by_row_matches_decode_remaining() {
        let (w, h) = (48usize, 32usize);
        let jpeg = encode_rgb(
            &gradient_rgb(w, h),
            w as u32,
            h as u32,
            &EncodeParams {
                quality: 85,
                subsampling: Subsampling::S422,
                restart_interval: 0,
            },
        )
        .unwrap();
        let parsed = parse_jpeg(&jpeg).unwrap();
        let geom = Geometry::new(
            parsed.frame.width,
            parsed.frame.height,
            parsed.frame.subsampling,
        )
        .unwrap();

        let mut dec1 = EntropyDecoder::new(&parsed, &geom).unwrap();
        let mut coef1 = CoefBuffer::new(&geom);
        let all = dec1.decode_remaining(&mut coef1).unwrap();
        assert_eq!(all.per_row.len(), geom.mcus_y);

        let mut dec2 = EntropyDecoder::new(&parsed, &geom).unwrap();
        let mut coef2 = CoefBuffer::new(&geom);
        let mut rows = 0;
        while !dec2.is_finished() {
            dec2.decode_mcu_row(&mut coef2).unwrap();
            rows += 1;
        }
        assert_eq!(rows, geom.mcus_y);
        assert_eq!(coef1.as_slice(), coef2.as_slice());
    }

    #[test]
    fn metrics_count_all_blocks() {
        let (w, h) = (32usize, 24usize);
        let jpeg = encode_rgb(
            &gradient_rgb(w, h),
            w as u32,
            h as u32,
            &EncodeParams {
                quality: 75,
                subsampling: Subsampling::S444,
                restart_interval: 0,
            },
        )
        .unwrap();
        let parsed = parse_jpeg(&jpeg).unwrap();
        let geom = Geometry::new(w, h, Subsampling::S444).unwrap();
        let mut dec = EntropyDecoder::new(&parsed, &geom).unwrap();
        let mut coef = CoefBuffer::new(&geom);
        let m = dec.decode_remaining(&mut coef).unwrap();
        assert_eq!(m.total().blocks as usize, geom.total_blocks);
        assert!(m.total().bits > 0);
        assert!(m.total().symbols >= m.total().blocks); // at least DC per block
    }

    #[test]
    fn restart_markers_reset_predictors() {
        let (w, h) = (64usize, 16usize);
        let rgb = gradient_rgb(w, h);
        let no_rst = encode_rgb(
            &rgb,
            w as u32,
            h as u32,
            &EncodeParams {
                quality: 90,
                subsampling: Subsampling::S422,
                restart_interval: 0,
            },
        )
        .unwrap();
        let with_rst = encode_rgb(
            &rgb,
            w as u32,
            h as u32,
            &EncodeParams {
                quality: 90,
                subsampling: Subsampling::S422,
                restart_interval: 2,
            },
        )
        .unwrap();
        assert_ne!(no_rst, with_rst);

        // Both must decode to identical coefficients.
        let decode_coefs = |data: &[u8]| {
            let parsed = parse_jpeg(data).unwrap();
            let geom = Geometry::new(w, h, Subsampling::S422).unwrap();
            let mut dec = EntropyDecoder::new(&parsed, &geom).unwrap();
            let mut coef = CoefBuffer::new(&geom);
            dec.decode_remaining(&mut coef).unwrap();
            coef.as_slice().to_vec()
        };
        assert_eq!(decode_coefs(&no_rst), decode_coefs(&with_rst));
    }

    #[test]
    fn restart_segments_cover_all_mcus_and_decode_identically() {
        let (w, h) = (64usize, 48usize);
        let jpeg = encode_rgb(
            &gradient_rgb(w, h),
            w as u32,
            h as u32,
            &EncodeParams {
                quality: 85,
                subsampling: Subsampling::S422,
                restart_interval: 3,
            },
        )
        .unwrap();
        let parsed = parse_jpeg(&jpeg).unwrap();
        let geom = Geometry::new(w, h, Subsampling::S422).unwrap();

        let segments = split_restart_segments(&parsed, &geom);
        // 4x6 = 24 MCUs at interval 3 -> 8 segments.
        assert_eq!(segments.len(), 8);
        let covered: usize = segments.iter().map(|s| s.mcu_count).sum();
        assert_eq!(covered, geom.mcus_x * geom.mcus_y);
        assert!(segments
            .windows(2)
            .all(|w| w[0].start_mcu + w[0].mcu_count == w[1].start_mcu));

        // Segment-wise decode must equal the sequential decode.
        let mut seq = EntropyDecoder::new(&parsed, &geom).unwrap();
        let mut want = CoefBuffer::new(&geom);
        seq.decode_remaining(&mut want).unwrap();

        let mut got = CoefBuffer::new(&geom);
        for seg in &segments {
            let (blocks, m) = decode_mcu_segment(&parsed, &geom, seg).unwrap();
            assert!(m.blocks > 0);
            for (idx, block) in blocks {
                *got.block_mut(idx) = block;
            }
        }
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn no_dri_yields_single_segment() {
        let (w, h) = (32usize, 16usize);
        let jpeg = encode_rgb(
            &gradient_rgb(w, h),
            w as u32,
            h as u32,
            &EncodeParams {
                quality: 85,
                subsampling: Subsampling::S444,
                restart_interval: 0,
            },
        )
        .unwrap();
        let parsed = parse_jpeg(&jpeg).unwrap();
        let geom = Geometry::new(w, h, Subsampling::S444).unwrap();
        let segments = split_restart_segments(&parsed, &geom);
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].mcu_count, geom.mcus_x * geom.mcus_y);
    }

    #[test]
    fn missing_huffman_table_is_error() {
        let (w, h) = (16usize, 16usize);
        let jpeg = encode_rgb(
            &gradient_rgb(w, h),
            w as u32,
            h as u32,
            &EncodeParams {
                quality: 50,
                subsampling: Subsampling::S444,
                restart_interval: 0,
            },
        )
        .unwrap();
        let mut parsed = parse_jpeg(&jpeg).unwrap();
        parsed.ac_specs = [None, None, None, None];
        let geom = Geometry::new(w, h, Subsampling::S444).unwrap();
        assert!(EntropyDecoder::new(&parsed, &geom).is_err());
    }
}
