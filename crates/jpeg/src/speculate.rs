//! Speculative self-synchronizing Huffman decoding of restart-free scans.
//!
//! The paper calls entropy decoding "strictly sequential" because "the JPEG
//! standard does not enforce the self-synchronization property" (§1). In
//! practice, however, Huffman streams *do* self-synchronize: a decoder
//! started at an arbitrary byte offset produces garbage for a short prefix
//! and then converges onto the true codeword boundaries (Klein & Wiseman;
//! Weißenberger & Schmidt use exactly this to decode JPEG on GPUs). This
//! module exploits that statistically-certain convergence while keeping the
//! output **provably bit-identical** to the sequential pass:
//!
//! 1. [`plan_chunks`] splits a marker-free payload into evenly spaced,
//!    byte-aligned chunks (start bytes nudged off stuffed `FF 00` pairs).
//! 2. Each chunk is decoded speculatively by [`decode_chunk_speculative`]
//!    into a staging area, recording at every MCU boundary the canonical
//!    raw-bit position ([`crate::bitio::BitReader::bit_checkpoint`]) and the
//!    worker-local DC predictors. Chunk workers are embarrassingly parallel.
//! 3. [`stitch_segment`] replays the stream exactly: a single reconciling
//!    decoder walks the chunks in order, re-decodes each chunk's short
//!    unconverged prefix, and — the moment its canonical position equals a
//!    staged checkpoint — **adopts** the remaining staged MCUs wholesale,
//!    fixing up DC coefficients by the per-component predictor delta and
//!    jumping to the worker's exit state.
//!
//! Correctness rests on determinism: decoding is a pure function of the
//! canonical bit position and the byte slice, so once positions agree, the
//! staged blocks, metrics, exit state — and any staged *error* — are exactly
//! what the sequential decoder would produce. A chunk that never converges
//! (possible only on corrupt data) is simply re-decoded exactly; the fast
//! path is an optimization the slow path never depends on.

use crate::bitio::BitReader;
use crate::coef::CoefBuffer;
use crate::error::{Error, Result};
use crate::geometry::Geometry;
use crate::huffman::{DecodeTable, HuffDecoder};
use crate::markers::ParsedJpeg;
use crate::metrics::RowMetrics;

/// Minimum payload bytes per speculative chunk. Convergence prefixes are a
/// handful of MCUs (tens of bytes); chunks far larger than the prefix keep
/// the waste fraction negligible while still letting small test images
/// exercise the path.
pub const MIN_CHUNK_BYTES: usize = 384;

/// Observability counters of one speculative decode (ISSUE 6 satellite:
/// surfaced through `SessionStats`/`ServerStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Speculative chunk workers launched (the leading exact chunk included).
    pub chunks: u64,
    /// Chunks whose staged positions the stitch pass converged onto.
    pub synced: u64,
    /// Staged MCUs adopted verbatim (modulo the DC predictor fix-up).
    pub adopted_mcus: u64,
    /// Staged MCUs discarded as pre-convergence garbage.
    pub wasted_mcus: u64,
    /// MCUs the stitch pass re-decoded exactly (convergence gaps).
    pub redecoded_mcus: u64,
}

impl SpecStats {
    /// Accumulate another run's counters.
    pub fn merge(&mut self, other: &SpecStats) {
        self.chunks += other.chunks;
        self.synced += other.synced;
        self.adopted_mcus += other.adopted_mcus;
        self.wasted_mcus += other.wasted_mcus;
        self.redecoded_mcus += other.redecoded_mcus;
    }

    /// Mean convergence prefix (wasted + re-decoded MCUs) per speculative
    /// chunk boundary — the quantity `profile::train` fits into the cost
    /// model's speculation-waste term. The leading chunk starts exact, so
    /// boundaries are `chunks - 1`.
    pub fn prefix_mcus_per_boundary(&self) -> f64 {
        let boundaries = self.chunks.saturating_sub(1);
        if boundaries == 0 {
            return 0.0;
        }
        (self.wasted_mcus + self.redecoded_mcus) as f64 / boundaries as f64
    }
}

/// Work counters of one speculatively decoded MCU.
#[derive(Debug, Clone, Copy, Default)]
pub struct McuMetrics {
    /// Bits consumed.
    pub bits: u32,
    /// Huffman symbols decoded (DC included).
    pub symbols: u32,
    /// Nonzero coefficients (DC included).
    pub nonzero: u32,
}

/// Per-component scan state, mirroring the sequential decoder.
#[derive(Debug, Clone, Copy)]
struct CompSpec {
    dc_tbl: usize,
    ac_tbl: usize,
    h_samp: usize,
    v_samp: usize,
}

/// MCU-granular Huffman decoder resumable from an arbitrary byte offset of a
/// marker-free payload. Used both by the speculative chunk workers (starting
/// mid-stream with zeroed predictors) and by the stitch pass's exact
/// reconciling decoder (starting at offset 0).
pub struct McuDecoder<'a> {
    reader: BitReader<'a>,
    comps: Vec<CompSpec>,
    dc_tables: [Option<DecodeTable>; 4],
    ac_tables: [Option<DecodeTable>; 4],
    /// Running DC predictors — worker-local (relative) when started
    /// mid-stream, absolute for the exact decoder.
    pub dc_pred: [i32; 4],
}

impl<'a> McuDecoder<'a> {
    /// Build a decoder over `payload` starting at `start_byte`. Fails if a
    /// referenced Huffman table is missing.
    pub fn new_at(parsed: &ParsedJpeg<'_>, payload: &'a [u8], start_byte: usize) -> Result<Self> {
        let mut dc_tables: [Option<DecodeTable>; 4] = [None, None, None, None];
        let mut ac_tables: [Option<DecodeTable>; 4] = [None, None, None, None];
        let mut comps = Vec::with_capacity(parsed.frame.components.len());
        for c in &parsed.frame.components {
            if dc_tables[c.dc_tbl].is_none() {
                let spec = parsed.dc_specs[c.dc_tbl]
                    .as_ref()
                    .ok_or(Error::Malformed("missing DC Huffman table"))?;
                dc_tables[c.dc_tbl] = Some(DecodeTable::build(spec)?);
            }
            if ac_tables[c.ac_tbl].is_none() {
                let spec = parsed.ac_specs[c.ac_tbl]
                    .as_ref()
                    .ok_or(Error::Malformed("missing AC Huffman table"))?;
                ac_tables[c.ac_tbl] = Some(DecodeTable::build(spec)?);
            }
            comps.push(CompSpec {
                dc_tbl: c.dc_tbl,
                ac_tbl: c.ac_tbl,
                h_samp: c.h_samp,
                v_samp: c.v_samp,
            });
        }
        Ok(McuDecoder {
            reader: BitReader::new_at(payload, start_byte),
            comps,
            dc_tables,
            ac_tables,
            dc_pred: [0; 4],
        })
    }

    /// Canonical raw-bit position of the next codeword (see
    /// [`BitReader::bit_checkpoint`]).
    #[inline]
    pub fn checkpoint(&self) -> u64 {
        self.reader.bit_checkpoint()
    }

    /// Jump to another decoder's captured reader state and predictors.
    fn restore(&mut self, reader: BitReader<'a>, dc_pred: [i32; 4]) {
        self.reader = reader;
        self.dc_pred = dc_pred;
    }

    /// Decode one MCU, handing each block to `emit(ci, v, h, coefs, eob)` in
    /// scan order. Block DC values reflect `self.dc_pred` — relative when
    /// the decoder started mid-stream.
    pub fn decode_next_mcu(
        &mut self,
        emit: &mut impl FnMut(usize, usize, usize, &[i16; 64], u8),
    ) -> Result<McuMetrics> {
        let bits_before = self.reader.bits_consumed();
        let mut m = McuMetrics::default();
        for ci in 0..self.comps.len() {
            let comp = self.comps[ci];
            let dc = self.dc_tables[comp.dc_tbl].as_ref().expect("dc table");
            let ac = self.ac_tables[comp.ac_tbl].as_ref().expect("ac table");
            for v in 0..comp.v_samp {
                for h in 0..comp.h_samp {
                    let mut block = [0i16; 64];
                    let diff = HuffDecoder::decode_dc_diff(&mut self.reader, dc)?;
                    self.dc_pred[ci] = self.dc_pred[ci].wrapping_add(diff);
                    block[0] = self.dc_pred[ci] as i16;
                    let (symbols, nonzero, eob) =
                        HuffDecoder::decode_ac_block(&mut self.reader, ac, &mut block)?;
                    m.symbols += symbols + 1;
                    m.nonzero += nonzero + (diff != 0) as u32;
                    emit(ci, v, h, &block, eob);
                }
            }
        }
        m.bits = (self.reader.bits_consumed() - bits_before) as u32;
        Ok(m)
    }
}

/// Staged output of one speculative chunk worker.
pub struct StagedChunk<'a> {
    /// Payload byte offset this worker started at.
    pub start_byte: usize,
    /// Canonical bit position at the start of each staged MCU, strictly
    /// increasing; one entry per staged MCU.
    checkpoints: Vec<u64>,
    /// Worker-local DC predictors before each checkpointed MCU.
    pred_before: Vec<[i32; 4]>,
    /// Flat staging area: `staged × blocks_per_mcu` blocks of 64 coefficients.
    blocks: Vec<i16>,
    /// EOB sidecar, one per staged block.
    eobs: Vec<u8>,
    /// Work counters per staged MCU.
    mcu_metrics: Vec<McuMetrics>,
    /// Reader state + predictors after the last staged MCU (absent when no
    /// attempt survived to the stop boundary).
    exit: Option<(BitReader<'a>, [i32; 4])>,
    /// MCUs decoded and thrown away across failed attempts (a mis-phased
    /// speculative decode hits `BadHuffmanCode` on garbage; the worker then
    /// restarts one byte past the failure point).
    discarded_mcus: u64,
    /// Total speculative work done (garbage prefix, failed attempts and all)
    /// — what the virtual-time scheduler prices this worker with.
    pub metrics: RowMetrics,
}

impl StagedChunk<'_> {
    /// Number of fully staged MCUs.
    pub fn staged(&self) -> usize {
        self.mcu_metrics.len()
    }

    /// Canonical bit positions recorded at staged MCU boundaries.
    pub fn checkpoints(&self) -> &[u64] {
        &self.checkpoints
    }
}

/// Split `payload` into up to `want` speculative chunks of at least
/// [`MIN_CHUNK_BYTES`], returning `(start, stop)` byte ranges. Starts are
/// nudged off the `00` of stuffed `FF 00` pairs so a mid-stream reader
/// classifies every byte it can reach exactly like a reader coming from the
/// left. The first chunk always starts at 0.
pub fn plan_chunks(payload: &[u8], want: usize) -> Vec<(usize, usize)> {
    let max_n = (payload.len() / MIN_CHUNK_BYTES).max(1);
    let n = want.clamp(1, max_n);
    let mut starts: Vec<usize> = Vec::with_capacity(n);
    for i in 0..n {
        let mut s = i * payload.len() / n;
        while s > 0 && s < payload.len() && payload[s] == 0x00 && payload[s - 1] == 0xFF {
            s += 1;
        }
        if starts.last().is_none_or(|&p| s > p) {
            starts.push(s);
        }
    }
    let mut out = Vec::with_capacity(starts.len());
    for (i, &s) in starts.iter().enumerate() {
        let stop = starts.get(i + 1).copied().unwrap_or(payload.len());
        if s < stop || i == 0 {
            out.push((s, stop));
        }
    }
    out
}

/// Speculatively decode one chunk of a marker-free `payload` (a whole
/// no-restart scan, or one restart interval): start at `start_byte` with
/// zeroed predictors, stage MCUs until the first MCU boundary at or past
/// `stop_byte` (bit positions ≥ `8·stop_byte`), a marker/EOF, or `max_mcus`
/// staged.
///
/// A mis-phased speculative decode can hit `BadHuffmanCode` on garbage; the
/// worker then discards the attempt and **restarts one byte past the
/// failure point** — the ISSUE's "trying bit phases as needed". Discarding
/// is safe: an attempt that errors can never have passed through a true
/// stream position (decoding from a true position replays the valid
/// sequential decode), so none of its checkpoints were adoptable anyway.
/// Symmetrically, the kept error-free attempt can never sync ahead of a
/// *true* stream error — so adoption can't mask one. Decode errors are
/// therefore never staged; on corrupt data they surface from the stitch
/// pass's exact reconciler with the sequential decoder's exact error.
pub fn decode_chunk_speculative<'a>(
    parsed: &ParsedJpeg<'_>,
    geom: &Geometry,
    payload: &'a [u8],
    start_byte: usize,
    stop_byte: usize,
    max_mcus: usize,
) -> Result<StagedChunk<'a>> {
    let bpm = geom.blocks_per_mcu();
    let stop_bits = 8 * stop_byte as u64;
    let mut chunk = StagedChunk {
        start_byte,
        checkpoints: Vec::new(),
        pred_before: Vec::new(),
        blocks: Vec::new(),
        eobs: Vec::new(),
        mcu_metrics: Vec::new(),
        exit: None,
        discarded_mcus: 0,
        metrics: RowMetrics::default(),
    };
    let mut attempt_start = start_byte;
    'attempts: while attempt_start < stop_byte.min(payload.len()) || attempt_start == start_byte {
        // Never start on the 00 of a stuffed FF 00 pair (it carries no bits
        // and a left-arriving reader would skip it).
        while attempt_start > 0
            && attempt_start < payload.len()
            && payload[attempt_start] == 0x00
            && payload[attempt_start - 1] == 0xFF
        {
            attempt_start += 1;
        }
        let mut dec = McuDecoder::new_at(parsed, payload, attempt_start)?;
        loop {
            let cp = dec.checkpoint();
            if cp == u64::MAX || cp >= stop_bits || chunk.staged() >= max_mcus {
                chunk.exit = Some((dec.reader.clone(), dec.dc_pred));
                break 'attempts;
            }
            chunk.checkpoints.push(cp);
            chunk.pred_before.push(dec.dc_pred);
            let res = dec.decode_next_mcu(&mut |_ci, _v, _h, block, eob| {
                chunk.blocks.extend_from_slice(block);
                chunk.eobs.push(eob);
            });
            match res {
                Ok(m) => {
                    chunk.mcu_metrics.push(m);
                    chunk.metrics.bits += m.bits as u64;
                    chunk.metrics.symbols += m.symbols as u64;
                    chunk.metrics.nonzero_coefs += m.nonzero as u64;
                    chunk.metrics.blocks += bpm as u64;
                    for &e in &chunk.eobs[chunk.eobs.len() - bpm..] {
                        chunk.metrics.record_eob(e);
                    }
                }
                Err(_) => {
                    // Discard the attempt, restart past the failure point.
                    chunk.discarded_mcus += chunk.staged() as u64;
                    let fail_cp = dec.checkpoint();
                    chunk.checkpoints.clear();
                    chunk.pred_before.clear();
                    chunk.blocks.clear();
                    chunk.eobs.clear();
                    chunk.mcu_metrics.clear();
                    if fail_cp == u64::MAX {
                        break 'attempts; // failed inside EOF/marker padding
                    }
                    attempt_start = ((fail_cp / 8 + 1) as usize).max(attempt_start + 1);
                    continue 'attempts;
                }
            }
        }
    }
    Ok(chunk)
}

/// Outcome of stitching one segment's staged chunks.
#[derive(Debug, Clone, Default)]
pub struct StitchOutcome {
    /// Exact re-decode work done serially by the reconciler (gap MCUs).
    pub stitch_metrics: RowMetrics,
    /// Metrics of the blocks actually written — identical to what the
    /// sequential decoder would report for this segment.
    pub written: RowMetrics,
    /// Speculation counters.
    pub stats: SpecStats,
}

/// Reconcile staged chunks into the coefficient buffer, re-decoding
/// convergence gaps exactly. `start_mcu`/`mcu_count` locate the segment in
/// the global MCU sequence (the whole image for a no-restart scan). The
/// result — coefficients, EOBs, and any returned error — is bit-identical
/// to a sequential decode of `payload`.
pub fn stitch_segment<'a>(
    parsed: &ParsedJpeg<'_>,
    geom: &Geometry,
    payload: &'a [u8],
    start_mcu: usize,
    mcu_count: usize,
    chunks: &[StagedChunk<'a>],
    coef: &mut CoefBuffer,
) -> Result<StitchOutcome> {
    let mut out = StitchOutcome {
        stats: SpecStats {
            chunks: chunks.len() as u64,
            ..SpecStats::default()
        },
        ..StitchOutcome::default()
    };
    let bpm = geom.blocks_per_mcu();
    let comps: Vec<(usize, usize)> = parsed
        .frame
        .components
        .iter()
        .map(|c| (c.h_samp, c.v_samp))
        .collect();
    let mut dec = McuDecoder::new_at(parsed, payload, 0)?;
    let mut mcu = 0usize;

    // Decode one MCU exactly, writing blocks straight to their slots and
    // recording their EOB classes into `written` (adopted staged blocks
    // record theirs at adoption time).
    let decode_exact = |dec: &mut McuDecoder<'_>,
                        mcu: usize,
                        coef: &mut CoefBuffer,
                        written: &mut RowMetrics|
     -> Result<McuMetrics> {
        let g = start_mcu + mcu;
        let (mcu_x, row) = (g % geom.mcus_x, g / geom.mcus_x);
        dec.decode_next_mcu(&mut |ci, v, h, block, eob| {
            let (h_samp, v_samp) = comps[ci];
            let idx = geom.block_index(ci, mcu_x * h_samp + h, row * v_samp + v);
            *coef.block_mut(idx) = *block;
            coef.set_eob(idx, eob);
            written.record_eob(eob);
        })
    };

    'chunks: for ch in chunks {
        // MCUs staged by discarded mis-phased attempts are pure waste.
        out.stats.wasted_mcus += ch.discarded_mcus;
        if mcu >= mcu_count {
            break;
        }
        let Some(&last_cp) = ch.checkpoints.last() else {
            continue; // every attempt was discarded: nothing to adopt
        };
        // Advance exactly until we land on one of this chunk's checkpoints
        // or overshoot its coverage.
        let sync = loop {
            if mcu >= mcu_count {
                break 'chunks;
            }
            let cp = dec.checkpoint();
            if cp > last_cp {
                break None;
            }
            if let Ok(j) = ch.checkpoints.binary_search(&cp) {
                break Some(j);
            }
            let m = decode_exact(&mut dec, mcu, coef, &mut out.written)?;
            add_mcu(&mut out.stitch_metrics, &m, bpm);
            add_mcu(&mut out.written, &m, bpm);
            mcu += 1;
            out.stats.redecoded_mcus += 1;
        };
        let Some(j) = sync else {
            // Never converged (corrupt data): all of this chunk's staged
            // work is waste; the reconciler keeps decoding exactly.
            out.stats.wasted_mcus += ch.staged() as u64;
            continue;
        };
        out.stats.synced += 1;
        out.stats.wasted_mcus += j as u64;
        // Adopt staged MCUs j.. with the DC predictor delta folded in.
        let delta: [i32; 4] =
            std::array::from_fn(|c| dec.dc_pred[c].wrapping_sub(ch.pred_before[j][c]));
        let take = (ch.staged() - j).min(mcu_count - mcu);
        for k in j..j + take {
            let g = start_mcu + mcu;
            let (mcu_x, row) = (g % geom.mcus_x, g / geom.mcus_x);
            let mut slot = k * bpm;
            for (ci, &(h_samp, v_samp)) in comps.iter().enumerate() {
                for v in 0..v_samp {
                    for h in 0..h_samp {
                        let idx = geom.block_index(ci, mcu_x * h_samp + h, row * v_samp + v);
                        let src = &ch.blocks[slot * 64..slot * 64 + 64];
                        let dst = coef.block_mut(idx);
                        dst.copy_from_slice(src);
                        dst[0] = dst[0].wrapping_add(delta[ci] as i16);
                        let eob = ch.eobs[slot];
                        coef.set_eob(idx, eob);
                        out.written.record_eob(eob);
                        slot += 1;
                    }
                }
            }
            let m = ch.mcu_metrics[k];
            out.written.bits += m.bits as u64;
            out.written.symbols += m.symbols as u64;
            out.written.nonzero_coefs += m.nonzero as u64;
            out.written.blocks += bpm as u64;
            mcu += 1;
            out.stats.adopted_mcus += 1;
        }
        // Wasted staged MCUs include any tail beyond the image (take capped
        // by mcu_count).
        out.stats.wasted_mcus += (ch.staged() - j - take) as u64;
        if mcu >= mcu_count {
            break;
        }
        if j + take == ch.staged() {
            // Coverage exhausted mid-image: resume from the worker's exit
            // state (a kept attempt always records one) with the predictor
            // delta folded in.
            let (reader, exit_pred) = ch.exit.clone().expect("kept attempt has exit state");
            dec.restore(
                reader,
                std::array::from_fn(|c| exit_pred[c].wrapping_add(delta[c])),
            );
        }
    }
    // Tail (and full fallback when nothing converged): exact decode.
    while mcu < mcu_count {
        let m = decode_exact(&mut dec, mcu, coef, &mut out.written)?;
        add_mcu(&mut out.stitch_metrics, &m, bpm);
        add_mcu(&mut out.written, &m, bpm);
        mcu += 1;
        out.stats.redecoded_mcus += 1;
    }
    Ok(out)
}

fn add_mcu(into: &mut RowMetrics, m: &McuMetrics, blocks: usize) {
    into.bits += m.bits as u64;
    into.symbols += m.symbols as u64;
    into.nonzero_coefs += m.nonzero as u64;
    into.blocks += blocks as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{encode_rgb, EncodeParams};
    use crate::entropy::EntropyDecoder;
    use crate::markers::parse_jpeg;
    use crate::testutil::noise_rgb;
    use crate::types::Subsampling;

    fn jpeg_of(w: usize, h: usize, q: u8, sub: Subsampling) -> Vec<u8> {
        encode_rgb(
            &noise_rgb(w * h, 0xA5A5),
            w as u32,
            h as u32,
            &EncodeParams {
                quality: q,
                subsampling: sub,
                restart_interval: 0,
            },
        )
        .unwrap()
    }

    fn spec_decode(jpeg: &[u8], want_chunks: usize) -> (CoefBuffer, CoefBuffer, StitchOutcome) {
        let parsed = parse_jpeg(jpeg).unwrap();
        let geom = Geometry::new(
            parsed.frame.width,
            parsed.frame.height,
            parsed.frame.subsampling,
        )
        .unwrap();
        let total = geom.mcus_x * geom.mcus_y;

        let mut seq = EntropyDecoder::new(&parsed, &geom).unwrap();
        let mut want = CoefBuffer::new(&geom);
        seq.decode_remaining(&mut want).unwrap();

        let payload = parsed.scan_data;
        let ranges = plan_chunks(payload, want_chunks);
        let chunks: Vec<_> = ranges
            .iter()
            .map(|&(s, e)| decode_chunk_speculative(&parsed, &geom, payload, s, e, total).unwrap())
            .collect();
        let mut got = CoefBuffer::new(&geom);
        let out = stitch_segment(&parsed, &geom, payload, 0, total, &chunks, &mut got).unwrap();
        (got, want, out)
    }

    #[test]
    fn checkpoints_strictly_increase() {
        let jpeg = jpeg_of(160, 96, 80, Subsampling::S420);
        let parsed = parse_jpeg(&jpeg).unwrap();
        let geom = Geometry::new(160, 96, Subsampling::S420).unwrap();
        let total = geom.mcus_x * geom.mcus_y;
        let payload = parsed.scan_data;
        let ch =
            decode_chunk_speculative(&parsed, &geom, payload, 0, payload.len(), total).unwrap();
        assert!(ch.staged() > 0);
        assert!(ch.checkpoints.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(ch.discarded_mcus, 0, "chunk 0 starts exact: no restarts");
    }

    #[test]
    fn speculative_decode_is_bit_identical_across_chunk_counts() {
        for sub in [Subsampling::S444, Subsampling::S422, Subsampling::S420] {
            for q in [50u8, 80, 92] {
                let jpeg = jpeg_of(168, 120, q, sub);
                for n in [2usize, 3, 4, 8] {
                    let (got, want, out) = spec_decode(&jpeg, n);
                    assert_eq!(
                        got.as_slice(),
                        want.as_slice(),
                        "{sub:?} q{q} {n} chunks: coefficients differ"
                    );
                    for b in 0..want.num_blocks() {
                        assert_eq!(got.eob(b), want.eob(b), "{sub:?} q{q} {n} chunks: EOB {b}");
                    }
                    assert_eq!(out.stats.chunks as usize, plan_chunks_len(&jpeg, n));
                    // The leading chunk starts exact, so at least it syncs.
                    assert!(out.stats.synced >= 1);
                }
            }
        }
    }

    fn plan_chunks_len(jpeg: &[u8], n: usize) -> usize {
        let parsed = parse_jpeg(jpeg).unwrap();
        plan_chunks(parsed.scan_data, n).len()
    }

    #[test]
    fn written_metrics_match_sequential_totals() {
        let jpeg = jpeg_of(200, 144, 82, Subsampling::S422);
        let parsed = parse_jpeg(&jpeg).unwrap();
        let geom = Geometry::new(200, 144, Subsampling::S422).unwrap();
        let mut seq = EntropyDecoder::new(&parsed, &geom).unwrap();
        let mut coef = CoefBuffer::new(&geom);
        let seq_total = seq.decode_remaining(&mut coef).unwrap().total();

        let (_, _, out) = spec_decode(&jpeg, 4);
        assert_eq!(out.written.bits, seq_total.bits);
        assert_eq!(out.written.symbols, seq_total.symbols);
        assert_eq!(out.written.nonzero_coefs, seq_total.nonzero_coefs);
        assert_eq!(out.written.blocks, seq_total.blocks);
        assert_eq!(out.written.eob_classes, seq_total.eob_classes);
    }

    #[test]
    fn convergence_prefix_is_short_on_real_streams() {
        let jpeg = jpeg_of(256, 192, 80, Subsampling::S420);
        let (_, _, out) = spec_decode(&jpeg, 4);
        assert!(out.stats.synced >= 2, "stats: {:?}", out.stats);
        // Self-synchronization: the garbage prefix is a few MCUs, not a
        // chunk's worth.
        assert!(
            out.stats.prefix_mcus_per_boundary() < 32.0,
            "prefix too long: {:?}",
            out.stats
        );
        assert!(out.stats.adopted_mcus > out.stats.redecoded_mcus);
    }

    #[test]
    fn truncated_payload_errors_like_sequential() {
        let jpeg = jpeg_of(96, 96, 85, Subsampling::S444);
        let parsed = parse_jpeg(&jpeg).unwrap();
        let geom = Geometry::new(96, 96, Subsampling::S444).unwrap();
        let total = geom.mcus_x * geom.mcus_y;
        let cut = parsed.scan_data.len() / 3;
        let payload = &parsed.scan_data[..cut];

        let mut seq = McuDecoder::new_at(&parsed, payload, 0).unwrap();
        let seq_err = (0..total).find_map(|_| seq.decode_next_mcu(&mut |_, _, _, _, _| {}).err());

        let ranges = plan_chunks(payload, 4);
        let chunks: Vec<_> = ranges
            .iter()
            .map(|&(s, e)| decode_chunk_speculative(&parsed, &geom, payload, s, e, total).unwrap())
            .collect();
        let mut coef = CoefBuffer::new(&geom);
        let spec_err = stitch_segment(&parsed, &geom, payload, 0, total, &chunks, &mut coef).err();
        assert_eq!(spec_err, seq_err, "speculative error must match sequential");
    }
}
