//! Core value types shared by encoder, decoder and scheduler.

use crate::error::{Error, Result};

/// Chroma subsampling factors supported by the codec.
///
/// The paper evaluates 4:2:2 and 4:4:4 (§6); 4:2:0 is implemented as the
/// "decoded in a similar manner" extension the paper mentions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Subsampling {
    /// No chroma subsampling; MCU is 8x8 pixels.
    S444,
    /// Chroma halved horizontally; MCU is 16x8 pixels.
    S422,
    /// Chroma halved in both directions; MCU is 16x16 pixels.
    S420,
}

impl Subsampling {
    /// (horizontal, vertical) sampling factors of the luma component.
    #[inline]
    pub fn luma_factors(self) -> (usize, usize) {
        match self {
            Subsampling::S444 => (1, 1),
            Subsampling::S422 => (2, 1),
            Subsampling::S420 => (2, 2),
        }
    }

    /// Width and height of one MCU in pixels.
    #[inline]
    pub fn mcu_size(self) -> (usize, usize) {
        let (h, v) = self.luma_factors();
        (h * 8, v * 8)
    }

    /// Number of 8x8 luma blocks per MCU.
    #[inline]
    pub fn luma_blocks_per_mcu(self) -> usize {
        let (h, v) = self.luma_factors();
        h * v
    }

    /// Human-readable notation used in reports ("4:2:2", ...).
    pub fn notation(self) -> &'static str {
        match self {
            Subsampling::S444 => "4:4:4",
            Subsampling::S422 => "4:2:2",
            Subsampling::S420 => "4:2:0",
        }
    }
}

/// One color component as described by a SOF0 segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComponentSpec {
    /// Component identifier byte from the file (1 = Y, 2 = Cb, 3 = Cr by
    /// JFIF convention).
    pub id: u8,
    /// Horizontal sampling factor (1..=4).
    pub h_samp: usize,
    /// Vertical sampling factor (1..=4).
    pub v_samp: usize,
    /// Quantization table selector (0..=3).
    pub quant_idx: usize,
    /// DC Huffman table selector, filled in by the SOS segment.
    pub dc_tbl: usize,
    /// AC Huffman table selector, filled in by the SOS segment.
    pub ac_tbl: usize,
}

/// Frame-level description assembled from SOF0/SOS/DRI segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameInfo {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// The components in scan order (Y, Cb, Cr).
    pub components: Vec<ComponentSpec>,
    /// Subsampling derived from the component sampling factors.
    pub subsampling: Subsampling,
    /// Restart interval in MCUs; 0 means no restart markers.
    pub restart_interval: usize,
}

impl FrameInfo {
    /// Derive the [`Subsampling`] enum from raw sampling factors.
    pub fn classify_subsampling(components: &[ComponentSpec]) -> Result<Subsampling> {
        if components.len() == 1 {
            // Grayscale is treated as 4:4:4 with a single component; the
            // decoder synthesizes neutral chroma.
            return Ok(Subsampling::S444);
        }
        if components.len() != 3 {
            return Err(Error::Unsupported("component count (need 1 or 3)"));
        }
        let y = &components[0];
        let cb = &components[1];
        let cr = &components[2];
        if cb.h_samp != 1 || cb.v_samp != 1 || cr.h_samp != 1 || cr.v_samp != 1 {
            return Err(Error::Unsupported("chroma sampling factors"));
        }
        match (y.h_samp, y.v_samp) {
            (1, 1) => Ok(Subsampling::S444),
            (2, 1) => Ok(Subsampling::S422),
            (2, 2) => Ok(Subsampling::S420),
            _ => Err(Error::Unsupported("luma sampling factors")),
        }
    }
}

/// A decoded image: tightly packed interleaved RGB, 8 bits per channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RgbImage {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// `width * height * 3` bytes, row-major, R then G then B per pixel.
    pub data: Vec<u8>,
}

impl RgbImage {
    /// Allocate a black image of the given size.
    pub fn new(width: usize, height: usize) -> Self {
        RgbImage {
            width,
            height,
            data: vec![0; width * height * 3],
        }
    }

    /// Borrow the pixel at (x, y) as an `[r, g, b]` slice.
    #[inline]
    pub fn pixel(&self, x: usize, y: usize) -> &[u8] {
        let off = (y * self.width + x) * 3;
        &self.data[off..off + 3]
    }

    /// Mean squared error against another image of identical dimensions.
    pub fn mse(&self, other: &RgbImage) -> f64 {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        let sum: f64 = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| {
                let d = a as f64 - b as f64;
                d * d
            })
            .sum();
        sum / self.data.len() as f64
    }

    /// Peak signal-to-noise ratio in dB against `other` (infinite if equal).
    pub fn psnr(&self, other: &RgbImage) -> f64 {
        let mse = self.mse(other);
        if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64 * 255.0 / mse).log10()
        }
    }
}

/// A decoded image in planar YCbCr form: three full-resolution planes
/// (chroma upsampled, no color conversion applied).
///
/// This is the output format video and imaging pipelines that re-encode or
/// tone-map want — converting to RGB only to convert back wastes two passes
/// per pixel. Produced by
/// [`crate::decoder::stages::decode_region_ycc_with`] and by the session
/// decoder when asked for planar output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YccImage {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// `width * height` luma samples, row-major.
    pub y: Vec<u8>,
    /// `width * height` blue-difference chroma samples (upsampled).
    pub cb: Vec<u8>,
    /// `width * height` red-difference chroma samples (upsampled).
    pub cr: Vec<u8>,
}

impl YccImage {
    /// Allocate a zeroed planar image of the given size.
    pub fn new(width: usize, height: usize) -> Self {
        YccImage {
            width,
            height,
            y: vec![0; width * height],
            cb: vec![0; width * height],
            cr: vec![0; width * height],
        }
    }

    /// Re-shape for another image size, reusing the allocations.
    pub fn reset_for(&mut self, width: usize, height: usize) {
        self.width = width;
        self.height = height;
        for plane in [&mut self.y, &mut self.cb, &mut self.cr] {
            plane.clear();
            plane.resize(width * height, 0);
        }
    }

    /// Convert to interleaved RGB with the shared fixed-point transform —
    /// bit-identical to decoding the same stream straight to RGB.
    pub fn to_rgb(&self) -> RgbImage {
        let mut img = RgbImage::new(self.width, self.height);
        for (i, px) in img.data.chunks_exact_mut(3).enumerate() {
            let rgb = crate::color::ycc_to_rgb(self.y[i], self.cb[i], self.cr[i]);
            px.copy_from_slice(&rgb);
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcu_sizes_match_paper() {
        // §2: "The MCU size for 4:4:4 subsampling is 8x8 pixels ... In 4:2:2
        // subsampling ... an MCU has a size of 16x8 pixels."
        assert_eq!(Subsampling::S444.mcu_size(), (8, 8));
        assert_eq!(Subsampling::S422.mcu_size(), (16, 8));
        assert_eq!(Subsampling::S420.mcu_size(), (16, 16));
    }

    #[test]
    fn classify_subsampling_variants() {
        let mk = |h, v| {
            vec![
                ComponentSpec {
                    id: 1,
                    h_samp: h,
                    v_samp: v,
                    quant_idx: 0,
                    dc_tbl: 0,
                    ac_tbl: 0,
                },
                ComponentSpec {
                    id: 2,
                    h_samp: 1,
                    v_samp: 1,
                    quant_idx: 1,
                    dc_tbl: 1,
                    ac_tbl: 1,
                },
                ComponentSpec {
                    id: 3,
                    h_samp: 1,
                    v_samp: 1,
                    quant_idx: 1,
                    dc_tbl: 1,
                    ac_tbl: 1,
                },
            ]
        };
        assert_eq!(
            FrameInfo::classify_subsampling(&mk(1, 1)).unwrap(),
            Subsampling::S444
        );
        assert_eq!(
            FrameInfo::classify_subsampling(&mk(2, 1)).unwrap(),
            Subsampling::S422
        );
        assert_eq!(
            FrameInfo::classify_subsampling(&mk(2, 2)).unwrap(),
            Subsampling::S420
        );
        assert!(FrameInfo::classify_subsampling(&mk(4, 1)).is_err());
    }

    #[test]
    fn psnr_of_identical_images_is_infinite() {
        let img = RgbImage::new(4, 4);
        assert!(img.psnr(&img).is_infinite());
    }

    #[test]
    fn mse_counts_differences() {
        let a = RgbImage::new(2, 1);
        let mut b = RgbImage::new(2, 1);
        b.data[0] = 3; // one channel differs by 3
        let expected = 9.0 / 6.0;
        assert!((a.mse(&b) - expected).abs() < 1e-12);
    }
}
