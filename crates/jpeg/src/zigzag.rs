//! Zigzag coefficient ordering (ITU-T T.81 Figure 5).
//!
//! Entropy-coded coefficients appear in zigzag order in the bitstream; the
//! rest of the pipeline works in natural (row-major) order.

/// `ZIGZAG[k]` is the natural (row-major) index of the k-th coefficient in
/// zigzag scan order.
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// `NATURAL_TO_ZIGZAG[n]` is the zigzag position of natural index `n`
/// (the inverse permutation of [`ZIGZAG`]).
pub const NATURAL_TO_ZIGZAG: [usize; 64] = {
    let mut inv = [0usize; 64];
    let mut k = 0;
    while k < 64 {
        inv[ZIGZAG[k]] = k;
        k += 1;
    }
    inv
};

/// Reorder a block from zigzag order to natural order.
#[inline]
pub fn dezigzag(zz: &[i16; 64]) -> [i16; 64] {
    let mut nat = [0i16; 64];
    for (k, &v) in zz.iter().enumerate() {
        nat[ZIGZAG[k]] = v;
    }
    nat
}

/// Reorder a block from natural order to zigzag order.
#[inline]
pub fn zigzag_order(nat: &[i16; 64]) -> [i16; 64] {
    let mut zz = [0i16; 64];
    for (k, slot) in zz.iter_mut().enumerate() {
        *slot = nat[ZIGZAG[k]];
    }
    zz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &n in ZIGZAG.iter() {
            assert!(!seen[n], "duplicate natural index {n}");
            seen[n] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn inverse_permutation_roundtrips() {
        for k in 0..64 {
            assert_eq!(NATURAL_TO_ZIGZAG[ZIGZAG[k]], k);
        }
    }

    #[test]
    fn spec_corner_values() {
        // First row of the T.81 zigzag matrix.
        assert_eq!(ZIGZAG[0], 0);
        assert_eq!(ZIGZAG[1], 1);
        assert_eq!(ZIGZAG[2], 8);
        assert_eq!(ZIGZAG[63], 63);
        // Zigzag position 35 is the start of row 7's diagonal: natural 56.
        assert_eq!(ZIGZAG[35], 56);
    }

    #[test]
    fn dezigzag_then_zigzag_roundtrips() {
        let mut block = [0i16; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = (i as i16) * 3 - 50;
        }
        assert_eq!(zigzag_order(&dezigzag(&block)), block);
        assert_eq!(dezigzag(&zigzag_order(&block)), block);
    }
}
