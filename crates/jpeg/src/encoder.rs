//! Baseline JPEG encoder.
//!
//! The paper consumes corpora of existing JPEG photographs; this repository
//! synthesizes its corpora instead (see `hetjpeg-corpus`), so it needs a
//! real encoder: color conversion, chroma downsampling, forward DCT,
//! quantization and Huffman entropy coding with the Annex K tables.
//! Image content and the `quality` knob together control the entropy density
//! `d` that drives the paper's performance model.

use crate::bitio::BitWriter;
use crate::coef::CoefBuffer;
use crate::color::rgb_to_ycc;
use crate::dct::islow::fdct_block;
use crate::error::{Error, Result};
use crate::geometry::Geometry;
use crate::huffman::{spec, EncodeTable, HuffEncoder};
use crate::markers;
use crate::planes::SamplePlanes;
use crate::quant::QuantTable;
use crate::sample::{downsample_h2v2, downsample_row_h2v1};
use crate::types::{ComponentSpec, FrameInfo, Subsampling};

/// Encoder knobs.
#[derive(Debug, Clone, Copy)]
pub struct EncodeParams {
    /// IJG quality, 1..=100.
    pub quality: u8,
    /// Chroma subsampling of the output file.
    pub subsampling: Subsampling,
    /// Restart interval in MCUs (0 = none).
    pub restart_interval: usize,
}

impl Default for EncodeParams {
    fn default() -> Self {
        EncodeParams {
            quality: 85,
            subsampling: Subsampling::S422,
            restart_interval: 0,
        }
    }
}

/// Encode an interleaved RGB image to a baseline JFIF byte stream.
pub fn encode_rgb(rgb: &[u8], width: u32, height: u32, params: &EncodeParams) -> Result<Vec<u8>> {
    let (w, h) = (width as usize, height as usize);
    if rgb.len() != w * h * 3 {
        return Err(Error::BufferSize {
            expected: w * h * 3,
            got: rgb.len(),
        });
    }
    let geom = Geometry::new(w, h, params.subsampling)?;
    let planes = build_component_planes(rgb, &geom);
    let (coef, quant_l, quant_c) = transform_and_quantize(&planes, &geom, params.quality)?;
    let frame = frame_info(&geom, params);
    let scan = entropy_encode(&coef, &geom, &frame)?;
    Ok(assemble_file(&frame, &quant_l, &quant_c, &scan))
}

/// Convert RGB to padded, subsampled YCbCr component planes.
pub(crate) fn build_component_planes(rgb: &[u8], geom: &Geometry) -> SamplePlanes {
    let (w, h) = (geom.width, geom.height);
    let mut planes = SamplePlanes::new(geom);

    // Full-resolution YCbCr with edge replication into the padded area.
    let yw = geom.comps[0].plane_width();
    let yh = geom.comps[0].plane_height();
    let mut cb_full = vec![0u8; yw * yh];
    let mut cr_full = vec![0u8; yw * yh];
    for py in 0..yh {
        let sy = py.min(h - 1);
        let row_in = &rgb[sy * w * 3..(sy + 1) * w * 3];
        let y_row = planes.row_mut(0, py);
        for px in 0..yw {
            let sx = px.min(w - 1);
            let p = &row_in[sx * 3..sx * 3 + 3];
            let [y, cb, cr] = rgb_to_ycc(p[0], p[1], p[2]);
            y_row[px] = y;
            cb_full[py * yw + px] = cb;
            cr_full[py * yw + px] = cr;
        }
    }

    // Downsample chroma into the component planes.
    let cw = geom.comps[1].plane_width();
    let ch = geom.comps[1].plane_height();
    match geom.subsampling {
        Subsampling::S444 => {
            for py in 0..ch {
                planes
                    .row_mut(1, py)
                    .copy_from_slice(&cb_full[py * yw..py * yw + cw]);
                planes
                    .row_mut(2, py)
                    .copy_from_slice(&cr_full[py * yw..py * yw + cw]);
            }
        }
        Subsampling::S422 => {
            for py in 0..ch {
                downsample_row_h2v1(&cb_full[py * yw..(py + 1) * yw], planes.row_mut(1, py));
                downsample_row_h2v1(&cr_full[py * yw..(py + 1) * yw], planes.row_mut(2, py));
            }
        }
        Subsampling::S420 => {
            for py in 0..ch {
                let r0 = 2 * py;
                let r1 = (2 * py + 1).min(yh - 1);
                downsample_h2v2(
                    &cb_full[r0 * yw..(r0 + 1) * yw],
                    &cb_full[r1 * yw..(r1 + 1) * yw],
                    planes.row_mut(1, py),
                );
                downsample_h2v2(
                    &cr_full[r0 * yw..(r0 + 1) * yw],
                    &cr_full[r1 * yw..(r1 + 1) * yw],
                    planes.row_mut(2, py),
                );
            }
        }
    }
    planes
}

/// FDCT + quantization of every block of every component.
pub(crate) fn transform_and_quantize(
    planes: &SamplePlanes,
    geom: &Geometry,
    quality: u8,
) -> Result<(CoefBuffer, QuantTable, QuantTable)> {
    let quant_l = QuantTable::luma_for_quality(quality)?;
    let quant_c = QuantTable::chroma_for_quality(quality)?;
    let mut coef = CoefBuffer::new(geom);
    for (ci, comp) in geom.comps.iter().enumerate() {
        let quant = if ci == 0 { &quant_l } else { &quant_c };
        let stride = planes.strides[ci];
        let plane = &planes.planes[ci];
        for by in 0..comp.height_blocks {
            for bx in 0..comp.width_blocks {
                let mut samples = [0i32; 64];
                let base = by * 8 * stride + bx * 8;
                for r in 0..8 {
                    let row = &plane[base + r * stride..base + r * stride + 8];
                    for (c, &s) in row.iter().enumerate() {
                        samples[r * 8 + c] = s as i32 - 128; // level shift
                    }
                }
                let raw = fdct_block(&samples);
                let idx = geom.block_index(ci, bx, by);
                *coef.block_mut(idx) = quant.quantize(&raw);
            }
        }
    }
    Ok((coef, quant_l, quant_c))
}

pub(crate) fn frame_info(geom: &Geometry, params: &EncodeParams) -> FrameInfo {
    let (hs, vs) = geom.subsampling.luma_factors();
    FrameInfo {
        width: geom.width,
        height: geom.height,
        components: vec![
            ComponentSpec {
                id: 1,
                h_samp: hs,
                v_samp: vs,
                quant_idx: 0,
                dc_tbl: 0,
                ac_tbl: 0,
            },
            ComponentSpec {
                id: 2,
                h_samp: 1,
                v_samp: 1,
                quant_idx: 1,
                dc_tbl: 1,
                ac_tbl: 1,
            },
            ComponentSpec {
                id: 3,
                h_samp: 1,
                v_samp: 1,
                quant_idx: 1,
                dc_tbl: 1,
                ac_tbl: 1,
            },
        ],
        subsampling: geom.subsampling,
        restart_interval: params.restart_interval,
    }
}

/// Huffman-encode the whole coefficient buffer in MCU scan order.
fn entropy_encode(coef: &CoefBuffer, geom: &Geometry, frame: &FrameInfo) -> Result<Vec<u8>> {
    let dc_l = EncodeTable::build(&spec::dc_luma())?;
    let ac_l = EncodeTable::build(&spec::ac_luma())?;
    let dc_c = EncodeTable::build(&spec::dc_chroma())?;
    let ac_c = EncodeTable::build(&spec::ac_chroma())?;

    let mut w = BitWriter::new();
    let mut dc_pred = [0i32; 3];
    let mut next_restart = 0u8;
    let mut mcus_since_restart = 0usize;

    for row in 0..geom.mcus_y {
        for mcu_x in 0..geom.mcus_x {
            if frame.restart_interval > 0 && mcus_since_restart == frame.restart_interval {
                w.put_restart_marker(next_restart);
                next_restart = (next_restart + 1) & 7;
                mcus_since_restart = 0;
                dc_pred = [0; 3];
            }
            for (ci, comp) in geom.comps.iter().enumerate() {
                let (dc_t, ac_t) = if ci == 0 {
                    (&dc_l, &ac_l)
                } else {
                    (&dc_c, &ac_c)
                };
                for v in 0..comp.v_samp {
                    for hx in 0..comp.h_samp {
                        let bx = mcu_x * comp.h_samp + hx;
                        let by = row * comp.v_samp + v;
                        let block = coef.block(geom.block_index(ci, bx, by));
                        let dc = block[0] as i32;
                        HuffEncoder::encode_dc_diff(&mut w, dc_t, dc - dc_pred[ci])?;
                        dc_pred[ci] = dc;
                        HuffEncoder::encode_ac_block(&mut w, ac_t, block)?;
                    }
                }
            }
            mcus_since_restart += 1;
        }
    }
    Ok(w.finish())
}

fn assemble_file(
    frame: &FrameInfo,
    quant_l: &QuantTable,
    quant_c: &QuantTable,
    scan: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(scan.len() + 1024);
    markers::write_soi(&mut out);
    markers::write_app0_jfif(&mut out);
    markers::write_dqt(&mut out, 0, quant_l);
    markers::write_dqt(&mut out, 1, quant_c);
    markers::write_sof0(&mut out, frame);
    markers::write_dht(&mut out, 0, 0, &spec::dc_luma());
    markers::write_dht(&mut out, 1, 0, &spec::ac_luma());
    markers::write_dht(&mut out, 0, 1, &spec::dc_chroma());
    markers::write_dht(&mut out, 1, 1, &spec::ac_chroma());
    if frame.restart_interval > 0 {
        markers::write_dri(&mut out, frame.restart_interval as u16);
    }
    markers::write_sos(&mut out, frame);
    out.extend_from_slice(scan);
    markers::write_eoi(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markers::parse_jpeg;

    fn noise_rgb(w: usize, h: usize, seed: u32) -> Vec<u8> {
        let mut state = seed | 1;
        (0..w * h * 3)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 24) as u8
            })
            .collect()
    }

    #[test]
    fn produces_parseable_files() {
        for sub in [Subsampling::S444, Subsampling::S422, Subsampling::S420] {
            let jpeg = encode_rgb(
                &noise_rgb(40, 24, 3),
                40,
                24,
                &EncodeParams {
                    quality: 70,
                    subsampling: sub,
                    restart_interval: 0,
                },
            )
            .unwrap();
            let parsed = parse_jpeg(&jpeg).unwrap();
            assert_eq!(parsed.frame.width, 40);
            assert_eq!(parsed.frame.height, 24);
            assert_eq!(parsed.frame.subsampling, sub);
        }
    }

    #[test]
    fn rejects_wrong_buffer_size() {
        let err = encode_rgb(&[0u8; 10], 4, 4, &EncodeParams::default()).unwrap_err();
        assert_eq!(
            err,
            Error::BufferSize {
                expected: 48,
                got: 10
            }
        );
    }

    #[test]
    fn quality_monotonically_shrinks_files() {
        let rgb = noise_rgb(64, 64, 7);
        let size = |q: u8| {
            encode_rgb(
                &rgb,
                64,
                64,
                &EncodeParams {
                    quality: q,
                    subsampling: Subsampling::S444,
                    restart_interval: 0,
                },
            )
            .unwrap()
            .len()
        };
        let (s20, s60, s95) = (size(20), size(60), size(95));
        assert!(s20 < s60, "q20 {s20} vs q60 {s60}");
        assert!(s60 < s95, "q60 {s60} vs q95 {s95}");
    }

    #[test]
    fn subsampling_shrinks_files_on_noise() {
        let rgb = noise_rgb(64, 64, 9);
        let enc = |sub| {
            encode_rgb(
                &rgb,
                64,
                64,
                &EncodeParams {
                    quality: 85,
                    subsampling: sub,
                    restart_interval: 0,
                },
            )
            .unwrap()
            .len()
        };
        assert!(enc(Subsampling::S422) < enc(Subsampling::S444));
        assert!(enc(Subsampling::S420) < enc(Subsampling::S422));
    }

    #[test]
    fn odd_dimensions_encode_fine() {
        for (w, h) in [(17, 11), (33, 7), (15, 31)] {
            let jpeg = encode_rgb(
                &noise_rgb(w, h, 11),
                w as u32,
                h as u32,
                &EncodeParams {
                    quality: 80,
                    subsampling: Subsampling::S420,
                    restart_interval: 0,
                },
            )
            .unwrap();
            let parsed = parse_jpeg(&jpeg).unwrap();
            assert_eq!((parsed.frame.width, parsed.frame.height), (w, h));
        }
    }
}
