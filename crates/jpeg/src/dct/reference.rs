//! Direct f64 DCT/IDCT used as the correctness oracle.
//!
//! These evaluate paper Equations (1) and (2) (and their forward duals)
//! literally: a 1-D pass over columns followed by a 1-D pass over rows.

use std::f64::consts::PI;

/// Precomputed cos((2x+1) u pi / 16) table; `COS[x][u]`.
fn cos_table() -> [[f64; 8]; 8] {
    let mut t = [[0.0f64; 8]; 8];
    for (x, row) in t.iter_mut().enumerate() {
        for (u, v) in row.iter_mut().enumerate() {
            *v = ((2.0 * x as f64 + 1.0) * u as f64 * PI / 16.0).cos();
        }
    }
    t
}

#[inline]
fn c(u: usize) -> f64 {
    if u == 0 {
        1.0 / 2f64.sqrt()
    } else {
        1.0
    }
}

/// Forward 2-D DCT-II of a level-shifted 8x8 sample block (f64 in, f64 out).
///
/// Uses the JPEG normalization: `F(u,v) = 1/4 C(u) C(v) Σ Σ f(x,y) cos.. cos..`
pub fn fdct_f64(samples: &[f64; 64]) -> [f64; 64] {
    let cos = cos_table();
    let mut out = [0.0f64; 64];
    for v in 0..8 {
        for u in 0..8 {
            let mut acc = 0.0;
            for y in 0..8 {
                for x in 0..8 {
                    acc += samples[y * 8 + x] * cos[x][u] * cos[y][v];
                }
            }
            out[v * 8 + u] = 0.25 * c(u) * c(v) * acc;
        }
    }
    out
}

/// Inverse 2-D DCT (paper Eq. (1) then Eq. (2)): coefficients to samples.
pub fn idct_f64(coefs: &[f64; 64]) -> [f64; 64] {
    let cos = cos_table();
    // Column pass: f(u, y) = Σ_v C(v) F(u, v) cos((2y+1) v pi / 16)  (Eq. 1)
    let mut tmp = [0.0f64; 64];
    for u in 0..8 {
        for y in 0..8 {
            let mut acc = 0.0;
            for v in 0..8 {
                acc += c(v) * coefs[v * 8 + u] * cos[y][v];
            }
            tmp[y * 8 + u] = acc;
        }
    }
    // Row pass: f(x, y) = Σ_u C(u) f(u, y) cos((2x+1) u pi / 16)  (Eq. 2)
    let mut out = [0.0f64; 64];
    for y in 0..8 {
        for x in 0..8 {
            let mut acc = 0.0;
            for u in 0..8 {
                acc += c(u) * tmp[y * 8 + u] * cos[x][u];
            }
            out[y * 8 + x] = acc / 4.0;
        }
    }
    out
}

/// Convenience: integer-coefficient IDCT producing rounded, range-limited
/// samples (for comparing against fast integer implementations).
pub fn idct_to_samples(coefs: &[i32; 64]) -> [u8; 64] {
    let mut f = [0.0f64; 64];
    for (dst, &src) in f.iter_mut().zip(coefs.iter()) {
        *dst = src as f64;
    }
    let spatial = idct_f64(&f);
    let mut out = [0u8; 64];
    for (o, &s) in out.iter_mut().zip(spatial.iter()) {
        *o = (s.round() as i32 + 128).clamp(0, 255) as u8;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_only_block_is_flat() {
        let mut coefs = [0.0f64; 64];
        coefs[0] = 80.0;
        let spatial = idct_f64(&coefs);
        // DC term spreads as F(0,0) / 8 per sample.
        for &s in spatial.iter() {
            assert!((s - 10.0).abs() < 1e-9, "got {s}");
        }
    }

    #[test]
    fn fdct_idct_roundtrip() {
        let mut samples = [0.0f64; 64];
        for (i, s) in samples.iter_mut().enumerate() {
            *s = ((i * 37) % 255) as f64 - 128.0;
        }
        let coefs = fdct_f64(&samples);
        let back = idct_f64(&coefs);
        for i in 0..64 {
            assert!((back[i] - samples[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn fdct_is_orthonormal_energy_preserving() {
        // Parseval: sum of squares preserved by the orthonormal transform.
        let mut samples = [0.0f64; 64];
        for (i, s) in samples.iter_mut().enumerate() {
            *s = ((i * 13 + 5) % 201) as f64 - 100.0;
        }
        let coefs = fdct_f64(&samples);
        let es: f64 = samples.iter().map(|v| v * v).sum();
        let ec: f64 = coefs.iter().map(|v| v * v).sum();
        assert!((es - ec).abs() / es < 1e-12);
    }

    #[test]
    fn single_basis_function_recovers_cosine() {
        // F(u=1, v=0) = 1: Eq. (1) gives f(1, y) = C(0)·1 = 1/√2, then
        // Eq. (2) gives f(x,y) = C(1)·(1/√2)·cos((2x+1)π/16)/4.
        let mut coefs = [0.0f64; 64];
        coefs[1] = 1.0; // u = 1, v = 0
        let spatial = idct_f64(&coefs);
        for y in 0..8 {
            for x in 0..8 {
                let expect = 0.25 / 2f64.sqrt() * ((2.0 * x as f64 + 1.0) * PI / 16.0).cos();
                assert!((spatial[y * 8 + x] - expect).abs() < 1e-12);
            }
        }
    }
}
