//! Accurate 13-bit fixed-point DCT pair (libjpeg's "islow" algorithm,
//! after Loeffler–Ligtenberg–Moshovitz).
//!
//! Both decode paths — the CPU stage functions and the simulated GPU IDCT
//! kernel — run this integer transform so that every decoding mode of the
//! scheduler produces **bit-identical** pixels regardless of where the
//! partition boundary falls. That property is load-bearing for the
//! cross-mode equivalence tests in `tests/modes_agree.rs`.

use super::{range_limit, PASS1_BITS};

pub(crate) const CONST_BITS: i32 = 13;

pub(crate) const FIX_0_298631336: i64 = 2446;
pub(crate) const FIX_0_390180644: i64 = 3196;
pub(crate) const FIX_0_541196100: i64 = 4433;
pub(crate) const FIX_0_765366865: i64 = 6270;
pub(crate) const FIX_0_899976223: i64 = 7373;
pub(crate) const FIX_1_175875602: i64 = 9633;
pub(crate) const FIX_1_501321110: i64 = 12299;
pub(crate) const FIX_1_847759065: i64 = 15137;
pub(crate) const FIX_1_961570560: i64 = 16069;
pub(crate) const FIX_2_053119869: i64 = 16819;
pub(crate) const FIX_2_562915447: i64 = 20995;
pub(crate) const FIX_3_072711026: i64 = 25172;

/// Round-to-nearest right shift.
#[inline(always)]
fn descale(x: i64, n: i32) -> i64 {
    (x + (1i64 << (n - 1))) >> n
}

/// One 1-D islow IDCT butterfly over eight values, of which only the first
/// `K` may be nonzero (`K = 8` is the dense case).
///
/// With `K < 8` the compiler constant-folds the zero inputs away, which is
/// what makes the EOB-dispatched sparse paths in [`crate::dct::sparse`]
/// cheap — and because dropped terms are exact zeros, the descaled results
/// are **bit-identical** to the dense butterfly. The caller chooses the
/// output descale; the even-part DC path is `<< CONST_BITS` before
/// combination.
#[inline(always)]
fn idct_1d_k<const K: usize>(v: [i64; 8], out_descale: i32) -> [i64; 8] {
    let at = |i: usize| if i < K { v[i] } else { 0 };
    // Even part.
    let z2 = at(2);
    let z3 = at(6);
    let z1 = (z2 + z3) * FIX_0_541196100;
    let tmp2 = z1 - z3 * FIX_1_847759065;
    let tmp3 = z1 + z2 * FIX_0_765366865;
    let z2 = at(0);
    let z3 = at(4);
    let tmp0 = (z2 + z3) << CONST_BITS;
    let tmp1 = (z2 - z3) << CONST_BITS;
    let tmp10 = tmp0 + tmp3;
    let tmp13 = tmp0 - tmp3;
    let tmp11 = tmp1 + tmp2;
    let tmp12 = tmp1 - tmp2;

    // Odd part.
    let t0 = at(7);
    let t1 = at(5);
    let t2 = at(3);
    let t3 = at(1);
    let z1 = t0 + t3;
    let z2 = t1 + t2;
    let z3 = t0 + t2;
    let z4 = t1 + t3;
    let z5 = (z3 + z4) * FIX_1_175875602;
    let t0 = t0 * FIX_0_298631336;
    let t1 = t1 * FIX_2_053119869;
    let t2 = t2 * FIX_3_072711026;
    let t3 = t3 * FIX_1_501321110;
    let z1 = -z1 * FIX_0_899976223;
    let z2 = -z2 * FIX_2_562915447;
    let z3 = -z3 * FIX_1_961570560 + z5;
    let z4 = -z4 * FIX_0_390180644 + z5;
    let t0 = t0 + z1 + z3;
    let t1 = t1 + z2 + z4;
    let t2 = t2 + z2 + z3;
    let t3 = t3 + z1 + z4;

    [
        descale(tmp10 + t3, out_descale),
        descale(tmp11 + t2, out_descale),
        descale(tmp12 + t1, out_descale),
        descale(tmp13 + t0, out_descale),
        descale(tmp13 - t0, out_descale),
        descale(tmp12 - t1, out_descale),
        descale(tmp11 - t2, out_descale),
        descale(tmp10 - t3, out_descale),
    ]
}

/// Column pass with only the first `K` inputs possibly nonzero; bit-exact
/// with [`idct_pass1`] on such inputs (same flat-column shortcut, same
/// arithmetic minus the terms that are provably zero).
#[inline(always)]
pub(crate) fn idct_pass1_k<const K: usize>(v: [i64; 8]) -> [i64; 8] {
    let mut all_ac_zero = true;
    let mut i = 1;
    while i < K {
        all_ac_zero &= v[i] == 0;
        i += 1;
    }
    if all_ac_zero {
        let dc = v[0] << PASS1_BITS;
        return [dc; 8];
    }
    idct_1d_k::<K>(v, CONST_BITS - PASS1_BITS)
}

/// Row pass with only the first `K` inputs possibly nonzero; bit-exact with
/// [`idct_row`] on such inputs.
#[inline(always)]
pub(crate) fn idct_row_k<const K: usize>(row: &[i64; 8]) -> [u8; 8] {
    let vals = idct_1d_k::<K>(*row, CONST_BITS + PASS1_BITS + 3);
    let mut out = [0u8; 8];
    for (o, &v) in out.iter_mut().zip(vals.iter()) {
        *o = range_limit(v as i32);
    }
    out
}

/// Column pass of the islow IDCT (paper Eq. (1)) on one column of eight
/// dequantized values; the result keeps `PASS1_BITS` fractional bits.
///
/// Exposed because the GPU kernel of §4.1 assigns one work-item per column
/// and stores this intermediate in local memory before the row pass.
#[inline]
pub fn idct_pass1(v: [i64; 8]) -> [i64; 8] {
    idct_pass1_k::<8>(v)
}

/// Column pass over column `col` of a full dequantized block.
#[inline]
pub fn idct_column(coefs: &[i32; 64], col: usize) -> [i64; 8] {
    let mut v = [0i64; 8];
    for (r, slot) in v.iter_mut().enumerate() {
        *slot = coefs[r * 8 + col] as i64;
    }
    idct_pass1(v)
}

/// Row pass of the islow IDCT (paper Eq. (2)) over one intermediate row,
/// producing level-shifted, range-limited samples.
#[inline]
pub fn idct_row(row: &[i64; 8]) -> [u8; 8] {
    idct_row_k::<8>(row)
}

/// Full 2-D islow IDCT of one dequantized block: column pass then row pass.
pub fn idct_block(coefs: &[i32; 64]) -> [u8; 64] {
    // Column pass into a workspace laid out row-major.
    let mut ws = [0i64; 64];
    for col in 0..8 {
        let c = idct_column(coefs, col);
        for (r, &v) in c.iter().enumerate() {
            ws[r * 8 + col] = v;
        }
    }
    // Row pass.
    let mut out = [0u8; 64];
    for r in 0..8 {
        let mut row = [0i64; 8];
        row.copy_from_slice(&ws[r * 8..r * 8 + 8]);
        let px = idct_row(&row);
        out[r * 8..r * 8 + 8].copy_from_slice(&px);
    }
    out
}

/// One 1-D islow FDCT butterfly (jfdctint structure).
#[inline(always)]
fn fdct_1d(v: [i64; 8], pass2: bool) -> [i64; 8] {
    let tmp0 = v[0] + v[7];
    let tmp7 = v[0] - v[7];
    let tmp1 = v[1] + v[6];
    let tmp6 = v[1] - v[6];
    let tmp2 = v[2] + v[5];
    let tmp5 = v[2] - v[5];
    let tmp3 = v[3] + v[4];
    let tmp4 = v[3] - v[4];

    let tmp10 = tmp0 + tmp3;
    let tmp13 = tmp0 - tmp3;
    let tmp11 = tmp1 + tmp2;
    let tmp12 = tmp1 - tmp2;

    let mut out = [0i64; 8];
    if !pass2 {
        out[0] = (tmp10 + tmp11) << PASS1_BITS;
        out[4] = (tmp10 - tmp11) << PASS1_BITS;
    } else {
        // Pass 2 also removes the x8 block scale (3 extra bits) so the
        // output is a true-scale DCT coefficient ready for `QuantTable`.
        out[0] = descale(tmp10 + tmp11, PASS1_BITS + 3);
        out[4] = descale(tmp10 - tmp11, PASS1_BITS + 3);
    }
    let even_descale = if pass2 {
        CONST_BITS + PASS1_BITS + 3
    } else {
        CONST_BITS - PASS1_BITS
    };
    let z1 = (tmp12 + tmp13) * FIX_0_541196100;
    out[2] = descale(z1 + tmp13 * FIX_0_765366865, even_descale);
    out[6] = descale(z1 - tmp12 * FIX_1_847759065, even_descale);

    let z1 = tmp4 + tmp7;
    let z2 = tmp5 + tmp6;
    let z3 = tmp4 + tmp6;
    let z4 = tmp5 + tmp7;
    let z5 = (z3 + z4) * FIX_1_175875602;
    let tmp4 = tmp4 * FIX_0_298631336;
    let tmp5 = tmp5 * FIX_2_053119869;
    let tmp6 = tmp6 * FIX_3_072711026;
    let tmp7 = tmp7 * FIX_1_501321110;
    let z1 = -z1 * FIX_0_899976223;
    let z2 = -z2 * FIX_2_562915447;
    let z3 = -z3 * FIX_1_961570560 + z5;
    let z4 = -z4 * FIX_0_390180644 + z5;
    out[7] = descale(tmp4 + z1 + z3, even_descale);
    out[5] = descale(tmp5 + z2 + z4, even_descale);
    out[3] = descale(tmp6 + z2 + z3, even_descale);
    out[1] = descale(tmp7 + z1 + z4, even_descale);
    out
}

/// Forward 2-D islow DCT of a level-shifted sample block (values in
/// [-128, 127]); output is true-scale coefficients (matching
/// [`super::reference::fdct_f64`] within rounding error).
pub fn fdct_block(samples: &[i32; 64]) -> [i32; 64] {
    // Row pass.
    let mut ws = [0i64; 64];
    for r in 0..8 {
        let mut row = [0i64; 8];
        for (c, slot) in row.iter_mut().enumerate() {
            *slot = samples[r * 8 + c] as i64;
        }
        let o = fdct_1d(row, false);
        ws[r * 8..r * 8 + 8].copy_from_slice(&o);
    }
    // Column pass.
    let mut out = [0i32; 64];
    for c in 0..8 {
        let mut col = [0i64; 8];
        for (r, slot) in col.iter_mut().enumerate() {
            *slot = ws[r * 8 + c];
        }
        let o = fdct_1d(col, true);
        for (r, &v) in o.iter().enumerate() {
            out[r * 8 + c] = v as i32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dct::reference;

    fn pseudo_block(seed: i32) -> [i32; 64] {
        let mut b = [0i32; 64];
        let mut state = seed.wrapping_mul(2654435761u32 as i32) | 1;
        for v in b.iter_mut() {
            state = state.wrapping_mul(1103515245).wrapping_add(12345);
            *v = (state >> 16) % 128; // [-127, 127]
        }
        b
    }

    #[test]
    fn fdct_matches_reference_within_rounding() {
        for seed in 0..20 {
            let samples = pseudo_block(seed);
            let got = fdct_block(&samples);
            let mut f = [0.0f64; 64];
            for (d, &s) in f.iter_mut().zip(samples.iter()) {
                *d = s as f64;
            }
            let want = reference::fdct_f64(&f);
            for i in 0..64 {
                assert!(
                    (got[i] as f64 - want[i]).abs() <= 1.0,
                    "seed {seed} coef {i}: got {} want {}",
                    got[i],
                    want[i]
                );
            }
        }
    }

    #[test]
    fn idct_matches_reference_within_one() {
        for seed in 0..20 {
            // Coefficients in a realistic dequantized range.
            let mut coefs = pseudo_block(seed);
            for c in coefs.iter_mut() {
                *c *= 8;
            }
            coefs[0] += 300;
            let got = idct_block(&coefs);
            let want = reference::idct_to_samples(&coefs);
            for i in 0..64 {
                assert!(
                    (got[i] as i32 - want[i] as i32).abs() <= 1,
                    "seed {seed} px {i}: got {} want {}",
                    got[i],
                    want[i]
                );
            }
        }
    }

    #[test]
    fn dc_only_shortcut_is_flat() {
        let mut coefs = [0i32; 64];
        coefs[0] = 160; // sample value 160/8 = 20 above mid-gray
        let px = idct_block(&coefs);
        for &p in px.iter() {
            assert_eq!(p, 148);
        }
    }

    #[test]
    fn zero_block_is_mid_gray() {
        let px = idct_block(&[0i32; 64]);
        assert!(px.iter().all(|&p| p == 128));
    }

    #[test]
    fn fdct_then_idct_roundtrips_samples() {
        for seed in 0..10 {
            let samples = pseudo_block(seed);
            let coefs = fdct_block(&samples);
            let px = idct_block(&coefs);
            for i in 0..64 {
                let want = (samples[i] + 128).clamp(0, 255);
                assert!(
                    (px[i] as i32 - want).abs() <= 2,
                    "seed {seed} px {i}: got {} want {}",
                    px[i],
                    want
                );
            }
        }
    }

    #[test]
    fn column_then_row_equals_block() {
        let coefs = {
            let mut c = pseudo_block(7);
            for v in c.iter_mut() {
                *v *= 4;
            }
            c
        };
        let whole = idct_block(&coefs);
        // Rebuild through the exposed per-column / per-row API (the GPU
        // kernel's decomposition).
        let mut ws = [0i64; 64];
        for col in 0..8 {
            let c = idct_column(&coefs, col);
            for (r, &v) in c.iter().enumerate() {
                ws[r * 8 + col] = v;
            }
        }
        let mut rebuilt = [0u8; 64];
        for r in 0..8 {
            let mut row = [0i64; 8];
            row.copy_from_slice(&ws[r * 8..r * 8 + 8]);
            rebuilt[r * 8..r * 8 + 8].copy_from_slice(&idct_row(&row));
        }
        assert_eq!(whole, rebuilt);
    }
}
