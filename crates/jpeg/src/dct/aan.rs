//! AAN (Arai–Agui–Nakajima) float IDCT with quantization prescaling.
//!
//! This is the algorithm the paper cites for its IDCT kernels (§2, reference
//! \[26\]; "The libjpeg and libjpeg-turbo libraries apply a series of 1D IDCTs
//! based on the AAN algorithm"). The AAN trick folds five of the eight
//! per-pass multiplies into the dequantization table, leaving 5 multiplies
//! and 29 additions per 1-D pass.
//!
//! The heterogeneous scheduler defaults to the integer islow transform for
//! cross-device bit-exactness; the AAN path is provided as the
//! float-kernel variant and is validated against the reference transform to
//! within ±1 intensity level.

/// AAN scale factor: `s(0) = 1`, `s(k) = cos(k·π/16)·√2` for `k > 0`.
fn aan_scale(k: usize) -> f32 {
    if k == 0 {
        1.0
    } else {
        ((k as f32) * std::f32::consts::PI / 16.0).cos() * std::f32::consts::SQRT_2
    }
}

/// Build the prescaled dequantization table for [`idct_block_aan`]:
/// `pre[v*8+u] = quant[v*8+u] · s(u) · s(v) / 8`.
pub fn prescale_quant(quant: &[u16; 64]) -> [f32; 64] {
    let mut out = [0.0f32; 64];
    for v in 0..8 {
        for u in 0..8 {
            out[v * 8 + u] = quant[v * 8 + u] as f32 * aan_scale(u) * aan_scale(v) / 8.0;
        }
    }
    out
}

const F_1_414: f32 = std::f32::consts::SQRT_2; // 2·cos(π/4)
const F_1_847: f32 = 1.847_759_1; // 2·cos(π/8)
const F_1_082: f32 = 1.082_392_2; // 2·(cos(π/8) − cos(3π/8))
const F_2_613: f32 = 2.613_126; // 2·(cos(π/8) + cos(3π/8))

/// One 1-D AAN IDCT butterfly (jidctflt structure).
#[inline(always)]
fn aan_1d(v: [f32; 8]) -> [f32; 8] {
    // Even part.
    let tmp0 = v[0];
    let tmp1 = v[2];
    let tmp2 = v[4];
    let tmp3 = v[6];

    let tmp10 = tmp0 + tmp2;
    let tmp11 = tmp0 - tmp2;
    let tmp13 = tmp1 + tmp3;
    let tmp12 = (tmp1 - tmp3) * F_1_414 - tmp13;

    let e0 = tmp10 + tmp13;
    let e3 = tmp10 - tmp13;
    let e1 = tmp11 + tmp12;
    let e2 = tmp11 - tmp12;

    // Odd part.
    let tmp4 = v[1];
    let tmp5 = v[3];
    let tmp6 = v[5];
    let tmp7 = v[7];

    let z13 = tmp6 + tmp5;
    let z10 = tmp6 - tmp5;
    let z11 = tmp4 + tmp7;
    let z12 = tmp4 - tmp7;

    let o7 = z11 + z13;
    let t11 = (z11 - z13) * F_1_414;
    let z5 = (z10 + z12) * F_1_847;
    let t10 = F_1_082 * z12 - z5;
    let t12 = -F_2_613 * z10 + z5;

    let o6 = t12 - o7;
    let o5 = t11 - o6;
    let o4 = t10 + o5;

    [
        e0 + o7,
        e1 + o6,
        e2 + o5,
        e3 - o4,
        e3 + o4,
        e2 - o5,
        e1 - o6,
        e0 - o7,
    ]
}

/// Full 2-D AAN IDCT: raw (still-quantized) coefficients plus the prescaled
/// table from [`prescale_quant`]; returns level-shifted 8-bit samples.
pub fn idct_block_aan(coefs: &[i16; 64], prescale: &[f32; 64]) -> [u8; 64] {
    // Dequantize + column pass.
    let mut ws = [0.0f32; 64];
    for col in 0..8 {
        let mut v = [0.0f32; 8];
        for (r, slot) in v.iter_mut().enumerate() {
            *slot = coefs[r * 8 + col] as f32 * prescale[r * 8 + col];
        }
        let all_zero_ac = coefs[8 + col] == 0
            && coefs[16 + col] == 0
            && coefs[24 + col] == 0
            && coefs[32 + col] == 0
            && coefs[40 + col] == 0
            && coefs[48 + col] == 0
            && coefs[56 + col] == 0;
        let o = if all_zero_ac { [v[0]; 8] } else { aan_1d(v) };
        for (r, &val) in o.iter().enumerate() {
            ws[r * 8 + col] = val;
        }
    }
    // Row pass + rounding.
    let mut out = [0u8; 64];
    for r in 0..8 {
        let mut v = [0.0f32; 8];
        v.copy_from_slice(&ws[r * 8..r * 8 + 8]);
        let o = aan_1d(v);
        for (c, &val) in o.iter().enumerate() {
            let px = (val + 128.5).floor() as i32;
            out[r * 8 + c] = px.clamp(0, 255) as u8;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dct::reference;
    use crate::quant::QuantTable;

    fn pseudo_coefs(seed: i32) -> [i16; 64] {
        let mut b = [0i16; 64];
        let mut state = seed.wrapping_mul(0x9E3779B9u32 as i32) | 1;
        for (i, v) in b.iter_mut().enumerate() {
            state = state.wrapping_mul(1103515245).wrapping_add(12345);
            // Sparser high-frequency content, like real quantized data.
            if i == 0 || state % 3 == 0 {
                *v = ((state >> 16) % 64) as i16;
            }
        }
        b
    }

    #[test]
    fn prescale_matches_definition() {
        let q = QuantTable::luma_for_quality(50).unwrap();
        let pre = prescale_quant(&q.values);
        // DC: quant/8 exactly.
        assert!((pre[0] - q.values[0] as f32 / 8.0).abs() < 1e-6);
        // (u=4, v=0): s(4) = cos(pi/4)*sqrt(2) = 1.
        assert!((pre[4] - q.values[4] as f32 / 8.0).abs() < 1e-6);
    }

    #[test]
    fn aan_matches_reference_within_one_level() {
        let q = QuantTable::luma_for_quality(85).unwrap();
        let pre = prescale_quant(&q.values);
        for seed in 0..25 {
            let coefs = pseudo_coefs(seed);
            let got = idct_block_aan(&coefs, &pre);
            // Reference on dequantized ints.
            let dq = q.dequantize(&coefs);
            let want = reference::idct_to_samples(&dq);
            for i in 0..64 {
                assert!(
                    (got[i] as i32 - want[i] as i32).abs() <= 1,
                    "seed {seed} px {i}: got {} want {}",
                    got[i],
                    want[i]
                );
            }
        }
    }

    #[test]
    fn dc_only_is_flat() {
        let q = QuantTable::luma_for_quality(50).unwrap();
        let pre = prescale_quant(&q.values);
        let mut coefs = [0i16; 64];
        coefs[0] = 10;
        let px = idct_block_aan(&coefs, &pre);
        let expect = ((10 * q.values[0] as i32) as f32 / 8.0 + 128.5).floor() as i32;
        for &p in px.iter() {
            assert_eq!(p as i32, expect.clamp(0, 255));
        }
    }
}
