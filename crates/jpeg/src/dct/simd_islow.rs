//! Runtime-dispatched SSE2/AVX2 islow IDCT kernels with EOB dispatch.
//!
//! PR 3 vectorized the upsample and color stages; the islow IDCT stayed
//! scalar and became the largest CPU band in the cost model. This module
//! closes that gap: the same EOB-dispatched sparse classes as
//! [`crate::dct::sparse`] (DC-only flat fill, pruned 2×2 / 4×4 corner
//! butterflies, dense 8×8), but with the two 1-D passes running **eight
//! columns per butterfly** on x86 vector units, behind the session's
//! [`SimdLevel`] choice.
//!
//! # Bit-identity
//!
//! Every level produces bytes **identical** to the scalar
//! [`crate::dct::sparse::dequant_idct_to`] (and therefore to the dense
//! [`crate::dct::islow::idct_block`]). The scalar transform computes in
//! i64; the vector paths keep i64 lanes for every sum and run the constant
//! multiplies as exact 32×32→64 widening products, which is equivalent as
//! long as every multiplicand fits in i32. That is guaranteed by the
//! decoder's input domain:
//!
//! * coefficients come out of entropy decode as `i16` (|c| ≤ 32768 — the
//!   DC predictor truncates to i16, AC magnitudes are ≤ 15 bits),
//! * quantization values are 8-bit (`markers.rs` rejects 16-bit DQT), so
//!   |dq| = |c|·q ≤ 32768·255 < 2²³.
//!
//! From there the pass-1 multiplicands are sums of at most four inputs
//! (< 2²⁵), pass-1 outputs are < 2²⁹ after the `>> 11` descale, and the
//! pass-2 multiplicands are sums of two of those (< 2³⁰) — all inside i32.
//! The per-class pruning drops only exact zeros (same argument as
//! `idct_1d_k`), and the scalar flat-column shortcut of `idct_pass1_k` is
//! arithmetically identical to the full butterfly on a DC-only column
//! (`descale(dc << 13, 11) = dc << 2` exactly), so the vector code can skip
//! the data-dependent branch without changing a bit. The proptest matrix in
//! `tests/idct_simd_props.rs` pins all of this per class × level.
//!
//! Callers that construct [`crate::quant::QuantTable`]s programmatically
//! must stay inside the parser-enforced 8-bit domain (values ≤ 255) for the
//! identity to hold; larger divisors can push pass-1 multiplicands past
//! i32.
//!
//! # Shape
//!
//! One block goes: fused dequant (i16×u16 → i32 via `mullo`/`mulhi`
//! interleave) → column pass on i64 lanes → narrow to an 8×8 i32 tile →
//! transpose → row pass (same butterfly) → transpose back → `+128`,
//! saturating pack (exactly [`crate::dct::range_limit`]) → eight 8-byte
//! stores through the caller's stride. For the 2×2 / 4×4 classes the
//! upper column half is provably zero and the pass-2 butterflies read only
//! the live rows, so the pruning wins on the vector paths too. DC-only
//! blocks keep the scalar flat fill at every level — there is nothing to
//! vectorize in a `fill`.

use super::sparse::{class_for_eob, dequant_idct_to, SparseClass};
use crate::decoder::kernels::SimdLevel;

/// Fused dequantize + EOB-dispatched IDCT + store of one block, dispatched
/// on `level`. Same contract as [`dequant_idct_to`] (row `r` of the 8×8
/// result lands at `dst[base + r * stride ..][..8]`, `eob` is an upper
/// bound on the highest nonzero zigzag index) and **bit-identical** to it
/// at every level; `level` is clamped to what the host can run.
#[inline]
pub fn dequant_idct_to_level(
    level: SimdLevel,
    coefs: &[i16; 64],
    quant: &[u16; 64],
    eob: u8,
    dst: &mut [u8],
    base: usize,
    stride: usize,
) {
    let class = class_for_eob(eob);
    // Two early-outs before touching the host clamp (a cached feature
    // probe, but not free at a few ns per block): the DC-only flat fill
    // has no butterflies to vectorize, and a scalar session must pay
    // nothing over the direct sparse dispatch.
    if class == SparseClass::DcOnly || level == SimdLevel::Scalar {
        return dequant_idct_to(coefs, quant, eob, dst, base, stride);
    }
    match level.clamp_to_host() {
        SimdLevel::Scalar => dequant_idct_to(coefs, quant, eob, dst, base, stride),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => match class {
            SparseClass::DcOnly => unreachable!("handled above"),
            // Measured policy (BENCH_PR5.json `idct_class_*` at
            // HETJPEG_SIMD=sse2): with only two i64 lanes and the emulated
            // 64-bit signed multiply, the SSE2 butterflies beat the scalar
            // path's per-column pruning only on the 4×4 class (≈1.5×);
            // 2×2 blocks are too small (≈0.93×) and dense-class blocks
            // are dominated by the scalar flat-column shortcut (≈0.8× in
            // corpus context). So SSE2 dispatches the 4×4 kernel and
            // keeps scalar elsewhere; the bypassed kernels stay correct
            // and unit-tested — AVX2's 4-lane versions of the same code
            // win across the board.
            SparseClass::Corner2 => dequant_idct_to(coefs, quant, eob, dst, base, stride),
            SparseClass::Corner4 => unsafe {
                x86::dequant_idct_sse2::<4>(coefs, quant, dst, base, stride)
            },
            SparseClass::Dense => dequant_idct_to(coefs, quant, eob, dst, base, stride),
        },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => match class {
            SparseClass::DcOnly => unreachable!("handled above"),
            SparseClass::Corner2 => unsafe {
                x86::dequant_idct_avx2::<2>(coefs, quant, dst, base, stride)
            },
            SparseClass::Corner4 => unsafe {
                x86::dequant_idct_avx2::<4>(coefs, quant, dst, base, stride)
            },
            SparseClass::Dense => unsafe {
                x86::dequant_idct_avx2::<8>(coefs, quant, dst, base, stride)
            },
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => dequant_idct_to(coefs, quant, eob, dst, base, stride),
    }
}

/// [`dequant_idct_to_level`] into a fresh 8×8 block — the test/oracle
/// entry point mirroring [`crate::dct::sparse::idct_block_sparse`].
pub fn dequant_idct_block_level(
    level: SimdLevel,
    coefs: &[i16; 64],
    quant: &[u16; 64],
    eob: u8,
) -> [u8; 64] {
    let mut out = [0u8; 64];
    dequant_idct_to_level(level, coefs, quant, eob, &mut out, 0, 8);
    out
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The vector implementations. Column-parallel layout: a register row
    //! holds one input row across columns, so the lane-wise butterfly
    //! computes all column transforms at once; the row pass is the same
    //! butterfly after an in-register 8×8 i32 transpose. All sums ride in
    //! i64 lanes and the constant multiplies are exact 32×32→64 widening
    //! products (see the module docs for the range proof), so every lane
    //! computes precisely the scalar `idct_1d_k` arithmetic.

    use crate::dct::islow::{
        CONST_BITS, FIX_0_298631336, FIX_0_390180644, FIX_0_541196100, FIX_0_765366865,
        FIX_0_899976223, FIX_1_175875602, FIX_1_501321110, FIX_1_847759065, FIX_1_961570560,
        FIX_2_053119869, FIX_2_562915447, FIX_3_072711026,
    };
    use crate::dct::PASS1_BITS;
    use core::arch::x86_64::*;

    /// Pass-1 descale (`CONST_BITS - PASS1_BITS`).
    const P1: i32 = CONST_BITS - PASS1_BITS;
    /// Pass-2 descale (`CONST_BITS + PASS1_BITS + 3`).
    const P2: i32 = CONST_BITS + PASS1_BITS + 3;

    // ------------------------------- AVX2 -------------------------------

    /// Exact `lane_i64 * c` for lanes whose value fits i32 (the low dwords
    /// are the sign-complete value, which is all `mul_epi32` reads).
    #[target_feature(enable = "avx2")]
    fn mul_c_avx2(a: __m256i, c: i64) -> __m256i {
        _mm256_mul_epi32(a, _mm256_set1_epi64x(c))
    }

    /// `descale(v, N)` on i64 lanes: round, then an arithmetic 64-bit
    /// shift emulated as logical-shift low halves blended with
    /// arithmetically shifted high halves (exact for `N < 32`).
    #[target_feature(enable = "avx2")]
    fn descale_avx2<const N: i32>(v: __m256i) -> __m256i {
        let r = _mm256_add_epi64(v, _mm256_set1_epi64x(1i64 << (N - 1)));
        let lo = _mm256_srli_epi64::<N>(r);
        let hi = _mm256_srai_epi32::<N>(r);
        _mm256_blend_epi32::<0b1010_1010>(lo, hi)
    }

    /// The 1-D islow butterfly on four i64 lanes (four independent
    /// columns), inputs `0..K` live, output descale `N` — the vector twin
    /// of `idct_1d_k::<K>`.
    #[target_feature(enable = "avx2")]
    fn idct_1d_avx2<const K: usize, const N: i32>(v: &[__m256i; 8]) -> [__m256i; 8] {
        let zero = _mm256_setzero_si256();
        let at = |i: usize| if i < K { v[i] } else { zero };
        // Even part.
        let z2 = at(2);
        let z3 = at(6);
        let z1 = mul_c_avx2(_mm256_add_epi64(z2, z3), FIX_0_541196100);
        let tmp2 = _mm256_sub_epi64(z1, mul_c_avx2(z3, FIX_1_847759065));
        let tmp3 = _mm256_add_epi64(z1, mul_c_avx2(z2, FIX_0_765366865));
        let z2 = at(0);
        let z3 = at(4);
        let tmp0 = _mm256_slli_epi64::<{ CONST_BITS }>(_mm256_add_epi64(z2, z3));
        let tmp1 = _mm256_slli_epi64::<{ CONST_BITS }>(_mm256_sub_epi64(z2, z3));
        let tmp10 = _mm256_add_epi64(tmp0, tmp3);
        let tmp13 = _mm256_sub_epi64(tmp0, tmp3);
        let tmp11 = _mm256_add_epi64(tmp1, tmp2);
        let tmp12 = _mm256_sub_epi64(tmp1, tmp2);

        // Odd part.
        let t0 = at(7);
        let t1 = at(5);
        let t2 = at(3);
        let t3 = at(1);
        let z1 = _mm256_add_epi64(t0, t3);
        let z2 = _mm256_add_epi64(t1, t2);
        let z3 = _mm256_add_epi64(t0, t2);
        let z4 = _mm256_add_epi64(t1, t3);
        let z5 = mul_c_avx2(_mm256_add_epi64(z3, z4), FIX_1_175875602);
        let t0 = mul_c_avx2(t0, FIX_0_298631336);
        let t1 = mul_c_avx2(t1, FIX_2_053119869);
        let t2 = mul_c_avx2(t2, FIX_3_072711026);
        let t3 = mul_c_avx2(t3, FIX_1_501321110);
        let z1 = _mm256_sub_epi64(zero, mul_c_avx2(z1, FIX_0_899976223));
        let z2 = _mm256_sub_epi64(zero, mul_c_avx2(z2, FIX_2_562915447));
        let z3 = _mm256_sub_epi64(z5, mul_c_avx2(z3, FIX_1_961570560));
        let z4 = _mm256_sub_epi64(z5, mul_c_avx2(z4, FIX_0_390180644));
        let t0 = _mm256_add_epi64(_mm256_add_epi64(t0, z1), z3);
        let t1 = _mm256_add_epi64(_mm256_add_epi64(t1, z2), z4);
        let t2 = _mm256_add_epi64(_mm256_add_epi64(t2, z2), z3);
        let t3 = _mm256_add_epi64(_mm256_add_epi64(t3, z1), z4);

        [
            descale_avx2::<N>(_mm256_add_epi64(tmp10, t3)),
            descale_avx2::<N>(_mm256_add_epi64(tmp11, t2)),
            descale_avx2::<N>(_mm256_add_epi64(tmp12, t1)),
            descale_avx2::<N>(_mm256_add_epi64(tmp13, t0)),
            descale_avx2::<N>(_mm256_sub_epi64(tmp13, t0)),
            descale_avx2::<N>(_mm256_sub_epi64(tmp12, t1)),
            descale_avx2::<N>(_mm256_sub_epi64(tmp11, t2)),
            descale_avx2::<N>(_mm256_sub_epi64(tmp10, t3)),
        ]
    }

    /// Column pass on one i64×4 half with the scalar path's flat-column
    /// shortcut lifted to the half: when all four columns' ACs are zero
    /// the butterfly reduces to `dc << PASS1_BITS` lane-wise (bit-exact —
    /// module docs), which real "dense"-class photographic blocks hit
    /// constantly on their high-frequency columns. This is what keeps the
    /// vector path ahead of the (column-adaptive) scalar code on mixed
    /// blocks, not just on fully populated ones.
    #[target_feature(enable = "avx2")]
    fn pass1_half_avx2<const K: usize>(v: &[__m256i; 8]) -> [__m256i; 8] {
        let mut acc = _mm256_setzero_si256();
        for r in v.iter().take(K).skip(1) {
            acc = _mm256_or_si256(acc, *r);
        }
        if _mm256_testz_si256(acc, acc) != 0 {
            return [_mm256_slli_epi64::<{ PASS1_BITS }>(v[0]); 8];
        }
        idct_1d_avx2::<K, P1>(v)
    }

    /// Take the (sign-complete) low dwords of two i64×4 vectors into one
    /// i32×8 row.
    #[target_feature(enable = "avx2")]
    fn narrow_pair_avx2(lo: __m256i, hi: __m256i) -> __m256i {
        let idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
        let a = _mm256_permutevar8x32_epi32(lo, idx);
        let b = _mm256_permutevar8x32_epi32(hi, idx);
        _mm256_inserti128_si256::<1>(a, _mm256_castsi256_si128(b))
    }

    /// Sign-extend an i32×8 row into (low-columns, high-columns) i64×4
    /// halves.
    #[target_feature(enable = "avx2")]
    fn widen_row_avx2(v: __m256i) -> (__m256i, __m256i) {
        (
            _mm256_cvtepi32_epi64(_mm256_castsi256_si128(v)),
            _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(v)),
        )
    }

    /// In-register 8×8 i32 transpose.
    #[target_feature(enable = "avx2")]
    fn transpose8_avx2(r: &[__m256i; 8]) -> [__m256i; 8] {
        let t0 = _mm256_unpacklo_epi32(r[0], r[1]);
        let t1 = _mm256_unpackhi_epi32(r[0], r[1]);
        let t2 = _mm256_unpacklo_epi32(r[2], r[3]);
        let t3 = _mm256_unpackhi_epi32(r[2], r[3]);
        let t4 = _mm256_unpacklo_epi32(r[4], r[5]);
        let t5 = _mm256_unpackhi_epi32(r[4], r[5]);
        let t6 = _mm256_unpacklo_epi32(r[6], r[7]);
        let t7 = _mm256_unpackhi_epi32(r[6], r[7]);
        let u0 = _mm256_unpacklo_epi64(t0, t2);
        let u1 = _mm256_unpackhi_epi64(t0, t2);
        let u2 = _mm256_unpacklo_epi64(t1, t3);
        let u3 = _mm256_unpackhi_epi64(t1, t3);
        let u4 = _mm256_unpacklo_epi64(t4, t6);
        let u5 = _mm256_unpackhi_epi64(t4, t6);
        let u6 = _mm256_unpacklo_epi64(t5, t7);
        let u7 = _mm256_unpackhi_epi64(t5, t7);
        [
            _mm256_permute2x128_si256::<0x20>(u0, u4),
            _mm256_permute2x128_si256::<0x20>(u1, u5),
            _mm256_permute2x128_si256::<0x20>(u2, u6),
            _mm256_permute2x128_si256::<0x20>(u3, u7),
            _mm256_permute2x128_si256::<0x31>(u0, u4),
            _mm256_permute2x128_si256::<0x31>(u1, u5),
            _mm256_permute2x128_si256::<0x31>(u2, u6),
            _mm256_permute2x128_si256::<0x31>(u3, u7),
        ]
    }

    /// Dequantize row `r` of the block into an i32×8 row, zeroing columns
    /// `>= K` exactly as the scalar `dequant_corner` does.
    #[target_feature(enable = "avx2")]
    fn dequant_row_avx2<const K: usize>(coefs: &[i16; 64], quant: &[u16; 64], r: usize) -> __m256i {
        let c16 = unsafe { _mm_loadu_si128(coefs[r * 8..].as_ptr() as *const __m128i) };
        let q16 = unsafe { _mm_loadu_si128(quant[r * 8..].as_ptr() as *const __m128i) };
        // Exact signed i16 × (positive ≤ 255) product via mullo/mulhi
        // interleave.
        let plo = _mm_mullo_epi16(c16, q16);
        let phi = _mm_mulhi_epi16(c16, q16);
        let p0 = _mm_unpacklo_epi16(plo, phi);
        let p1 = _mm_unpackhi_epi16(plo, phi);
        let dq = _mm256_inserti128_si256::<1>(_mm256_castsi128_si256(p0), p1);
        match K {
            2 => _mm256_and_si256(dq, _mm256_setr_epi32(-1, -1, 0, 0, 0, 0, 0, 0)),
            4 => _mm256_and_si256(dq, _mm256_setr_epi32(-1, -1, -1, -1, 0, 0, 0, 0)),
            _ => dq,
        }
    }

    /// Fused dequant + pruned 2-D islow IDCT + strided store, AVX2. Only
    /// the top-left `K`×`K` of the block may be nonzero (`K = 8` dense).
    #[target_feature(enable = "avx2")]
    pub(super) fn dequant_idct_avx2<const K: usize>(
        coefs: &[i16; 64],
        quant: &[u16; 64],
        dst: &mut [u8],
        base: usize,
        stride: usize,
    ) {
        let zero = _mm256_setzero_si256();

        // Column pass: live input rows are 0..K; columns >= K are zero, so
        // for K <= 4 the whole high half of the butterfly is zeros in,
        // zeros out (descale(0, n) == 0) and is skipped.
        let mut vlo = [zero; 8];
        let mut vhi = [zero; 8];
        for r in 0..K {
            let dq = dequant_row_avx2::<K>(coefs, quant, r);
            let (l, h) = widen_row_avx2(dq);
            vlo[r] = l;
            vhi[r] = h;
        }
        let wlo = pass1_half_avx2::<K>(&vlo);
        let whi = if K <= 4 {
            [zero; 8]
        } else {
            pass1_half_avx2::<K>(&vhi)
        };
        let mut w = [zero; 8];
        for r in 0..8 {
            w[r] = narrow_pair_avx2(wlo[r], whi[r]);
        }

        // Row pass = the same column-parallel butterfly on the transpose;
        // it reads only rows 0..K of the transpose (columns >= K of the
        // workspace are zero by construction).
        let wt = transpose8_avx2(&w);
        let mut tlo = [zero; 8];
        let mut thi = [zero; 8];
        for r in 0..K {
            let (l, h) = widen_row_avx2(wt[r]);
            tlo[r] = l;
            thi[r] = h;
        }
        let olo = idct_1d_avx2::<K, P2>(&tlo);
        let ohi = idct_1d_avx2::<K, P2>(&thi);
        let mut ot = [zero; 8];
        for r in 0..8 {
            ot[r] = narrow_pair_avx2(olo[r], ohi[r]);
        }
        let rows = transpose8_avx2(&ot);

        // range_limit = +128 then clamp(0, 255): saturating i32→i16→u8
        // packs realize the clamp exactly.
        let off = _mm256_set1_epi32(128);
        for (r, row) in rows.iter().enumerate() {
            let v = _mm256_add_epi32(*row, off);
            let p16 = _mm256_packs_epi32(v, v);
            let p16 = _mm256_permute4x64_epi64::<0b00_00_10_00>(p16);
            let p8 = _mm_packus_epi16(_mm256_castsi256_si128(p16), _mm256_castsi256_si128(p16));
            let o = base + r * stride;
            unsafe { _mm_storel_epi64(dst[o..o + 8].as_mut_ptr() as *mut __m128i, p8) };
        }
    }

    // ------------------------------- SSE2 -------------------------------

    /// Exact `lane_i64 * c` on two i64 lanes whose values fit i32:
    /// unsigned 32×32→64 product plus a sign correction of `c << 32` for
    /// negative lanes.
    #[target_feature(enable = "sse2")]
    fn mul_c_sse2(a: __m128i, c: i64) -> __m128i {
        let cv = _mm_set1_epi64x(c);
        let prod = _mm_mul_epu32(a, cv);
        // Per-qword sign mask of the (i32-ranged) value: replicate each
        // low dword and shift its sign across the lane.
        let sign = _mm_srai_epi32::<31>(_mm_shuffle_epi32::<0b10_10_00_00>(a));
        let corr = _mm_and_si128(sign, _mm_slli_epi64::<32>(cv));
        _mm_sub_epi64(prod, corr)
    }

    /// `descale(v, N)` on two i64 lanes (see `descale_avx2`).
    #[target_feature(enable = "sse2")]
    fn descale_sse2<const N: i32>(v: __m128i) -> __m128i {
        let r = _mm_add_epi64(v, _mm_set1_epi64x(1i64 << (N - 1)));
        let lo = _mm_srli_epi64::<N>(r);
        let hi = _mm_srai_epi32::<N>(r);
        let low_mask = _mm_set1_epi64x(0xFFFF_FFFF);
        _mm_or_si128(_mm_and_si128(lo, low_mask), _mm_andnot_si128(low_mask, hi))
    }

    /// The 1-D islow butterfly on two i64 lanes — same structure as
    /// `idct_1d_avx2`.
    #[target_feature(enable = "sse2")]
    fn idct_1d_sse2<const K: usize, const N: i32>(v: &[__m128i; 8]) -> [__m128i; 8] {
        let zero = _mm_setzero_si128();
        let at = |i: usize| if i < K { v[i] } else { zero };
        // Even part.
        let z2 = at(2);
        let z3 = at(6);
        let z1 = mul_c_sse2(_mm_add_epi64(z2, z3), FIX_0_541196100);
        let tmp2 = _mm_sub_epi64(z1, mul_c_sse2(z3, FIX_1_847759065));
        let tmp3 = _mm_add_epi64(z1, mul_c_sse2(z2, FIX_0_765366865));
        let z2 = at(0);
        let z3 = at(4);
        let tmp0 = _mm_slli_epi64::<{ CONST_BITS }>(_mm_add_epi64(z2, z3));
        let tmp1 = _mm_slli_epi64::<{ CONST_BITS }>(_mm_sub_epi64(z2, z3));
        let tmp10 = _mm_add_epi64(tmp0, tmp3);
        let tmp13 = _mm_sub_epi64(tmp0, tmp3);
        let tmp11 = _mm_add_epi64(tmp1, tmp2);
        let tmp12 = _mm_sub_epi64(tmp1, tmp2);

        // Odd part.
        let t0 = at(7);
        let t1 = at(5);
        let t2 = at(3);
        let t3 = at(1);
        let z1 = _mm_add_epi64(t0, t3);
        let z2 = _mm_add_epi64(t1, t2);
        let z3 = _mm_add_epi64(t0, t2);
        let z4 = _mm_add_epi64(t1, t3);
        let z5 = mul_c_sse2(_mm_add_epi64(z3, z4), FIX_1_175875602);
        let t0 = mul_c_sse2(t0, FIX_0_298631336);
        let t1 = mul_c_sse2(t1, FIX_2_053119869);
        let t2 = mul_c_sse2(t2, FIX_3_072711026);
        let t3 = mul_c_sse2(t3, FIX_1_501321110);
        let z1 = _mm_sub_epi64(zero, mul_c_sse2(z1, FIX_0_899976223));
        let z2 = _mm_sub_epi64(zero, mul_c_sse2(z2, FIX_2_562915447));
        let z3 = _mm_sub_epi64(z5, mul_c_sse2(z3, FIX_1_961570560));
        let z4 = _mm_sub_epi64(z5, mul_c_sse2(z4, FIX_0_390180644));
        let t0 = _mm_add_epi64(_mm_add_epi64(t0, z1), z3);
        let t1 = _mm_add_epi64(_mm_add_epi64(t1, z2), z4);
        let t2 = _mm_add_epi64(_mm_add_epi64(t2, z2), z3);
        let t3 = _mm_add_epi64(_mm_add_epi64(t3, z1), z4);

        [
            descale_sse2::<N>(_mm_add_epi64(tmp10, t3)),
            descale_sse2::<N>(_mm_add_epi64(tmp11, t2)),
            descale_sse2::<N>(_mm_add_epi64(tmp12, t1)),
            descale_sse2::<N>(_mm_add_epi64(tmp13, t0)),
            descale_sse2::<N>(_mm_sub_epi64(tmp13, t0)),
            descale_sse2::<N>(_mm_sub_epi64(tmp12, t1)),
            descale_sse2::<N>(_mm_sub_epi64(tmp11, t2)),
            descale_sse2::<N>(_mm_sub_epi64(tmp10, t3)),
        ]
    }

    /// Column pass on one i64×2 quarter with the flat-column shortcut
    /// lifted to the pair (see `pass1_half_avx2`).
    #[target_feature(enable = "sse2")]
    fn pass1_quarter_sse2<const K: usize>(v: &[__m128i; 8]) -> [__m128i; 8] {
        let zero = _mm_setzero_si128();
        let mut acc = zero;
        for r in v.iter().take(K).skip(1) {
            acc = _mm_or_si128(acc, *r);
        }
        if _mm_movemask_epi8(_mm_cmpeq_epi32(acc, zero)) == 0xFFFF {
            return [_mm_slli_epi64::<{ PASS1_BITS }>(v[0]); 8];
        }
        idct_1d_sse2::<K, P1>(v)
    }

    /// Low dwords of two i64×2 vectors into one i32×4 row quarter.
    #[target_feature(enable = "sse2")]
    fn narrow_pair_sse2(lo: __m128i, hi: __m128i) -> __m128i {
        let a = _mm_shuffle_epi32::<0b00_00_10_00>(lo);
        let b = _mm_shuffle_epi32::<0b00_00_10_00>(hi);
        _mm_unpacklo_epi64(a, b)
    }

    /// Sign-extend an i32×4 into (lanes 0..2, lanes 2..4) i64×2 halves.
    #[target_feature(enable = "sse2")]
    fn widen_quad_sse2(v: __m128i) -> (__m128i, __m128i) {
        let sign = _mm_srai_epi32::<31>(v);
        (_mm_unpacklo_epi32(v, sign), _mm_unpackhi_epi32(v, sign))
    }

    /// 4×4 i32 transpose.
    #[target_feature(enable = "sse2")]
    fn tr4_sse2(a: __m128i, b: __m128i, c: __m128i, d: __m128i) -> [__m128i; 4] {
        let t0 = _mm_unpacklo_epi32(a, b);
        let t1 = _mm_unpacklo_epi32(c, d);
        let t2 = _mm_unpackhi_epi32(a, b);
        let t3 = _mm_unpackhi_epi32(c, d);
        [
            _mm_unpacklo_epi64(t0, t1),
            _mm_unpackhi_epi64(t0, t1),
            _mm_unpacklo_epi64(t2, t3),
            _mm_unpackhi_epi64(t2, t3),
        ]
    }

    /// 8×8 i32 transpose over (left, right) half-rows.
    #[target_feature(enable = "sse2")]
    fn transpose8_sse2(l: &[__m128i; 8], r: &[__m128i; 8]) -> ([__m128i; 8], [__m128i; 8]) {
        let tl = tr4_sse2(l[0], l[1], l[2], l[3]);
        let bl = tr4_sse2(l[4], l[5], l[6], l[7]);
        let tr = tr4_sse2(r[0], r[1], r[2], r[3]);
        let br = tr4_sse2(r[4], r[5], r[6], r[7]);
        (
            [tl[0], tl[1], tl[2], tl[3], tr[0], tr[1], tr[2], tr[3]],
            [bl[0], bl[1], bl[2], bl[3], br[0], br[1], br[2], br[3]],
        )
    }

    /// Dequantize row `r` into (left, right) i32×4 half-rows, zeroing
    /// columns `>= K`.
    #[target_feature(enable = "sse2")]
    fn dequant_row_sse2<const K: usize>(
        coefs: &[i16; 64],
        quant: &[u16; 64],
        r: usize,
    ) -> (__m128i, __m128i) {
        let c16 = unsafe { _mm_loadu_si128(coefs[r * 8..].as_ptr() as *const __m128i) };
        let q16 = unsafe { _mm_loadu_si128(quant[r * 8..].as_ptr() as *const __m128i) };
        let plo = _mm_mullo_epi16(c16, q16);
        let phi = _mm_mulhi_epi16(c16, q16);
        let left = _mm_unpacklo_epi16(plo, phi);
        let right = _mm_unpackhi_epi16(plo, phi);
        match K {
            2 => (
                _mm_and_si128(left, _mm_setr_epi32(-1, -1, 0, 0)),
                _mm_setzero_si128(),
            ),
            4 => (left, _mm_setzero_si128()),
            _ => (left, right),
        }
    }

    /// Fused dequant + pruned 2-D islow IDCT + strided store, SSE2.
    #[target_feature(enable = "sse2")]
    pub(super) fn dequant_idct_sse2<const K: usize>(
        coefs: &[i16; 64],
        quant: &[u16; 64],
        dst: &mut [u8],
        base: usize,
        stride: usize,
    ) {
        let zero = _mm_setzero_si128();

        // Column pass over four i64×2 quarters (columns 0-1, 2-3, 4-5,
        // 6-7); the right-half quarters are all-zero for K <= 4.
        let mut q = [[zero; 8]; 4];
        #[allow(clippy::needless_range_loop)] // r indexes four arrays at once
        for r in 0..K {
            let (left, right) = dequant_row_sse2::<K>(coefs, quant, r);
            let (q0, q1) = widen_quad_sse2(left);
            q[0][r] = q0;
            q[1][r] = q1;
            if K > 4 {
                let (q2, q3) = widen_quad_sse2(right);
                q[2][r] = q2;
                q[3][r] = q3;
            }
        }
        let w0 = pass1_quarter_sse2::<K>(&q[0]);
        let w1 = pass1_quarter_sse2::<K>(&q[1]);
        let (w2, w3) = if K <= 4 {
            ([zero; 8], [zero; 8])
        } else {
            (
                pass1_quarter_sse2::<K>(&q[2]),
                pass1_quarter_sse2::<K>(&q[3]),
            )
        };
        let mut wl = [zero; 8];
        let mut wr = [zero; 8];
        for r in 0..8 {
            wl[r] = narrow_pair_sse2(w0[r], w1[r]);
            wr[r] = narrow_pair_sse2(w2[r], w3[r]);
        }

        // Row pass on the transpose.
        let (tl, tr) = transpose8_sse2(&wl, &wr);
        let mut t = [[zero; 8]; 4];
        for r in 0..K {
            let (q0, q1) = widen_quad_sse2(tl[r]);
            let (q2, q3) = widen_quad_sse2(tr[r]);
            t[0][r] = q0;
            t[1][r] = q1;
            t[2][r] = q2;
            t[3][r] = q3;
        }
        let o0 = idct_1d_sse2::<K, P2>(&t[0]);
        let o1 = idct_1d_sse2::<K, P2>(&t[1]);
        let o2 = idct_1d_sse2::<K, P2>(&t[2]);
        let o3 = idct_1d_sse2::<K, P2>(&t[3]);
        let mut ol = [zero; 8];
        let mut or = [zero; 8];
        for r in 0..8 {
            ol[r] = narrow_pair_sse2(o0[r], o1[r]);
            or[r] = narrow_pair_sse2(o2[r], o3[r]);
        }
        let (rl, rr) = transpose8_sse2(&ol, &or);

        // range_limit + pack + store.
        let off = _mm_set1_epi32(128);
        for r in 0..8 {
            let l = _mm_add_epi32(rl[r], off);
            let h = _mm_add_epi32(rr[r], off);
            let p16 = _mm_packs_epi32(l, h);
            let p8 = _mm_packus_epi16(p16, p16);
            let o = base + r * stride;
            unsafe { _mm_storel_epi64(dst[o..o + 8].as_mut_ptr() as *mut __m128i, p8) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dct::sparse::idct_block_sparse;
    use crate::testutil::{coef_block_for_eob, quant_8bit};

    fn coef_block(seed: u64, eob: usize) -> [i16; 64] {
        coef_block_for_eob(seed, eob, 1024)
    }

    fn quant_of(seed: u64) -> [u16; 64] {
        quant_8bit(seed)
    }

    /// Every level is bit-identical to the scalar sparse dispatch across
    /// the full EOB range.
    #[test]
    fn all_levels_match_scalar_across_eob() {
        for eob in 0..64usize {
            for seed in 0..4u64 {
                let coefs = coef_block(seed * 64 + eob as u64, eob);
                let quant = quant_of(seed);
                let mut dq = [0i32; 64];
                for i in 0..64 {
                    dq[i] = coefs[i] as i32 * quant[i] as i32;
                }
                let want = idct_block_sparse(&dq, eob as u8);
                for level in SimdLevel::all_available() {
                    let got = dequant_idct_block_level(level, &coefs, &quant, eob as u8);
                    assert_eq!(got, want, "{} eob {eob} seed {seed}", level.name());
                }
            }
        }
    }

    /// Extreme coefficients at the edge of the decoder's domain (|c| up to
    /// 32767, q = 255) still match bit-for-bit — the i32-multiplicand
    /// range proof in the module docs, exercised.
    #[test]
    fn extreme_domain_matches_scalar() {
        let quant = [255u16; 64];
        for pattern in 0..6 {
            let mut coefs = [0i16; 64];
            for (i, slot) in coefs.iter_mut().enumerate() {
                *slot = match pattern {
                    0 => 32767,
                    1 => -32768,
                    2 => {
                        if i % 2 == 0 {
                            32767
                        } else {
                            -32768
                        }
                    }
                    3 => {
                        if i / 8 % 2 == 0 {
                            -32768
                        } else {
                            32767
                        }
                    }
                    4 => ((i as i32 * 9973 - 32000) % 32768) as i16,
                    _ => -((i as i32 * 7919) % 32768) as i16,
                };
            }
            let mut dq = [0i32; 64];
            for i in 0..64 {
                dq[i] = coefs[i] as i32 * quant[i] as i32;
            }
            let want = idct_block_sparse(&dq, 63);
            for level in SimdLevel::all_available() {
                let got = dequant_idct_block_level(level, &coefs, &quant, 63);
                assert_eq!(got, want, "{} pattern {pattern}", level.name());
            }
        }
    }

    /// The strided store writes exactly the 8×8 window.
    #[test]
    fn strided_store_stays_in_window() {
        let coefs = coef_block(99, 30);
        let quant = quant_of(7);
        let want = dequant_idct_block_level(SimdLevel::Scalar, &coefs, &quant, 30);
        for level in SimdLevel::all_available() {
            let stride = 29;
            let mut plane = vec![0xAAu8; stride * 16];
            let base = 2 * stride + 5;
            dequant_idct_to_level(level, &coefs, &quant, 30, &mut plane, base, stride);
            for r in 0..8 {
                assert_eq!(
                    &plane[base + r * stride..base + r * stride + 8],
                    &want[r * 8..r * 8 + 8],
                    "{} row {r}",
                    level.name()
                );
                assert_eq!(plane[base + r * stride + 8], 0xAA, "{} spill", level.name());
            }
            assert_eq!(plane[base - 1], 0xAA);
        }
    }

    /// The SSE2 2×2 and dense kernels are dispatch-bypassed on measured
    /// grounds (the scalar per-column pruning wins there) but must stay
    /// bit-exact — call them directly.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn bypassed_sse2_kernels_stay_bit_exact() {
        if !SimdLevel::Sse2.is_available() {
            return;
        }
        for seed in 0..8u64 {
            for (k, eob) in [(2usize, 2usize), (8, 10), (8, 30), (8, 63)] {
                let coefs = coef_block(seed * 7 + eob as u64, eob);
                let quant = quant_of(seed);
                let want = dequant_idct_block_level(SimdLevel::Scalar, &coefs, &quant, eob as u8);
                let mut got = [0u8; 64];
                unsafe {
                    match k {
                        2 => super::x86::dequant_idct_sse2::<2>(&coefs, &quant, &mut got, 0, 8),
                        _ => super::x86::dequant_idct_sse2::<8>(&coefs, &quant, &mut got, 0, 8),
                    }
                }
                assert_eq!(got, want, "K {k} seed {seed} eob {eob}");
            }
        }
    }

    /// A looser-than-necessary EOB bound is still exact at every level
    /// (upper-bound semantics, matching the scalar dispatch).
    #[test]
    fn looser_bound_is_exact_at_every_level() {
        let coefs = coef_block(3, 2);
        let quant = quant_of(3);
        let want = dequant_idct_block_level(SimdLevel::Scalar, &coefs, &quant, 63);
        for level in SimdLevel::all_available() {
            for eob in [2u8, 5, 9, 20, 63] {
                let got = dequant_idct_block_level(level, &coefs, &quant, eob);
                assert_eq!(got, want, "{} bound {eob}", level.name());
            }
        }
    }
}
