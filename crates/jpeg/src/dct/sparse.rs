//! EOB-dispatched sparse IDCT with fused dequantization and plane store.
//!
//! Typical photographic JPEGs quantize most high-frequency coefficients to
//! zero: at quality 80 the majority of blocks end well inside the first
//! zigzag diagonal or two, and chroma blocks are frequently DC-only.
//! GPU decoders exploit this aggressively (Weißenberger & Schmidt,
//! *Accelerating JPEG Decompression on GPUs*); this module brings the same
//! discipline to the CPU paths.
//!
//! Entropy decode records each block's end-of-block index into
//! [`crate::coef::CoefBuffer`] for free; [`dequant_idct_to`] dispatches on
//! it:
//!
//! * **EOB 0** — DC-only: the whole block is one flat sample,
//!   `range_limit(descale(dc, 3))`; no butterflies at all.
//! * **EOB ≤ 2** — nonzeros confined to the top-left 2×2: two pruned
//!   column passes + eight 2-input row passes.
//! * **EOB ≤ 9** — nonzeros confined to the top-left 4×4: four pruned
//!   column passes + eight 4-input row passes.
//! * otherwise — the dense islow path.
//!
//! Every path produces **bit-identical** samples to the dense
//! [`crate::dct::islow::idct_block`]: the pruned butterflies drop only
//! terms that are exactly zero (see `idct_1d_k`), and the thresholds are
//! derived from the zigzag layout (checked by a unit test here). The
//! dispatch therefore never affects output, only speed — the property the
//! cross-mode equivalence tests pin down.
//!
//! Dequantization is fused into the coefficient load (paper §4.1: "the
//! input data is de-quantized after being loaded from global memory") and
//! the row pass stores straight into the caller's sample plane, so one
//! block goes coefficients → pixels in a single pass with no intermediate
//! `[u8; 64]` temporary.

use super::islow::{idct_pass1_k, idct_row_k};
use super::range_limit;
use crate::zigzag::ZIGZAG;

/// Sparse-dispatch class of a block, derived from its EOB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparseClass {
    /// Only the DC coefficient may be nonzero.
    DcOnly,
    /// Nonzeros confined to rows 0..2 × cols 0..2.
    Corner2,
    /// Nonzeros confined to rows 0..4 × cols 0..4.
    Corner4,
    /// Anything else: dense 8×8.
    Dense,
}

/// Highest zigzag index whose natural position stays inside the top-left
/// `k`×`k` corner, computed from the zigzag layout at compile time.
const fn corner_eob_limit(k: usize) -> usize {
    let mut limit = 0;
    let mut i = 0;
    while i < 64 {
        let (row, col) = (ZIGZAG[i] / 8, ZIGZAG[i] % 8);
        if row >= k || col >= k {
            break;
        }
        limit = i;
        i += 1;
    }
    limit
}

/// EOB bound for [`SparseClass::Corner2`] (= 2 for the T.81 zigzag).
pub const EOB_CORNER2: u8 = corner_eob_limit(2) as u8;
/// EOB bound for [`SparseClass::Corner4`] (= 9 for the T.81 zigzag).
pub const EOB_CORNER4: u8 = corner_eob_limit(4) as u8;

/// Classify a block by its EOB (highest possibly-nonzero zigzag index).
#[inline(always)]
pub fn class_for_eob(eob: u8) -> SparseClass {
    if eob == 0 {
        SparseClass::DcOnly
    } else if eob <= EOB_CORNER2 {
        SparseClass::Corner2
    } else if eob <= EOB_CORNER4 {
        SparseClass::Corner4
    } else {
        SparseClass::Dense
    }
}

/// Number of sparse-dispatch classes (the length of an EOB-class histogram).
pub const NUM_SPARSE_CLASSES: usize = 4;

/// `i16` coefficients the **compacted GPU transfer layout** ships per block
/// of each class, indexed by [`SparseClass::index`]: the class's live
/// k×k natural-order corner (1, 4, 16, 64). The EOB bounds guarantee every
/// nonzero lies inside that corner, so shipping only the corner is exact —
/// the Weißenberger & Schmidt compaction the GPU H2D path uses since PR 9.
pub const CLASS_COEFS: [usize; NUM_SPARSE_CLASSES] = [1, 4, 16, 64];

impl SparseClass {
    /// Stable histogram index of the class: DC-only, 2×2, 4×4, dense.
    #[inline(always)]
    pub fn index(self) -> usize {
        match self {
            SparseClass::DcOnly => 0,
            SparseClass::Corner2 => 1,
            SparseClass::Corner4 => 2,
            SparseClass::Dense => 3,
        }
    }

    /// Number of live rows/columns of the class's corner (1, 2, 4 or 8):
    /// how many butterfly inputs a pruned 1-D pass reads, and how many
    /// columns of the workspace a pruned column pass populates.
    #[inline(always)]
    pub fn live_k(self) -> usize {
        match self {
            SparseClass::DcOnly => 1,
            SparseClass::Corner2 => 2,
            SparseClass::Corner4 => 4,
            SparseClass::Dense => 8,
        }
    }
}

/// Column pass of the pruned islow IDCT for one sparse class — the
/// per-class building block of the GPU IDCT kernels (one work-item per
/// column), bit-identical to the dense `idct_pass1_k` when inputs beyond
/// [`SparseClass::live_k`] are zero (which the EOB bound guarantees).
#[inline]
pub fn idct_pass1_class(v: [i64; 8], class: SparseClass) -> [i64; 8] {
    match class {
        SparseClass::DcOnly => idct_pass1_k::<1>(v),
        SparseClass::Corner2 => idct_pass1_k::<2>(v),
        SparseClass::Corner4 => idct_pass1_k::<4>(v),
        SparseClass::Dense => idct_pass1_k::<8>(v),
    }
}

/// Row pass of the pruned islow IDCT for one sparse class (see
/// [`idct_pass1_class`]); inputs beyond the class's corner are ignored —
/// they are provably zero in the workspace a pruned column pass built.
#[inline]
pub fn idct_row_class(row: &[i64; 8], class: SparseClass) -> [u8; 8] {
    match class {
        SparseClass::DcOnly => idct_row_k::<1>(row),
        SparseClass::Corner2 => idct_row_k::<2>(row),
        SparseClass::Corner4 => idct_row_k::<4>(row),
        SparseClass::Dense => idct_row_k::<8>(row),
    }
}

/// Dequantize only the top-left `K`×`K` corner (all a sparse block can
/// populate) into a zeroed natural-order workspace.
#[inline(always)]
fn dequant_corner<const K: usize>(coefs: &[i16; 64], quant: &[u16; 64]) -> [i32; 64] {
    let mut dq = [0i32; 64];
    for r in 0..K {
        for c in 0..K {
            let i = r * 8 + c;
            dq[i] = coefs[i] as i32 * quant[i] as i32;
        }
    }
    dq
}

/// Pruned 2-D islow IDCT: only the top-left `K`×`K` of `dq` may be nonzero.
/// Row `r` of the 8×8 output lands at `dst[base + r * stride ..][..8]`.
#[inline(always)]
fn idct_corner_to<const K: usize>(dq: &[i32; 64], dst: &mut [u8], base: usize, stride: usize) {
    // Column pass over the K live columns; the other columns of the
    // workspace stay zero, exactly as the dense path computes them.
    let mut ws = [0i64; 64];
    for col in 0..K {
        let mut v = [0i64; 8];
        for (r, slot) in v.iter_mut().take(K).enumerate() {
            *slot = dq[r * 8 + col] as i64;
        }
        let out = idct_pass1_k::<K>(v);
        for (r, &val) in out.iter().enumerate() {
            ws[r * 8 + col] = val;
        }
    }
    // Row pass: each row has at most K live entries (cols 0..K).
    for r in 0..8 {
        let mut row = [0i64; 8];
        row.copy_from_slice(&ws[r * 8..r * 8 + 8]);
        let px = idct_row_k::<K>(&row);
        let off = base + r * stride;
        dst[off..off + 8].copy_from_slice(&px);
    }
}

/// Fused dequantize + EOB-dispatched IDCT + store of one block.
///
/// Row `r` of the 8×8 result is written to `dst[base + r * stride ..][..8]`.
/// `eob` must bound the block's highest nonzero zigzag position (the value
/// [`crate::coef::CoefBuffer`] records); output is bit-identical to
/// `dequantize` → `idct_block` → copy for any valid bound.
#[inline]
pub fn dequant_idct_to(
    coefs: &[i16; 64],
    quant: &[u16; 64],
    eob: u8,
    dst: &mut [u8],
    base: usize,
    stride: usize,
) {
    match class_for_eob(eob) {
        SparseClass::DcOnly => {
            // Flat block: the dense path descales the lone DC term to
            // descale(dc << 15, 18) per sample, which reduces to
            // (dc + 4) >> 3 exactly.
            let dc = coefs[0] as i64 * quant[0] as i64;
            let px = range_limit(((dc + 4) >> 3) as i32);
            for r in 0..8 {
                let off = base + r * stride;
                dst[off..off + 8].fill(px);
            }
        }
        SparseClass::Corner2 => {
            let dq = dequant_corner::<2>(coefs, quant);
            idct_corner_to::<2>(&dq, dst, base, stride);
        }
        SparseClass::Corner4 => {
            let dq = dequant_corner::<4>(coefs, quant);
            idct_corner_to::<4>(&dq, dst, base, stride);
        }
        SparseClass::Dense => {
            let dq = dequant_corner::<8>(coefs, quant);
            idct_corner_to::<8>(&dq, dst, base, stride);
        }
    }
}

/// EOB-dispatched IDCT of an already-dequantized block (test/oracle entry
/// point; the hot paths use the fused [`dequant_idct_to`]).
pub fn idct_block_sparse(dq: &[i32; 64], eob: u8) -> [u8; 64] {
    let mut out = [0u8; 64];
    match class_for_eob(eob) {
        SparseClass::DcOnly => {
            let px = range_limit(((dq[0] as i64 + 4) >> 3) as i32);
            out.fill(px);
        }
        SparseClass::Corner2 => idct_corner_to::<2>(dq, &mut out, 0, 8),
        SparseClass::Corner4 => idct_corner_to::<4>(dq, &mut out, 0, 8),
        SparseClass::Dense => idct_corner_to::<8>(dq, &mut out, 0, 8),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dct::islow::idct_block;
    use crate::zigzag::ZIGZAG;

    /// The corner bounds must match the actual zigzag layout.
    #[test]
    fn corner_limits_match_zigzag() {
        assert_eq!(EOB_CORNER2, 2);
        assert_eq!(EOB_CORNER4, 9);
        for (k, limit) in [(2usize, EOB_CORNER2), (4, EOB_CORNER4)] {
            for (i, &nat) in ZIGZAG.iter().enumerate().take(limit as usize + 1) {
                let (row, col) = (nat / 8, nat % 8);
                assert!(
                    row < k && col < k,
                    "zigzag {i} = ({row},{col}) escapes {k}x{k}"
                );
            }
            let next = limit as usize + 1;
            let (row, col) = (ZIGZAG[next] / 8, ZIGZAG[next] % 8);
            assert!(row >= k || col >= k, "bound {limit} not tight for {k}x{k}");
        }
    }

    /// The compacted-transfer footprint of each class is exactly its live
    /// corner.
    #[test]
    fn class_coefs_are_live_corner_squares() {
        for class in [
            SparseClass::DcOnly,
            SparseClass::Corner2,
            SparseClass::Corner4,
            SparseClass::Dense,
        ] {
            assert_eq!(CLASS_COEFS[class.index()], class.live_k() * class.live_k());
        }
    }

    fn sparse_block(seed: u64, eob: usize) -> [i32; 64] {
        let mut dq = [0i32; 64];
        let mut state = seed | 1;
        for item in ZIGZAG.iter().take(eob + 1) {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            dq[*item] = ((state >> 33) as i32 % 1024) - 512;
        }
        dq
    }

    /// Every class is bit-identical to the dense islow path.
    #[test]
    fn all_classes_match_dense_idct() {
        for eob in 0..64usize {
            for seed in 0..8u64 {
                let dq = sparse_block(seed * 64 + eob as u64, eob);
                let want = idct_block(&dq);
                let got = idct_block_sparse(&dq, eob as u8);
                assert_eq!(got, want, "eob {eob} seed {seed}");
            }
        }
    }

    /// A larger-than-necessary EOB bound is still exact (upper-bound
    /// semantics).
    #[test]
    fn looser_bound_is_still_exact() {
        let dq = sparse_block(17, 2);
        let want = idct_block(&dq);
        for eob in 2..64 {
            assert_eq!(idct_block_sparse(&dq, eob), want, "bound {eob}");
        }
    }

    /// The fused entry point writes through stride correctly and matches
    /// the oracle.
    #[test]
    fn fused_store_respects_stride() {
        let mut coefs = [0i16; 64];
        coefs[0] = 37;
        coefs[1] = -12;
        coefs[8] = 5;
        let quant = [3u16; 64];
        let mut dq = [0i32; 64];
        for i in 0..64 {
            dq[i] = coefs[i] as i32 * quant[i] as i32;
        }
        let want = idct_block(&dq);

        let stride = 24;
        let mut plane = vec![0u8; stride * 16];
        let base = 3 * stride + 8;
        dequant_idct_to(&coefs, &quant, 2, &mut plane, base, stride);
        for r in 0..8 {
            assert_eq!(
                &plane[base + r * stride..base + r * stride + 8],
                &want[r * 8..r * 8 + 8]
            );
        }
        // Neighbouring bytes untouched.
        assert_eq!(plane[base - 1], 0);
        assert_eq!(plane[base + 8], 0);
    }
}
