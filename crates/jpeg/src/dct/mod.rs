//! Forward and inverse 8x8 DCT-II transforms.
//!
//! Paper §4.1 implements the 2-D IDCT as a 1-D column pass followed by a 1-D
//! row pass (Equations (1) and (2)) using the AAN fast algorithm of
//! Arai–Agui–Nakajima (paper reference \[26\]), the same family libjpeg-turbo
//! uses. This module provides:
//!
//! * [`reference`](mod@crate::dct::reference) — a direct f64 evaluation of Equations (1)/(2); slow but
//!   obviously correct, used as the oracle in tests,
//! * [`islow`] — the 13-bit fixed-point "islow" integer IDCT and the matching
//!   integer FDCT (libjpeg's accuracy-first pair); these are the *bit-exact*
//!   transforms used by every decode mode so that CPU and GPU partitions
//!   produce identical pixels,
//! * [`aan`] — the AAN float IDCT with quantization-table prescaling, the
//!   algorithm the paper's GPU kernel implements,
//! * [`sparse`] — EOB-dispatched pruned islow variants (DC-only flat fill,
//!   2×2 / 4×4 corner butterflies) with fused dequantize+IDCT+store; the
//!   per-block dispatch the CPU hot paths run, bit-identical to [`islow`],
//! * [`simd_islow`] — runtime-dispatched SSE2/AVX2 vector kernels for the
//!   same EOB-dispatched fused pass (column-parallel butterflies on i64
//!   lanes), bit-identical to [`sparse`] at every level; what the fused
//!   row-tile pipeline runs when the session's `SimdLevel` allows.

pub mod aan;
pub mod islow;
pub mod reference;
pub mod simd_islow;
pub mod sparse;

/// Clamp a level-shifted IDCT output value to the 8-bit sample range.
///
/// Mirrors libjpeg's range-limit table: input is a centered sample in roughly
/// [-384, 383]; output is `clamp(x + 128, 0, 255)`.
#[inline(always)]
pub fn range_limit(x: i32) -> u8 {
    (x + 128).clamp(0, 255) as u8
}

/// Number of fractional bits retained between the two islow passes.
pub const PASS1_BITS: i32 = 2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_limit_clamps() {
        assert_eq!(range_limit(0), 128);
        assert_eq!(range_limit(-128), 0);
        assert_eq!(range_limit(127), 255);
        assert_eq!(range_limit(-4000), 0);
        assert_eq!(range_limit(4000), 255);
    }
}
