//! Runtime-dispatched SIMD kernels for the parallel phase.
//!
//! The paper's §1 premise is that a hand-SIMDized sequential decoder runs
//! roughly twice as fast as the scalar one; until this module the "SIMD
//! mode" was plane-restructured scalar code. Here are the real vector
//! kernels for the two stages that dominate the parallel phase after the
//! PR-1 IDCT work — chroma upsampling and YCbCr→RGB conversion — as
//! `core::arch::x86_64` SSE2 and AVX2 paths behind runtime CPU-feature
//! dispatch, with the existing scalar code ([`crate::sample`],
//! [`crate::color`]) as the portable fallback.
//!
//! Every kernel is **bit-identical** to its scalar counterpart: the SIMD
//! arithmetic is the same 16-bit triangular filter (Algorithm 1) and the
//! same `SCALE_BITS` fixed-point conversion (Algorithm 2), lane-for-lane —
//! enforced by the proptest matrix in `tests/simd_kernels_props.rs` and by
//! the cross-mode bit-identity suites.
//!
//! Dispatch is represented by [`SimdLevel`], detected **once** per process
//! (cached `is_x86_feature_detected!`) and then carried by the decoder
//! session ([`super::simd::SimdScratch`]), not re-queried per row. The
//! `HETJPEG_SIMD` environment variable (`scalar` | `sse2` | `avx2`) caps the
//! detected level so CI can exercise the fallback paths on any host.

use crate::color::{YccTables, FIX_0_34414, FIX_0_71414, FIX_1_40200, FIX_1_77200, ONE_HALF};
use crate::sample::{upsample_row_h2v1_blockwise, upsample_v2_pair};
use std::sync::OnceLock;

/// Vector instruction set the parallel-phase kernels run on.
///
/// Ordered: a level implies every lower one is also usable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdLevel {
    /// Portable scalar fallback (the pre-PR-3 code paths, unchanged).
    Scalar,
    /// 128-bit SSE2 kernels (baseline on every x86-64).
    Sse2,
    /// 256-bit AVX2 kernels.
    Avx2,
}

static DETECTED: OnceLock<SimdLevel> = OnceLock::new();

impl SimdLevel {
    /// The best level this host supports, detected once per process and
    /// cached. Honors the `HETJPEG_SIMD` cap (`scalar` | `sse2` | `avx2`)
    /// so test runs can force the fallback paths.
    pub fn detect() -> SimdLevel {
        *DETECTED.get_or_init(|| Self::detect_uncached().min(Self::env_cap()))
    }

    fn env_cap() -> SimdLevel {
        match std::env::var("HETJPEG_SIMD").as_deref() {
            Ok("scalar") => SimdLevel::Scalar,
            Ok("sse2") => SimdLevel::Sse2,
            Ok("avx2") | Err(_) => SimdLevel::Avx2,
            Ok(other) => {
                // A typoed cap must not silently disable the coverage the
                // caller asked for (the CI forced-scalar pass relies on it).
                eprintln!(
                    "hetjpeg: ignoring unrecognized HETJPEG_SIMD value {other:?} \
                     (expected scalar|sse2|avx2)"
                );
                SimdLevel::Avx2
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    fn detect_uncached() -> SimdLevel {
        if is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else {
            // SSE2 is part of the x86-64 baseline.
            SimdLevel::Sse2
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    fn detect_uncached() -> SimdLevel {
        SimdLevel::Scalar
    }

    /// Whether this level's kernels can run on the current host.
    pub fn is_available(self) -> bool {
        self <= Self::detect_uncached()
    }

    /// The nearest level the current host can actually run — the dispatch
    /// functions clamp through this, so requesting an unavailable level
    /// (e.g. `Avx2` on a pre-AVX2 chip) degrades instead of executing a
    /// `#[target_feature]` function the CPU lacks.
    pub fn clamp_to_host(self) -> SimdLevel {
        self.min(Self::detect_uncached())
    }

    /// Every level the current host can run, lowest first — the axis the
    /// bit-identity proptest matrix sweeps.
    pub fn all_available() -> Vec<SimdLevel> {
        [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2]
            .into_iter()
            .filter(|l| l.is_available())
            .collect()
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// Fused dequantize + EOB-dispatched IDCT + store of one block, dispatched
/// on `level` — the IDCT member of the kernel family (PR 5), delegating to
/// [`crate::dct::simd_islow`]. Bit-identical to
/// [`crate::dct::sparse::dequant_idct_to`] at every level; same contract
/// (row `r` of the 8×8 result lands at `dst[base + r * stride ..][..8]`,
/// `eob` bounds the highest nonzero zigzag index).
#[inline]
pub fn dequant_idct_block(
    level: SimdLevel,
    coefs: &[i16; 64],
    quant: &[u16; 64],
    eob: u8,
    dst: &mut [u8],
    base: usize,
    stride: usize,
) {
    crate::dct::simd_islow::dequant_idct_to_level(level, coefs, quant, eob, dst, base, stride)
}

/// Blockwise "fancy" h2v1 upsampling of a whole chroma row (Algorithm 1 on
/// each aligned 8-sample segment), dispatched on `level`. Bit-identical to
/// [`upsample_row_h2v1_blockwise`].
///
/// `input.len()` must be a multiple of 8 (chroma planes are padded to whole
/// blocks) and `output.len() == 2 * input.len()`.
#[inline]
pub fn upsample_row_h2v1(level: SimdLevel, input: &[u8], output: &mut [u8]) {
    // Real (release-mode) checks: the vector paths below drive raw-pointer
    // loads/stores off these lengths, so a mismatch must panic here rather
    // than read out of bounds.
    assert_eq!(output.len(), input.len() * 2);
    assert!(input.len().is_multiple_of(8));
    match level.clamp_to_host() {
        SimdLevel::Scalar => upsample_row_h2v1_blockwise(input, output),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe { x86::upsample_row_h2v1_sse2(input, output) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::upsample_row_h2v1_avx2(input, output) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => upsample_row_h2v1_blockwise(input, output),
    }
}

/// Vertical triangular blend of two chroma rows (the 4:2:0 first pass):
/// `out[i] = (3 * near[i] + far[i] + 2) / 4`, dispatched on `level`.
/// Bit-identical to a scalar [`upsample_v2_pair`] loop.
#[inline]
pub fn blend_v2_row(level: SimdLevel, near: &[u8], far: &[u8], out: &mut [u8]) {
    // Real checks — the vector paths use raw-pointer accesses (see
    // `upsample_row_h2v1`).
    assert_eq!(near.len(), far.len());
    assert_eq!(near.len(), out.len());
    match level.clamp_to_host() {
        SimdLevel::Scalar => blend_v2_row_scalar(near, far, out),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe { x86::blend_v2_row_sse2(near, far, out) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::blend_v2_row_avx2(near, far, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => blend_v2_row_scalar(near, far, out),
    }
}

fn blend_v2_row_scalar(near: &[u8], far: &[u8], out: &mut [u8]) {
    for ((t, &n), &f) in out.iter_mut().zip(near.iter()).zip(far.iter()) {
        *t = upsample_v2_pair(n, f);
    }
}

/// YCbCr→RGB for one pixel row into interleaved RGB bytes, dispatched on
/// `level`. `out.len()` is `3 * width`; `y`/`cb`/`cr` must hold at least
/// `width` samples (they are full plane rows, so usually hold more — the
/// kernels never read past `width`). Bit-identical to
/// [`crate::color::ycc_to_rgb`] / [`crate::color::ycc_to_rgb_tab`].
#[inline]
pub fn convert_row(
    level: SimdLevel,
    tab: &YccTables,
    y: &[u8],
    cb: &[u8],
    cr: &[u8],
    out: &mut [u8],
) {
    let w = out.len() / 3;
    // Real checks — the vector paths use raw-pointer accesses (see
    // `upsample_row_h2v1`).
    assert!(y.len() >= w && cb.len() >= w && cr.len() >= w);
    match level.clamp_to_host() {
        SimdLevel::Scalar => convert_row_scalar(tab, y, cb, cr, out),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => {
            let done = unsafe { x86::convert_row_sse2(y, cb, cr, out) };
            convert_row_scalar(
                tab,
                &y[done..],
                &cb[done..],
                &cr[done..],
                &mut out[done * 3..],
            );
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            let done = unsafe { x86::convert_row_avx2(y, cb, cr, out) };
            convert_row_scalar(
                tab,
                &y[done..],
                &cb[done..],
                &cr[done..],
                &mut out[done * 3..],
            );
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => convert_row_scalar(tab, y, cb, cr, out),
    }
}

/// Table-driven scalar conversion (the portable fallback and the tail
/// handler for the vector kernels).
fn convert_row_scalar(tab: &YccTables, y: &[u8], cb: &[u8], cr: &[u8], out: &mut [u8]) {
    let w = out.len() / 3;
    for (((&yv, &cbv), &crv), px) in y[..w]
        .iter()
        .zip(cb[..w].iter())
        .zip(cr[..w].iter())
        .zip(out.chunks_exact_mut(3))
    {
        let rgb = crate::color::ycc_to_rgb_tab(tab, yv, cbv, crv);
        px.copy_from_slice(&rgb);
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The vector implementations. All arithmetic mirrors the scalar code
    //! exactly: u16 lanes for the `(3a + b + k) >> 2` triangular filters
    //! (inputs ≤ 255, so `3a + b + 2 ≤ 1022` never overflows), i32 lanes
    //! for the `SCALE_BITS` fixed-point color transform, and saturating
    //! packs for the `clamp(0, 255)`.

    use super::{FIX_0_34414, FIX_0_71414, FIX_1_40200, FIX_1_77200, ONE_HALF};
    use core::arch::x86_64::*;

    /// One Algorithm-1 segment on u16x8 lanes: `even = (3v + left + 1) >> 2`,
    /// `odd = (3v + right + 2) >> 2` with edge replication folded into the
    /// shifted vectors — `(4v + 1) >> 2 == v` and `(4v + 2) >> 2 == v`, so
    /// the replicated end lanes reproduce `Out[0] = In[0]` / `Out[15] = In[7]`
    /// exactly.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn upsample_row_h2v1_sse2(input: &[u8], output: &mut [u8]) {
        let zero = _mm_setzero_si128();
        let one = _mm_set1_epi16(1);
        let two = _mm_set1_epi16(2);
        let three = _mm_set1_epi16(3);
        let lane0 = _mm_cvtsi32_si128(0xFFFF);
        let lane7 = _mm_slli_si128(lane0, 14);
        for (seg_in, seg_out) in input.chunks_exact(8).zip(output.chunks_exact_mut(16)) {
            let v8 = unsafe { _mm_loadl_epi64(seg_in.as_ptr() as *const __m128i) };
            let v = _mm_unpacklo_epi8(v8, zero);
            let left = _mm_or_si128(_mm_slli_si128(v, 2), _mm_and_si128(v, lane0));
            let right = _mm_or_si128(_mm_srli_si128(v, 2), _mm_and_si128(v, lane7));
            let v3 = _mm_mullo_epi16(v, three);
            let even = _mm_srli_epi16(_mm_add_epi16(_mm_add_epi16(v3, left), one), 2);
            let odd = _mm_srli_epi16(_mm_add_epi16(_mm_add_epi16(v3, right), two), 2);
            let il_lo = _mm_unpacklo_epi16(even, odd);
            let il_hi = _mm_unpackhi_epi16(even, odd);
            let bytes = _mm_packus_epi16(il_lo, il_hi);
            unsafe { _mm_storeu_si128(seg_out.as_mut_ptr() as *mut __m128i, bytes) };
        }
    }

    /// Two Algorithm-1 segments per iteration: each 128-bit lane holds one
    /// segment's u16x8, and the per-lane byte shifts / unpacks / packs of
    /// AVX2 are exactly the per-segment operations the filter needs.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn upsample_row_h2v1_avx2(input: &[u8], output: &mut [u8]) {
        let one = _mm256_set1_epi16(1);
        let two = _mm256_set1_epi16(2);
        let three = _mm256_set1_epi16(3);
        #[rustfmt::skip]
        let lane0 = _mm256_set_epi16(
            0, 0, 0, 0, 0, 0, 0, -1,
            0, 0, 0, 0, 0, 0, 0, -1,
        );
        let lane7 = _mm256_slli_si256(lane0, 14);
        let pairs = input.chunks_exact(16);
        let tail_in = pairs.remainder();
        for (seg_in, seg_out) in pairs.zip(output.chunks_exact_mut(32)) {
            let v16 = unsafe { _mm_loadu_si128(seg_in.as_ptr() as *const __m128i) };
            let v = _mm256_cvtepu8_epi16(v16);
            let left = _mm256_or_si256(_mm256_slli_si256(v, 2), _mm256_and_si256(v, lane0));
            let right = _mm256_or_si256(_mm256_srli_si256(v, 2), _mm256_and_si256(v, lane7));
            let v3 = _mm256_mullo_epi16(v, three);
            let even = _mm256_srli_epi16(_mm256_add_epi16(_mm256_add_epi16(v3, left), one), 2);
            let odd = _mm256_srli_epi16(_mm256_add_epi16(_mm256_add_epi16(v3, right), two), 2);
            let il_lo = _mm256_unpacklo_epi16(even, odd);
            let il_hi = _mm256_unpackhi_epi16(even, odd);
            let bytes = _mm256_packus_epi16(il_lo, il_hi);
            unsafe { _mm256_storeu_si256(seg_out.as_mut_ptr() as *mut __m256i, bytes) };
        }
        if !tail_in.is_empty() {
            let done = input.len() - tail_in.len();
            unsafe { upsample_row_h2v1_sse2(tail_in, &mut output[done * 2..]) };
        }
    }

    /// `(3 * near + far + 2) >> 2` on u16 lanes, 16 bytes per iteration.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn blend_v2_row_sse2(near: &[u8], far: &[u8], out: &mut [u8]) {
        let zero = _mm_setzero_si128();
        let two = _mm_set1_epi16(2);
        let three = _mm_set1_epi16(3);
        let n = near.len();
        let mut i = 0;
        while i + 16 <= n {
            let nv = unsafe { _mm_loadu_si128(near.as_ptr().add(i) as *const __m128i) };
            let fv = unsafe { _mm_loadu_si128(far.as_ptr().add(i) as *const __m128i) };
            let n_lo = _mm_unpacklo_epi8(nv, zero);
            let n_hi = _mm_unpackhi_epi8(nv, zero);
            let f_lo = _mm_unpacklo_epi8(fv, zero);
            let f_hi = _mm_unpackhi_epi8(fv, zero);
            let t_lo = _mm_srli_epi16(
                _mm_add_epi16(_mm_add_epi16(_mm_mullo_epi16(n_lo, three), f_lo), two),
                2,
            );
            let t_hi = _mm_srli_epi16(
                _mm_add_epi16(_mm_add_epi16(_mm_mullo_epi16(n_hi, three), f_hi), two),
                2,
            );
            let bytes = _mm_packus_epi16(t_lo, t_hi);
            unsafe { _mm_storeu_si128(out.as_mut_ptr().add(i) as *mut __m128i, bytes) };
            i += 16;
        }
        super::blend_v2_row_scalar(&near[i..], &far[i..], &mut out[i..]);
    }

    /// `(3 * near + far + 2) >> 2` on u16 lanes, 32 bytes per iteration.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn blend_v2_row_avx2(near: &[u8], far: &[u8], out: &mut [u8]) {
        let zero = _mm256_setzero_si256();
        let two = _mm256_set1_epi16(2);
        let three = _mm256_set1_epi16(3);
        let n = near.len();
        let mut i = 0;
        while i + 32 <= n {
            let nv = unsafe { _mm256_loadu_si256(near.as_ptr().add(i) as *const __m256i) };
            let fv = unsafe { _mm256_loadu_si256(far.as_ptr().add(i) as *const __m256i) };
            let n_lo = _mm256_unpacklo_epi8(nv, zero);
            let n_hi = _mm256_unpackhi_epi8(nv, zero);
            let f_lo = _mm256_unpacklo_epi8(fv, zero);
            let f_hi = _mm256_unpackhi_epi8(fv, zero);
            let t_lo = _mm256_srli_epi16(
                _mm256_add_epi16(_mm256_add_epi16(_mm256_mullo_epi16(n_lo, three), f_lo), two),
                2,
            );
            let t_hi = _mm256_srli_epi16(
                _mm256_add_epi16(_mm256_add_epi16(_mm256_mullo_epi16(n_hi, three), f_hi), two),
                2,
            );
            // unpack/pack are per-lane inverses, so byte order is preserved.
            let bytes = _mm256_packus_epi16(t_lo, t_hi);
            unsafe { _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, bytes) };
            i += 32;
        }
        unsafe { blend_v2_row_sse2(&near[i..], &far[i..], &mut out[i..]) };
    }

    /// Low 32 bits of a lane-wise 32-bit product (SSE2 has no `mullo_epi32`;
    /// the low half of the product is sign-agnostic, so `mul_epu32` on the
    /// even/odd lanes reassembles it exactly).
    #[target_feature(enable = "sse2")]
    fn mullo_epi32_sse2(a: __m128i, b: __m128i) -> __m128i {
        let even = _mm_mul_epu32(a, b);
        let odd = _mm_mul_epu32(_mm_srli_epi64(a, 32), _mm_srli_epi64(b, 32));
        let even = _mm_shuffle_epi32(even, 0b00_00_10_00);
        let odd = _mm_shuffle_epi32(odd, 0b00_00_10_00);
        _mm_unpacklo_epi32(even, odd)
    }

    /// Algorithm 2 on i32x4 lanes, 8 pixels per iteration. Returns how many
    /// pixels were converted (the caller runs the scalar tail).
    ///
    /// Lane math is the inline fixed-point path of `color::ycc_to_rgb`
    /// verbatim; `packs_epi32` → `packus_epi16` realizes the final
    /// `clamp(0, 255)` exactly (intermediate values fit i16).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn convert_row_sse2(y: &[u8], cb: &[u8], cr: &[u8], out: &mut [u8]) -> usize {
        let w = out.len() / 3;
        let zero = _mm_setzero_si128();
        let c128 = _mm_set1_epi32(128);
        let half = _mm_set1_epi32(ONE_HALF);
        let f140 = _mm_set1_epi32(FIX_1_40200);
        let f177 = _mm_set1_epi32(FIX_1_77200);
        let f034 = _mm_set1_epi32(FIX_0_34414);
        let f071 = _mm_set1_epi32(FIX_0_71414);

        let widen = |v8: __m128i| {
            let v16 = _mm_unpacklo_epi8(v8, zero);
            (_mm_unpacklo_epi16(v16, zero), _mm_unpackhi_epi16(v16, zero))
        };
        let mut x = 0;
        let mut r8 = [0u8; 16];
        let mut g8 = [0u8; 16];
        let mut b8 = [0u8; 16];
        while x + 8 <= w {
            let yv = unsafe { _mm_loadl_epi64(y.as_ptr().add(x) as *const __m128i) };
            let cbv = unsafe { _mm_loadl_epi64(cb.as_ptr().add(x) as *const __m128i) };
            let crv = unsafe { _mm_loadl_epi64(cr.as_ptr().add(x) as *const __m128i) };
            let (y_lo, y_hi) = widen(yv);
            let (cb_lo, cb_hi) = widen(cbv);
            let (cr_lo, cr_hi) = widen(crv);

            let mut r16 = zero;
            let mut g16 = zero;
            let mut b16 = zero;
            for (hi, (yv, (xb, xr))) in [
                (
                    false,
                    (
                        y_lo,
                        (_mm_sub_epi32(cb_lo, c128), _mm_sub_epi32(cr_lo, c128)),
                    ),
                ),
                (
                    true,
                    (
                        y_hi,
                        (_mm_sub_epi32(cb_hi, c128), _mm_sub_epi32(cr_hi, c128)),
                    ),
                ),
            ] {
                let r = _mm_add_epi32(
                    yv,
                    _mm_srai_epi32(_mm_add_epi32(mullo_epi32_sse2(xr, f140), half), 16),
                );
                let b = _mm_add_epi32(
                    yv,
                    _mm_srai_epi32(_mm_add_epi32(mullo_epi32_sse2(xb, f177), half), 16),
                );
                let g = _mm_add_epi32(
                    yv,
                    _mm_srai_epi32(
                        _mm_sub_epi32(
                            _mm_sub_epi32(half, mullo_epi32_sse2(xb, f034)),
                            mullo_epi32_sse2(xr, f071),
                        ),
                        16,
                    ),
                );
                if hi {
                    r16 = _mm_packs_epi32(r16, r);
                    g16 = _mm_packs_epi32(g16, g);
                    b16 = _mm_packs_epi32(b16, b);
                } else {
                    r16 = r;
                    g16 = g;
                    b16 = b;
                }
            }
            unsafe {
                _mm_storeu_si128(r8.as_mut_ptr() as *mut __m128i, _mm_packus_epi16(r16, r16));
                _mm_storeu_si128(g8.as_mut_ptr() as *mut __m128i, _mm_packus_epi16(g16, g16));
                _mm_storeu_si128(b8.as_mut_ptr() as *mut __m128i, _mm_packus_epi16(b16, b16));
            }
            interleave_rgb(&r8[..8], &g8[..8], &b8[..8], &mut out[x * 3..x * 3 + 24]);
            x += 8;
        }
        x
    }

    /// Algorithm 2 on i32x8 lanes, 16 pixels per iteration. Returns how
    /// many pixels were converted.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn convert_row_avx2(y: &[u8], cb: &[u8], cr: &[u8], out: &mut [u8]) -> usize {
        let w = out.len() / 3;
        let c128 = _mm256_set1_epi32(128);
        let half = _mm256_set1_epi32(ONE_HALF);
        let f140 = _mm256_set1_epi32(FIX_1_40200);
        let f177 = _mm256_set1_epi32(FIX_1_77200);
        let f034 = _mm256_set1_epi32(FIX_0_34414);
        let f071 = _mm256_set1_epi32(FIX_0_71414);

        let mut x = 0;
        let mut r8 = [0u8; 16];
        let mut g8 = [0u8; 16];
        let mut b8 = [0u8; 16];
        while x + 16 <= w {
            let load8 = |p: &[u8], off: usize| unsafe {
                _mm256_cvtepu8_epi32(_mm_loadl_epi64(p.as_ptr().add(off) as *const __m128i))
            };
            let mut chans = [_mm256_setzero_si256(); 6]; // r_lo, r_hi, g_lo, g_hi, b_lo, b_hi
            for half_idx in 0..2usize {
                let off = x + half_idx * 8;
                let yv = load8(y, off);
                let xb = _mm256_sub_epi32(load8(cb, off), c128);
                let xr = _mm256_sub_epi32(load8(cr, off), c128);
                let r = _mm256_add_epi32(
                    yv,
                    _mm256_srai_epi32(_mm256_add_epi32(_mm256_mullo_epi32(xr, f140), half), 16),
                );
                let b = _mm256_add_epi32(
                    yv,
                    _mm256_srai_epi32(_mm256_add_epi32(_mm256_mullo_epi32(xb, f177), half), 16),
                );
                let g = _mm256_add_epi32(
                    yv,
                    _mm256_srai_epi32(
                        _mm256_sub_epi32(
                            _mm256_sub_epi32(half, _mm256_mullo_epi32(xb, f034)),
                            _mm256_mullo_epi32(xr, f071),
                        ),
                        16,
                    ),
                );
                chans[half_idx] = r;
                chans[2 + half_idx] = g;
                chans[4 + half_idx] = b;
            }
            // packs within 128-bit lanes scrambles [lo0 hi0 lo1 hi1]; the
            // permute restores pixel order before the final u8 pack.
            let pack16 = |lo: __m256i, hi: __m256i| {
                let p = _mm256_permute4x64_epi64(_mm256_packs_epi32(lo, hi), 0b11_01_10_00);
                _mm_packus_epi16(_mm256_castsi256_si128(p), _mm256_extracti128_si256(p, 1))
            };
            unsafe {
                _mm_storeu_si128(r8.as_mut_ptr() as *mut __m128i, pack16(chans[0], chans[1]));
                _mm_storeu_si128(g8.as_mut_ptr() as *mut __m128i, pack16(chans[2], chans[3]));
                _mm_storeu_si128(b8.as_mut_ptr() as *mut __m128i, pack16(chans[4], chans[5]));
            }
            interleave_rgb(&r8, &g8, &b8, &mut out[x * 3..x * 3 + 48]);
            x += 16;
        }
        x
    }

    /// Interleave planar channel bytes into RGB triples.
    #[inline(always)]
    fn interleave_rgb(r: &[u8], g: &[u8], b: &[u8], out: &mut [u8]) {
        for (((px, &rv), &gv), &bv) in out
            .chunks_exact_mut(3)
            .zip(r.iter())
            .zip(g.iter())
            .zip(b.iter())
        {
            px[0] = rv;
            px[1] = gv;
            px[2] = bv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::ycc_to_rgb;

    fn pseudo_bytes(n: usize, seed: u32) -> Vec<u8> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                (s >> 24) as u8
            })
            .collect()
    }

    #[test]
    fn detection_is_cached_and_available() {
        let a = SimdLevel::detect();
        let b = SimdLevel::detect();
        assert_eq!(a, b);
        assert!(a.is_available());
        assert!(SimdLevel::all_available().contains(&SimdLevel::Scalar));
    }

    #[test]
    fn upsample_levels_match_scalar_oracle() {
        for len in [8usize, 16, 24, 64, 136] {
            let input = pseudo_bytes(len, 7 + len as u32);
            let mut want = vec![0u8; len * 2];
            upsample_row_h2v1_blockwise(&input, &mut want);
            for level in SimdLevel::all_available() {
                let mut got = vec![0u8; len * 2];
                upsample_row_h2v1(level, &input, &mut got);
                assert_eq!(got, want, "{} len {len}", level.name());
            }
        }
    }

    #[test]
    fn blend_levels_match_scalar_oracle() {
        for len in [1usize, 8, 15, 16, 17, 31, 32, 33, 120] {
            let near = pseudo_bytes(len, 3);
            let far = pseudo_bytes(len, 11);
            let mut want = vec![0u8; len];
            blend_v2_row_scalar(&near, &far, &mut want);
            for level in SimdLevel::all_available() {
                let mut got = vec![0u8; len];
                blend_v2_row(level, &near, &far, &mut got);
                assert_eq!(got, want, "{} len {len}", level.name());
            }
        }
    }

    #[test]
    fn convert_levels_match_inline_oracle() {
        let tab = YccTables::new();
        for w in [1usize, 7, 8, 9, 15, 16, 17, 40, 129] {
            let y = pseudo_bytes(w, 5);
            let cb = pseudo_bytes(w, 6);
            let cr = pseudo_bytes(w, 9);
            let mut want = vec![0u8; w * 3];
            for x in 0..w {
                want[x * 3..x * 3 + 3].copy_from_slice(&ycc_to_rgb(y[x], cb[x], cr[x]));
            }
            for level in SimdLevel::all_available() {
                let mut got = vec![0u8; w * 3];
                convert_row(level, &tab, &y, &cb, &cr, &mut got);
                assert_eq!(got, want, "{} width {w}", level.name());
            }
        }
    }

    #[test]
    fn convert_handles_extreme_chroma() {
        // Saturation corners: both clamps and the exact neutral axis.
        let tab = YccTables::new();
        let mut y = Vec::new();
        let mut cb = Vec::new();
        let mut cr = Vec::new();
        for yv in [0u8, 128, 255] {
            for c in [0u8, 1, 127, 128, 129, 254, 255] {
                y.push(yv);
                cb.push(c);
                cr.push(255 - c);
            }
        }
        let w = y.len();
        let mut want = vec![0u8; w * 3];
        for x in 0..w {
            want[x * 3..x * 3 + 3].copy_from_slice(&ycc_to_rgb(y[x], cb[x], cr[x]));
        }
        for level in SimdLevel::all_available() {
            let mut got = vec![0u8; w * 3];
            convert_row(level, &tab, &y, &cb, &cr, &mut got);
            assert_eq!(got, want, "{}", level.name());
        }
    }
}
