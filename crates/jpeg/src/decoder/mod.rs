//! Whole-image decoding and the region-addressable stage functions used by
//! the heterogeneous scheduler.
//!
//! Mirroring the paper's re-engineered libjpeg-turbo (§3), decoding is split
//! into:
//!
//! 1. a strictly sequential **entropy phase** ([`crate::entropy`]) that fills
//!    a whole-image [`CoefBuffer`], and
//! 2. a data-parallel **parallel phase** (dequantization, IDCT, upsampling,
//!    color conversion) that can run over any horizontal band of MCU rows,
//!    implemented in [`stages`] (scalar) and [`simd`] (optimized,
//!    bit-identical) variants.
//!
//! [`decode`] and [`decode_simd`] are the two single-device reference
//! decoders the paper calls "sequential" and "SIMD" mode. The SIMD path
//! runs the row-tile pipeline on runtime-dispatched vector kernels
//! ([`kernels`]); both paths produce identical bytes.

pub mod kernels;
pub mod simd;
pub mod stages;

use crate::coef::CoefBuffer;
use crate::color::YccTables;
use crate::entropy::EntropyDecoder;
use crate::error::{Error, Result};
use crate::geometry::Geometry;
use crate::markers::{parse_jpeg, ParsedJpeg};
use crate::metrics::EntropyMetrics;
use crate::quant::QuantTable;
use crate::types::RgbImage;

/// A parsed image plus everything resolved for decoding: geometry,
/// per-component quantization tables and color LUTs.
pub struct Prepared<'a> {
    /// Parsed marker structure.
    pub parsed: ParsedJpeg<'a>,
    /// Derived coordinate algebra.
    pub geom: Geometry,
    /// Quantization table per component (resolved from DQT slots).
    pub quant: [QuantTable; 3],
    /// Color conversion lookup tables.
    pub ycc: YccTables,
}

impl<'a> Prepared<'a> {
    /// Parse headers and resolve tables.
    pub fn new(data: &'a [u8]) -> Result<Self> {
        let parsed = parse_jpeg(data)?;
        let geom = Geometry::new(
            parsed.frame.width,
            parsed.frame.height,
            parsed.frame.subsampling,
        )?;
        let resolve = |ci: usize| -> Result<QuantTable> {
            let slot = parsed
                .frame
                .components
                .get(ci)
                .map(|c| c.quant_idx)
                .unwrap_or(0);
            parsed
                .quant
                .get(slot)
                .and_then(|q| q.clone())
                .ok_or(Error::Malformed("missing quantization table"))
        };
        let quant = [
            resolve(0)?,
            resolve(1.min(parsed.frame.components.len() - 1))?,
            resolve(2.min(parsed.frame.components.len() - 1))?,
        ];
        Ok(Prepared {
            parsed,
            geom,
            quant,
            ycc: YccTables::new(),
        })
    }

    /// Resolve geometry and tables for a parsed *progressive* stream. The
    /// synthesized `parsed` carries an empty baseline scan: the progressive
    /// subsystem ([`crate::progressive`]) decodes the real scans into the
    /// coefficient buffer, and only the resolved geometry, quantization
    /// tables and density estimate are consumed downstream — calling
    /// [`Self::entropy_decoder`] on this value would decode nothing.
    pub fn from_progressive(prog: &crate::progressive::ProgressiveParsed<'a>) -> Result<Self> {
        let frame = prog.frame.clone();
        let geom = Geometry::new(frame.width, frame.height, frame.subsampling)?;
        let resolve = |ci: usize| -> Result<QuantTable> {
            let slot = frame.components.get(ci).map(|c| c.quant_idx).unwrap_or(0);
            prog.quant
                .get(slot)
                .and_then(|q| q.clone())
                .ok_or(Error::Malformed("missing quantization table"))
        };
        let n = frame.components.len();
        let quant = [resolve(0)?, resolve(1.min(n - 1))?, resolve(2.min(n - 1))?];
        let parsed = ParsedJpeg {
            frame,
            quant: prog.quant.clone(),
            dc_specs: [None, None, None, None],
            ac_specs: [None, None, None, None],
            scan_data: &[],
            file_size: prog.file_size,
        };
        Ok(Prepared {
            parsed,
            geom,
            quant,
            ycc: YccTables::new(),
        })
    }

    /// Create the sequential entropy decoder for this image.
    pub fn entropy_decoder(&self) -> Result<EntropyDecoder<'a>> {
        EntropyDecoder::new(&self.parsed, &self.geom)
    }

    /// Entropy-decode the whole image into a fresh coefficient buffer.
    pub fn entropy_decode_all(&self) -> Result<(CoefBuffer, EntropyMetrics)> {
        let mut coef = CoefBuffer::new(&self.geom);
        let mut dec = self.entropy_decoder()?;
        let metrics = dec.decode_remaining(&mut coef)?;
        Ok((coef, metrics))
    }
}

/// Decode a JPEG byte stream with the scalar ("sequential mode") pipeline.
pub fn decode(data: &[u8]) -> Result<RgbImage> {
    let prep = Prepared::new(data)?;
    let (coef, _) = prep.entropy_decode_all()?;
    let mut img = RgbImage::new(prep.geom.width, prep.geom.height);
    stages::decode_region_rgb(&prep, &coef, 0, prep.geom.mcus_y, &mut img.data)?;
    Ok(img)
}

/// Decode with the optimized ("SIMD mode") parallel phase. Output is
/// bit-identical to [`decode`]; only the host-side speed differs.
pub fn decode_simd(data: &[u8]) -> Result<RgbImage> {
    let prep = Prepared::new(data)?;
    let (coef, _) = prep.entropy_decode_all()?;
    let mut img = RgbImage::new(prep.geom.width, prep.geom.height);
    simd::decode_region_rgb_simd(&prep, &coef, 0, prep.geom.mcus_y, &mut img.data)?;
    Ok(img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{encode_rgb, EncodeParams};
    use crate::types::Subsampling;

    fn checker_rgb(w: usize, h: usize) -> Vec<u8> {
        let mut rgb = Vec::with_capacity(w * h * 3);
        for y in 0..h {
            for x in 0..w {
                let v = if (x / 4 + y / 4) % 2 == 0 { 220 } else { 30 };
                rgb.extend_from_slice(&[v, 255 - v, v / 2]);
            }
        }
        rgb
    }

    #[test]
    fn decode_roundtrip_psnr_each_subsampling() {
        // The checkerboard flips chroma at exactly the subsampled Nyquist
        // rate, so 4:2:2 / 4:2:0 legitimately lose chroma energy; thresholds
        // reflect that.
        let (w, h) = (64usize, 48usize);
        let rgb = checker_rgb(w, h);
        for (sub, min_psnr) in [
            (Subsampling::S444, 24.0),
            (Subsampling::S422, 17.0),
            (Subsampling::S420, 15.0),
        ] {
            let jpeg = encode_rgb(
                &rgb,
                w as u32,
                h as u32,
                &EncodeParams {
                    quality: 92,
                    subsampling: sub,
                    restart_interval: 0,
                },
            )
            .unwrap();
            let img = decode(&jpeg).unwrap();
            assert_eq!((img.width, img.height), (w, h));
            let orig = RgbImage {
                width: w,
                height: h,
                data: rgb.clone(),
            };
            let psnr = img.psnr(&orig);
            assert!(
                psnr > min_psnr,
                "{} PSNR too low: {psnr:.1} dB",
                sub.notation()
            );
        }
    }

    #[test]
    fn smooth_image_survives_better() {
        // Smooth gradients must come back nearly unharmed under every
        // subsampling — this is the test that catches chroma misalignment.
        let (w, h) = (64usize, 64usize);
        let mut rgb = Vec::with_capacity(w * h * 3);
        for y in 0..h {
            for x in 0..w {
                rgb.extend_from_slice(&[(x * 4) as u8, (y * 4) as u8, 128]);
            }
        }
        let orig = RgbImage {
            width: w,
            height: h,
            data: rgb.clone(),
        };
        for sub in [Subsampling::S444, Subsampling::S422, Subsampling::S420] {
            let jpeg = encode_rgb(
                &rgb,
                w as u32,
                h as u32,
                &EncodeParams {
                    quality: 90,
                    subsampling: sub,
                    restart_interval: 0,
                },
            )
            .unwrap();
            let img = decode(&jpeg).unwrap();
            let psnr = img.psnr(&orig);
            assert!(
                psnr > 32.0,
                "{} smooth PSNR too low: {psnr:.1} dB",
                sub.notation()
            );
        }
    }

    #[test]
    fn simd_and_scalar_modes_are_bit_identical() {
        let (w, h) = (52usize, 37usize); // non-MCU-aligned on purpose
        let rgb = checker_rgb(w, h);
        for sub in [Subsampling::S444, Subsampling::S422, Subsampling::S420] {
            let jpeg = encode_rgb(
                &rgb,
                w as u32,
                h as u32,
                &EncodeParams {
                    quality: 77,
                    subsampling: sub,
                    restart_interval: 3,
                },
            )
            .unwrap();
            let a = decode(&jpeg).unwrap();
            let b = decode_simd(&jpeg).unwrap();
            assert_eq!(a.data, b.data, "mismatch for {}", sub.notation());
        }
    }

    #[test]
    fn regions_compose_to_whole_image() {
        let (w, h) = (48usize, 64usize);
        let rgb = checker_rgb(w, h);
        let jpeg = encode_rgb(
            &rgb,
            w as u32,
            h as u32,
            &EncodeParams {
                quality: 80,
                subsampling: Subsampling::S422,
                restart_interval: 0,
            },
        )
        .unwrap();
        let prep = Prepared::new(&jpeg).unwrap();
        let (coef, _) = prep.entropy_decode_all().unwrap();

        let whole = decode(&jpeg).unwrap();

        // Decode in three bands and stitch.
        let mut stitched = vec![0u8; w * h * 3];
        let bands = [(0usize, 3usize), (3, 5), (5, prep.geom.mcus_y)];
        for &(a, b) in &bands {
            let (r0, r1) = prep.geom.mcu_rows_to_pixel_rows(a, b);
            let out = &mut stitched[r0 * w * 3..r1 * w * 3];
            stages::decode_region_rgb(&prep, &coef, a, b, out).unwrap();
        }
        assert_eq!(whole.data, stitched);
    }
}
