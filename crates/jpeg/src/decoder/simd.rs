//! Optimized ("SIMD-mode") parallel phase: the fused row-tile pipeline on
//! runtime-dispatched vector kernels.
//!
//! Libjpeg-turbo accelerates everything but Huffman decoding with
//! hand-written SIMD (paper §1: about 2× the sequential decoder overall).
//! This module is our equivalent, structured as a **row-tile pipeline**:
//! dequantize + IDCT one MCU row into MCU-row-local scratch planes (the
//! EOB-dispatched fused pass, since PR 5 itself a dispatched SSE2/AVX2
//! kernel — [`crate::dct::simd_islow`] — with [`crate::dct::sparse`] as
//! the scalar fallback), then upsample and color-convert each pixel row of
//! that tile while it is still cache-hot — the CPU analogue of the merged
//! GPU kernel of §4.4, with no full-image intermediate plane between the
//! stages. The upsample and color kernels are real SSE2/AVX2 vector code
//! ([`super::kernels`]) behind a [`SimdLevel`] chosen once per decoder
//! session, with the scalar stage code as the portable fallback. Output bytes are **identical** to the
//! scalar path at every level; only host-side speed differs. The platform
//! cost model charges this path with the calibrated per-stage SIMD costs
//! (see `hetjpeg-core`).
//!
//! The scratch is public ([`SimdScratch`]) so callers that decode many
//! bands in a loop can hold one workspace across calls via
//! [`decode_region_rgb_simd_with`] and keep their steady state
//! allocation-free; the single-band-per-decode callers (the schedulers,
//! the threaded executor's CPU band) use the allocating wrapper, where
//! reuse has nothing to amortize. The planar-YCbCr output path
//! ([`decode_region_ycc_simd_with`]) shares the same tiling and scratch.

use crate::coef::CoefBuffer;
use crate::decoder::kernels::{self, SimdLevel};
use crate::decoder::Prepared;
use crate::error::{Error, Result};
use crate::metrics::ParallelWork;
use crate::types::{Subsampling, YccImage};

/// MCU-row-local scratch buffers plus the session's one-time kernel
/// dispatch choice, reused across bands and decodes.
pub struct SimdScratch {
    /// Vector instruction set the row kernels run on; chosen at
    /// construction (or via [`Self::set_level`]), not per row.
    level: SimdLevel,
    /// Luma samples: `luma_width x mcu_h`.
    y: Vec<u8>,
    /// Subsampled chroma: `chroma_width x (8 * v_chroma)` each.
    cb: Vec<u8>,
    cr: Vec<u8>,
    /// One full-resolution upsampled chroma row each.
    cb_row: Vec<u8>,
    cr_row: Vec<u8>,
    /// Vertically upsampled (still horizontally subsampled) row for 4:2:0.
    vtmp: Vec<u8>,
}

impl SimdScratch {
    /// Allocate scratch sized for one MCU row of `prep`'s geometry, with
    /// the host's best detected kernel level.
    pub fn new(prep: &Prepared<'_>) -> Self {
        Self::with_level(prep, SimdLevel::detect())
    }

    /// Allocate scratch with an explicit kernel level (tests, forced-scalar
    /// sessions). An unavailable level is clamped to the host's best
    /// ([`SimdLevel::clamp_to_host`]), never executed.
    pub fn with_level(prep: &Prepared<'_>, level: SimdLevel) -> Self {
        let lw = prep.geom.comps[0].plane_width();
        let cw = prep.geom.comps[1].plane_width();
        let mcu_h = prep.geom.mcu_h;
        SimdScratch {
            level: level.clamp_to_host(),
            y: vec![0; lw * mcu_h],
            cb: vec![0; cw * 8],
            cr: vec![0; cw * 8],
            cb_row: vec![0; lw],
            cr_row: vec![0; lw],
            vtmp: vec![0; cw],
        }
    }

    /// The kernel level this scratch dispatches to.
    pub fn level(&self) -> SimdLevel {
        self.level
    }

    /// Override the kernel level (the session decoder's force-scalar hook);
    /// clamped to what the host can run.
    pub fn set_level(&mut self, level: SimdLevel) {
        self.level = level.clamp_to_host();
    }

    /// Re-shape the scratch for another image, reusing the allocations —
    /// the session decoder's pool hook. The dispatch choice is retained.
    pub fn reset_for(&mut self, prep: &Prepared<'_>) {
        let lw = prep.geom.comps[0].plane_width();
        let cw = prep.geom.comps[1].plane_width();
        let mcu_h = prep.geom.mcu_h;
        for (buf, len) in [
            (&mut self.y, lw * mcu_h),
            (&mut self.cb, cw * 8),
            (&mut self.cr, cw * 8),
            (&mut self.cb_row, lw),
            (&mut self.cr_row, lw),
            (&mut self.vtmp, cw),
        ] {
            buf.clear();
            buf.resize(len, 0);
        }
    }

    /// Upsample the chroma of pixel row `local` (tile-local) into the
    /// full-resolution row buffers, dispatched on the scratch's level.
    fn upsample_local_row(&mut self, sub: Subsampling, cw: usize, local: usize) {
        match sub {
            Subsampling::S444 => {
                self.cb_row
                    .copy_from_slice(&self.cb[local * cw..local * cw + cw]);
                self.cr_row
                    .copy_from_slice(&self.cr[local * cw..local * cw + cw]);
            }
            Subsampling::S422 => {
                kernels::upsample_row_h2v1(
                    self.level,
                    &self.cb[local * cw..local * cw + cw],
                    &mut self.cb_row,
                );
                kernels::upsample_row_h2v1(
                    self.level,
                    &self.cr[local * cw..local * cw + cw],
                    &mut self.cr_row,
                );
            }
            Subsampling::S420 => {
                // Blockwise vertical neighbour: stay inside the tile's
                // 8-row chroma block (edge rows blend with themselves,
                // i.e. replicate — same arithmetic as the scalar stage).
                let cy = local / 2;
                let neighbour = if local.is_multiple_of(2) {
                    cy.saturating_sub(1)
                } else {
                    (cy + 1).min(7)
                };
                for c in 0..2 {
                    let (plane, dst) = if c == 0 {
                        (&self.cb, &mut self.cb_row)
                    } else {
                        (&self.cr, &mut self.cr_row)
                    };
                    let near = &plane[cy * cw..cy * cw + cw];
                    let far = &plane[neighbour * cw..neighbour * cw + cw];
                    kernels::blend_v2_row(self.level, near, far, &mut self.vtmp);
                    kernels::upsample_row_h2v1(self.level, &self.vtmp, dst);
                }
            }
        }
    }
}

/// The optimized parallel phase over MCU rows `[start, end)`, reusing
/// `scratch`; `out` receives the band's interleaved RGB rows (same contract
/// as [`super::stages::decode_region_rgb`]).
pub fn decode_region_rgb_simd_with(
    prep: &Prepared<'_>,
    coef: &CoefBuffer,
    start: usize,
    end: usize,
    out: &mut [u8],
    scratch: &mut SimdScratch,
) -> Result<ParallelWork> {
    let geom = &prep.geom;
    let (r0, r1) = geom.mcu_rows_to_pixel_rows(start, end);
    let w = geom.width;
    if out.len() != (r1 - r0) * w * 3 {
        return Err(Error::BufferSize {
            expected: (r1 - r0) * w * 3,
            got: out.len(),
        });
    }

    let lw = geom.comps[0].plane_width();
    let cw = geom.comps[1].plane_width();
    let ycc = &prep.ycc;
    let level = scratch.level;

    for mcu_row in start..end {
        idct_mcu_row(prep, coef, mcu_row, scratch);

        let (py0, py1) = geom.mcu_rows_to_pixel_rows(mcu_row, mcu_row + 1);
        for y in py0..py1 {
            let local = y - mcu_row * geom.mcu_h;
            scratch.upsample_local_row(geom.subsampling, cw, local);
            let yrow = &scratch.y[local * lw..local * lw + lw];
            let row_out = &mut out[(y - r0) * w * 3..(y - r0 + 1) * w * 3];
            kernels::convert_row(level, ycc, yrow, &scratch.cb_row, &scratch.cr_row, row_out);
        }
    }
    Ok(ParallelWork::for_mcu_rows(geom, start, end))
}

/// The fused pipeline as a *tile stream*: render each MCU row of
/// `[start, end)` into `tile` (resized to that row's exact pixel-byte
/// count) and hand it to `sink` as `(first_pixel_row, pixel_rows, rgb)`
/// while it is still cache-hot — the streaming-response hook. The tile
/// buffer is caller-owned so a serving loop can pool it; its peak size is
/// one MCU row (`width * mcu_h * 3` bytes) regardless of image height.
///
/// `sink` returning `false` aborts the stream after the current tile.
/// Returns the work metrics for the rows actually rendered plus whether
/// the band completed. Tile bytes are identical to the corresponding rows
/// of [`decode_region_rgb_simd_with`] at every dispatch level.
pub fn stream_region_rgb_simd_with(
    prep: &Prepared<'_>,
    coef: &CoefBuffer,
    start: usize,
    end: usize,
    tile: &mut Vec<u8>,
    scratch: &mut SimdScratch,
    sink: &mut dyn FnMut(usize, usize, &[u8]) -> bool,
) -> Result<(ParallelWork, bool)> {
    let geom = &prep.geom;
    let w = geom.width;
    for mcu_row in start..end {
        let (py0, py1) = geom.mcu_rows_to_pixel_rows(mcu_row, mcu_row + 1);
        tile.resize((py1 - py0) * w * 3, 0);
        decode_region_rgb_simd_with(prep, coef, mcu_row, mcu_row + 1, tile, scratch)?;
        if !sink(py0, py1 - py0, tile) {
            return Ok((ParallelWork::for_mcu_rows(geom, start, mcu_row + 1), false));
        }
    }
    Ok((ParallelWork::for_mcu_rows(geom, start, end), true))
}

/// The optimized parallel phase with a freshly allocated scratch. Callers
/// decoding many bands should hold a [`SimdScratch`] and use
/// [`decode_region_rgb_simd_with`].
pub fn decode_region_rgb_simd(
    prep: &Prepared<'_>,
    coef: &CoefBuffer,
    start: usize,
    end: usize,
    out: &mut [u8],
) -> Result<ParallelWork> {
    let mut scratch = SimdScratch::new(prep);
    decode_region_rgb_simd_with(prep, coef, start, end, out, &mut scratch)
}

/// The row-tile pipeline stopping *before* color conversion: dequant +
/// IDCT + chroma upsampling per tile, writing full-resolution Y/Cb/Cr
/// planes for the band's pixel rows into `out` (which must span the whole
/// image). Bit-identical to [`super::stages::decode_region_ycc_with`] —
/// and [`crate::types::YccImage::to_rgb`] recovers the exact RGB bytes of
/// [`decode_region_rgb_simd_with`].
pub fn decode_region_ycc_simd_with(
    prep: &Prepared<'_>,
    coef: &CoefBuffer,
    start: usize,
    end: usize,
    out: &mut YccImage,
    scratch: &mut SimdScratch,
) -> Result<ParallelWork> {
    let geom = &prep.geom;
    if out.width != geom.width || out.height != geom.height {
        return Err(Error::BufferSize {
            expected: geom.width * geom.height,
            got: out.width * out.height,
        });
    }
    let w = geom.width;
    let lw = geom.comps[0].plane_width();
    let cw = geom.comps[1].plane_width();

    for mcu_row in start..end {
        idct_mcu_row(prep, coef, mcu_row, scratch);
        let (py0, py1) = geom.mcu_rows_to_pixel_rows(mcu_row, mcu_row + 1);
        for y in py0..py1 {
            let local = y - mcu_row * geom.mcu_h;
            scratch.upsample_local_row(geom.subsampling, cw, local);
            out.y[y * w..(y + 1) * w].copy_from_slice(&scratch.y[local * lw..local * lw + w]);
            out.cb[y * w..(y + 1) * w].copy_from_slice(&scratch.cb_row[..w]);
            out.cr[y * w..(y + 1) * w].copy_from_slice(&scratch.cr_row[..w]);
        }
    }
    Ok(ParallelWork::for_mcu_rows(geom, start, end))
}

/// Dequantize + IDCT all blocks of one MCU row into the scratch planes,
/// one fused EOB-dispatched pass per block on the scratch's vector level
/// (since PR 5 the IDCT itself is a dispatched SSE2/AVX2 kernel, not just
/// the upsample/color stages).
fn idct_mcu_row(prep: &Prepared<'_>, coef: &CoefBuffer, mcu_row: usize, scratch: &mut SimdScratch) {
    let geom = &prep.geom;
    let level = scratch.level;
    for (ci, comp) in geom.comps.iter().enumerate() {
        let quant = &prep.quant[ci].values;
        let plane_w = comp.plane_width();
        let by0 = mcu_row * comp.v_samp;
        let dst = match ci {
            0 => &mut scratch.y,
            1 => &mut scratch.cb,
            _ => &mut scratch.cr,
        };
        for dv in 0..comp.v_samp {
            let by = by0 + dv;
            if by >= comp.height_blocks {
                continue;
            }
            let row_base = (dv * 8) * plane_w;
            for bx in 0..comp.width_blocks {
                let idx = geom.block_index(ci, bx, by);
                kernels::dequant_idct_block(
                    level,
                    coef.block(idx),
                    quant,
                    coef.eob(idx),
                    dst,
                    row_base + bx * 8,
                    plane_w,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::stages;
    use crate::encoder::{encode_rgb, EncodeParams};

    fn textured_rgb(w: usize, h: usize) -> Vec<u8> {
        let mut rgb = Vec::with_capacity(w * h * 3);
        let mut s = 0x1234_5678u32;
        for _ in 0..w * h {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            rgb.push((s >> 8) as u8);
            rgb.push((s >> 16) as u8);
            rgb.push((s >> 24) as u8);
        }
        rgb
    }

    #[test]
    fn simd_band_equals_scalar_band_at_every_level() {
        for sub in [Subsampling::S444, Subsampling::S422, Subsampling::S420] {
            let (w, h) = (48usize, 48usize);
            let jpeg = encode_rgb(
                &textured_rgb(w, h),
                w as u32,
                h as u32,
                &EncodeParams {
                    quality: 60,
                    subsampling: sub,
                    restart_interval: 0,
                },
            )
            .unwrap();
            let prep = Prepared::new(&jpeg).unwrap();
            let (coef, _) = prep.entropy_decode_all().unwrap();
            for level in SimdLevel::all_available() {
                let mut scratch = SimdScratch::with_level(&prep, level);
                for (a, b) in [(0usize, 1usize), (1, 3), (0, prep.geom.mcus_y)] {
                    let bytes = prep.geom.rgb_bytes_in_mcu_rows(a, b);
                    let mut scalar = vec![0u8; bytes];
                    let mut simd = vec![0u8; bytes];
                    stages::decode_region_rgb(&prep, &coef, a, b, &mut scalar).unwrap();
                    decode_region_rgb_simd_with(&prep, &coef, a, b, &mut simd, &mut scratch)
                        .unwrap();
                    assert_eq!(
                        scalar,
                        simd,
                        "{} {} band {a}..{b}",
                        sub.notation(),
                        level.name()
                    );
                }
            }
        }
    }

    #[test]
    fn planar_tile_path_matches_scalar_planar() {
        for sub in [Subsampling::S444, Subsampling::S422, Subsampling::S420] {
            let (w, h) = (52usize, 41usize); // non-MCU-aligned on purpose
            let jpeg = encode_rgb(
                &textured_rgb(w, h),
                w as u32,
                h as u32,
                &EncodeParams {
                    quality: 75,
                    subsampling: sub,
                    restart_interval: 0,
                },
            )
            .unwrap();
            let prep = Prepared::new(&jpeg).unwrap();
            let (coef, _) = prep.entropy_decode_all().unwrap();
            let mut want = YccImage::new(w, h);
            let mut scalar_scratch = stages::Scratch::new(&prep);
            stages::decode_region_ycc_with(
                &prep,
                &coef,
                0,
                prep.geom.mcus_y,
                &mut want,
                &mut scalar_scratch,
            )
            .unwrap();
            for level in SimdLevel::all_available() {
                let mut scratch = SimdScratch::with_level(&prep, level);
                let mut got = YccImage::new(w, h);
                // Two bands to exercise band composition.
                let mid = prep.geom.mcus_y / 2;
                for (a, b) in [(0, mid), (mid, prep.geom.mcus_y)] {
                    if a < b {
                        decode_region_ycc_simd_with(&prep, &coef, a, b, &mut got, &mut scratch)
                            .unwrap();
                    }
                }
                assert_eq!(got.y, want.y, "{} {} Y", sub.notation(), level.name());
                assert_eq!(got.cb, want.cb, "{} {} Cb", sub.notation(), level.name());
                assert_eq!(got.cr, want.cr, "{} {} Cr", sub.notation(), level.name());
            }
        }
    }

    #[test]
    fn work_metrics_match_scalar() {
        let (w, h) = (32usize, 32usize);
        let jpeg = encode_rgb(
            &textured_rgb(w, h),
            w as u32,
            h as u32,
            &EncodeParams {
                quality: 85,
                subsampling: Subsampling::S422,
                restart_interval: 0,
            },
        )
        .unwrap();
        let prep = Prepared::new(&jpeg).unwrap();
        let (coef, _) = prep.entropy_decode_all().unwrap();
        let bytes = prep.geom.rgb_bytes_in_mcu_rows(0, 2);
        let mut a = vec![0u8; bytes];
        let mut b = vec![0u8; bytes];
        let wa = stages::decode_region_rgb(&prep, &coef, 0, 2, &mut a).unwrap();
        let wb = decode_region_rgb_simd(&prep, &coef, 0, 2, &mut b).unwrap();
        assert_eq!(wa, wb);
    }

    #[test]
    fn scratch_reuse_and_level_retention() {
        let (w, h) = (40usize, 24usize);
        let jpeg = encode_rgb(
            &textured_rgb(w, h),
            w as u32,
            h as u32,
            &EncodeParams {
                quality: 85,
                subsampling: Subsampling::S420,
                restart_interval: 0,
            },
        )
        .unwrap();
        let prep = Prepared::new(&jpeg).unwrap();
        let (coef, _) = prep.entropy_decode_all().unwrap();
        let mut scratch = SimdScratch::with_level(&prep, SimdLevel::Scalar);
        assert_eq!(scratch.level(), SimdLevel::Scalar);
        scratch.reset_for(&prep);
        assert_eq!(scratch.level(), SimdLevel::Scalar, "reset keeps the choice");
        let bytes = prep.geom.rgb_bytes_in_mcu_rows(0, prep.geom.mcus_y);
        let mut fresh = vec![0u8; bytes];
        let mut reused = vec![0u8; bytes];
        decode_region_rgb_simd(&prep, &coef, 0, prep.geom.mcus_y, &mut fresh).unwrap();
        decode_region_rgb_simd_with(&prep, &coef, 0, prep.geom.mcus_y, &mut reused, &mut scratch)
            .unwrap();
        assert_eq!(fresh, reused);
    }

    #[test]
    fn rejects_bad_output_buffer() {
        let (w, h) = (16usize, 16usize);
        let jpeg = encode_rgb(
            &textured_rgb(w, h),
            w as u32,
            h as u32,
            &EncodeParams {
                quality: 85,
                subsampling: Subsampling::S444,
                restart_interval: 0,
            },
        )
        .unwrap();
        let prep = Prepared::new(&jpeg).unwrap();
        let (coef, _) = prep.entropy_decode_all().unwrap();
        let mut tiny = vec![0u8; 10];
        assert!(decode_region_rgb_simd(&prep, &coef, 0, 1, &mut tiny).is_err());
        let mut wrong = YccImage::new(8, 8);
        let mut scratch = SimdScratch::new(&prep);
        assert!(decode_region_ycc_simd_with(&prep, &coef, 0, 1, &mut wrong, &mut scratch).is_err());
    }
}
