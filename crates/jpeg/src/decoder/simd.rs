//! Optimized ("SIMD-mode") parallel phase.
//!
//! Libjpeg-turbo accelerates everything but Huffman decoding with
//! hand-written SIMD (paper §1: about 2× the sequential decoder overall).
//! This module is our stand-in: the same arithmetic as [`super::stages`]
//! restructured for throughput — MCU-row-local scratch buffers instead of
//! whole-image planes, EOB-dispatched sparse IDCT fused with
//! dequantization and the plane store ([`crate::dct::sparse`]),
//! table-driven color conversion, flat `chunks_exact` loops the compiler
//! can autovectorize, and fused upsample+convert per row (the CPU analogue
//! of the merged GPU kernel of §4.4). Output bytes are **identical** to the
//! scalar path; only host-side speed differs. The platform cost model
//! charges this path with the calibrated SIMD per-unit costs (see
//! `hetjpeg-core`).
//!
//! The scratch is public ([`SimdScratch`]) so callers that decode many
//! bands in a loop can hold one workspace across calls via
//! [`decode_region_rgb_simd_with`] and keep their steady state
//! allocation-free; the single-band-per-decode callers (the schedulers,
//! the threaded executor's CPU band) use the allocating wrapper, where
//! reuse has nothing to amortize.

use crate::coef::CoefBuffer;
use crate::color::{ycc_to_rgb_tab, YccTables};
use crate::dct::sparse::dequant_idct_to;
use crate::decoder::Prepared;
use crate::error::{Error, Result};
use crate::metrics::ParallelWork;
use crate::sample::{upsample_row_h2v1_blockwise, upsample_v2_pair};
use crate::types::Subsampling;

/// MCU-row-local scratch buffers, reused across bands and decodes.
pub struct SimdScratch {
    /// Luma samples: `luma_width x mcu_h`.
    y: Vec<u8>,
    /// Subsampled chroma: `chroma_width x (8 * v_chroma)` each.
    cb: Vec<u8>,
    cr: Vec<u8>,
    /// One full-resolution upsampled chroma row each.
    cb_row: Vec<u8>,
    cr_row: Vec<u8>,
    /// Vertically upsampled (still horizontally subsampled) row for 4:2:0.
    vtmp: Vec<u8>,
}

impl SimdScratch {
    /// Allocate scratch sized for one MCU row of `prep`'s geometry.
    pub fn new(prep: &Prepared<'_>) -> Self {
        let lw = prep.geom.comps[0].plane_width();
        let cw = prep.geom.comps[1].plane_width();
        let mcu_h = prep.geom.mcu_h;
        SimdScratch {
            y: vec![0; lw * mcu_h],
            cb: vec![0; cw * 8],
            cr: vec![0; cw * 8],
            cb_row: vec![0; lw],
            cr_row: vec![0; lw],
            vtmp: vec![0; cw],
        }
    }

    /// Re-shape the scratch for another image, reusing the allocations —
    /// the session decoder's pool hook.
    pub fn reset_for(&mut self, prep: &Prepared<'_>) {
        let lw = prep.geom.comps[0].plane_width();
        let cw = prep.geom.comps[1].plane_width();
        let mcu_h = prep.geom.mcu_h;
        for (buf, len) in [
            (&mut self.y, lw * mcu_h),
            (&mut self.cb, cw * 8),
            (&mut self.cr, cw * 8),
            (&mut self.cb_row, lw),
            (&mut self.cr_row, lw),
            (&mut self.vtmp, cw),
        ] {
            buf.clear();
            buf.resize(len, 0);
        }
    }
}

/// The optimized parallel phase over MCU rows `[start, end)`, reusing
/// `scratch`; `out` receives the band's interleaved RGB rows (same contract
/// as [`super::stages::decode_region_rgb`]).
pub fn decode_region_rgb_simd_with(
    prep: &Prepared<'_>,
    coef: &CoefBuffer,
    start: usize,
    end: usize,
    out: &mut [u8],
    scratch: &mut SimdScratch,
) -> Result<ParallelWork> {
    let geom = &prep.geom;
    let (r0, r1) = geom.mcu_rows_to_pixel_rows(start, end);
    let w = geom.width;
    if out.len() != (r1 - r0) * w * 3 {
        return Err(Error::BufferSize {
            expected: (r1 - r0) * w * 3,
            got: out.len(),
        });
    }

    let lw = geom.comps[0].plane_width();
    let cw = geom.comps[1].plane_width();
    let ycc = &prep.ycc;

    for mcu_row in start..end {
        idct_mcu_row(prep, coef, mcu_row, scratch);

        let (py0, py1) = geom.mcu_rows_to_pixel_rows(mcu_row, mcu_row + 1);
        for y in py0..py1 {
            let local = y - mcu_row * geom.mcu_h;
            let yrow = &scratch.y[local * lw..local * lw + lw];

            // Upsample chroma for this pixel row into the row buffers.
            match geom.subsampling {
                Subsampling::S444 => {
                    scratch
                        .cb_row
                        .copy_from_slice(&scratch.cb[local * cw..local * cw + cw]);
                    scratch
                        .cr_row
                        .copy_from_slice(&scratch.cr[local * cw..local * cw + cw]);
                }
                Subsampling::S422 => {
                    upsample_row_h2v1_blockwise(
                        &scratch.cb[local * cw..local * cw + cw],
                        &mut scratch.cb_row,
                    );
                    upsample_row_h2v1_blockwise(
                        &scratch.cr[local * cw..local * cw + cw],
                        &mut scratch.cr_row,
                    );
                }
                Subsampling::S420 => {
                    let cy = local / 2;
                    let neighbour = if local.is_multiple_of(2) {
                        cy.saturating_sub(1)
                    } else {
                        (cy + 1).min(7)
                    };
                    for c in 0..2 {
                        let (plane, dst) = if c == 0 {
                            (&scratch.cb, &mut scratch.cb_row)
                        } else {
                            (&scratch.cr, &mut scratch.cr_row)
                        };
                        let near = &plane[cy * cw..cy * cw + cw];
                        let far = &plane[neighbour * cw..neighbour * cw + cw];
                        for ((t, &n), &f) in
                            scratch.vtmp.iter_mut().zip(near.iter()).zip(far.iter())
                        {
                            *t = upsample_v2_pair(n, f);
                        }
                        upsample_row_h2v1_blockwise(&scratch.vtmp, dst);
                    }
                }
            }

            // Fused color conversion with LUTs.
            let row_out = &mut out[(y - r0) * w * 3..(y - r0 + 1) * w * 3];
            convert_row(ycc, yrow, &scratch.cb_row, &scratch.cr_row, row_out);
        }
    }
    Ok(ParallelWork::for_mcu_rows(geom, start, end))
}

/// The optimized parallel phase with a freshly allocated scratch. Callers
/// decoding many bands should hold a [`SimdScratch`] and use
/// [`decode_region_rgb_simd_with`].
pub fn decode_region_rgb_simd(
    prep: &Prepared<'_>,
    coef: &CoefBuffer,
    start: usize,
    end: usize,
    out: &mut [u8],
) -> Result<ParallelWork> {
    let mut scratch = SimdScratch::new(prep);
    decode_region_rgb_simd_with(prep, coef, start, end, out, &mut scratch)
}

/// Dequantize + IDCT all blocks of one MCU row into the scratch planes,
/// one fused EOB-dispatched pass per block.
fn idct_mcu_row(prep: &Prepared<'_>, coef: &CoefBuffer, mcu_row: usize, scratch: &mut SimdScratch) {
    let geom = &prep.geom;
    for (ci, comp) in geom.comps.iter().enumerate() {
        let quant = &prep.quant[ci].values;
        let plane_w = comp.plane_width();
        let by0 = mcu_row * comp.v_samp;
        let dst = match ci {
            0 => &mut scratch.y,
            1 => &mut scratch.cb,
            _ => &mut scratch.cr,
        };
        for dv in 0..comp.v_samp {
            let by = by0 + dv;
            if by >= comp.height_blocks {
                continue;
            }
            let row_base = (dv * 8) * plane_w;
            for bx in 0..comp.width_blocks {
                let idx = geom.block_index(ci, bx, by);
                dequant_idct_to(
                    coef.block(idx),
                    quant,
                    coef.eob(idx),
                    dst,
                    row_base + bx * 8,
                    plane_w,
                );
            }
        }
    }
}

/// Table-driven YCbCr→RGB for one row; bit-identical to
/// [`crate::color::ycc_to_rgb`].
#[inline]
fn convert_row(ycc: &YccTables, yrow: &[u8], cb: &[u8], cr: &[u8], out: &mut [u8]) {
    let w = out.len() / 3;
    // Iterate without bounds checks: zip the exact-width slices.
    for (((&yv, &cbv), &crv), px) in yrow[..w]
        .iter()
        .zip(cb[..w].iter())
        .zip(cr[..w].iter())
        .zip(out.chunks_exact_mut(3))
    {
        let rgb = ycc_to_rgb_tab(ycc, yv, cbv, crv);
        px.copy_from_slice(&rgb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::stages;
    use crate::encoder::{encode_rgb, EncodeParams};

    fn textured_rgb(w: usize, h: usize) -> Vec<u8> {
        let mut rgb = Vec::with_capacity(w * h * 3);
        let mut s = 0x1234_5678u32;
        for _ in 0..w * h {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            rgb.push((s >> 8) as u8);
            rgb.push((s >> 16) as u8);
            rgb.push((s >> 24) as u8);
        }
        rgb
    }

    #[test]
    fn simd_band_equals_scalar_band() {
        for sub in [Subsampling::S444, Subsampling::S422, Subsampling::S420] {
            let (w, h) = (48usize, 48usize);
            let jpeg = encode_rgb(
                &textured_rgb(w, h),
                w as u32,
                h as u32,
                &EncodeParams {
                    quality: 60,
                    subsampling: sub,
                    restart_interval: 0,
                },
            )
            .unwrap();
            let prep = Prepared::new(&jpeg).unwrap();
            let (coef, _) = prep.entropy_decode_all().unwrap();
            let mut scratch = SimdScratch::new(&prep);
            for (a, b) in [(0usize, 1usize), (1, 3), (0, prep.geom.mcus_y)] {
                let bytes = prep.geom.rgb_bytes_in_mcu_rows(a, b);
                let mut scalar = vec![0u8; bytes];
                let mut simd = vec![0u8; bytes];
                let mut simd_reused = vec![0u8; bytes];
                stages::decode_region_rgb(&prep, &coef, a, b, &mut scalar).unwrap();
                decode_region_rgb_simd(&prep, &coef, a, b, &mut simd).unwrap();
                decode_region_rgb_simd_with(&prep, &coef, a, b, &mut simd_reused, &mut scratch)
                    .unwrap();
                assert_eq!(scalar, simd, "{} band {a}..{b}", sub.notation());
                assert_eq!(
                    scalar,
                    simd_reused,
                    "{} reused band {a}..{b}",
                    sub.notation()
                );
            }
        }
    }

    #[test]
    fn work_metrics_match_scalar() {
        let (w, h) = (32usize, 32usize);
        let jpeg = encode_rgb(
            &textured_rgb(w, h),
            w as u32,
            h as u32,
            &EncodeParams {
                quality: 85,
                subsampling: Subsampling::S422,
                restart_interval: 0,
            },
        )
        .unwrap();
        let prep = Prepared::new(&jpeg).unwrap();
        let (coef, _) = prep.entropy_decode_all().unwrap();
        let bytes = prep.geom.rgb_bytes_in_mcu_rows(0, 2);
        let mut a = vec![0u8; bytes];
        let mut b = vec![0u8; bytes];
        let wa = stages::decode_region_rgb(&prep, &coef, 0, 2, &mut a).unwrap();
        let wb = decode_region_rgb_simd(&prep, &coef, 0, 2, &mut b).unwrap();
        assert_eq!(wa, wb);
    }

    #[test]
    fn rejects_bad_output_buffer() {
        let (w, h) = (16usize, 16usize);
        let jpeg = encode_rgb(
            &textured_rgb(w, h),
            w as u32,
            h as u32,
            &EncodeParams {
                quality: 85,
                subsampling: Subsampling::S444,
                restart_interval: 0,
            },
        )
        .unwrap();
        let prep = Prepared::new(&jpeg).unwrap();
        let (coef, _) = prep.entropy_decode_all().unwrap();
        let mut tiny = vec![0u8; 10];
        assert!(decode_region_rgb_simd(&prep, &coef, 0, 1, &mut tiny).is_err());
    }
}
