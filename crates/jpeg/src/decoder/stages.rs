//! Scalar region-based stage functions for the parallel phase.
//!
//! Each function operates on a band of MCU rows so the heterogeneous
//! scheduler can hand disjoint bands to the CPU and the (simulated) GPU:
//! the paper's partitioning "splits images horizontally such that the
//! initial x rows ... are assigned to the GPU, and the remaining h − x rows
//! are assigned to the CPU" (§5.2).
//!
//! The hot path is allocation-free per block and per band: dequantization,
//! IDCT and the plane store are fused into one pass dispatched on each
//! block's recorded EOB ([`crate::dct::sparse`]), and all band-sized
//! temporaries (sample planes, upsampled chroma rasters) live in a reusable
//! [`Scratch`] that callers decoding many bands carry across calls. The
//! allocating entry points remain as thin wrappers.

use crate::coef::CoefBuffer;
use crate::color::ycc_to_rgb;
use crate::dct::sparse::dequant_idct_to;
use crate::decoder::Prepared;
use crate::error::{Error, Result};
use crate::metrics::ParallelWork;
use crate::planes::SamplePlanes;
use crate::sample::{upsample_row_h2v1_blockwise, upsample_v2_pair};
use crate::types::Subsampling;

/// Reusable band-decoding workspace: whole-image sample planes plus
/// band-sized upsampled chroma rasters. Create once, pass to
/// [`decode_region_rgb_with`] for every band — steady-state decoding then
/// performs no heap allocation per band.
pub struct Scratch {
    /// Post-IDCT sample planes spanning the whole image.
    pub planes: SamplePlanes,
    /// Full-resolution upsampled Cb for the current band.
    cb: Vec<u8>,
    /// Full-resolution upsampled Cr for the current band.
    cr: Vec<u8>,
    /// Vertically upsampled (still horizontally subsampled) row for 4:2:0.
    vtmp: Vec<u8>,
}

impl Scratch {
    /// Allocate a workspace for an image.
    pub fn new(prep: &Prepared<'_>) -> Self {
        Scratch {
            planes: SamplePlanes::new(&prep.geom),
            cb: Vec::new(),
            cr: Vec::new(),
            vtmp: vec![0u8; prep.geom.comps[1].plane_width()],
        }
    }

    /// Re-shape the workspace for another image, reusing the allocations —
    /// the session decoder's pool hook.
    pub fn reset_for(&mut self, prep: &Prepared<'_>) {
        self.planes.reset_for(&prep.geom);
        self.vtmp.clear();
        self.vtmp.resize(prep.geom.comps[1].plane_width(), 0);
    }
}

/// Dequantize + IDCT every block of MCU rows `[start, end)` into `planes`.
///
/// `planes` must span the whole image; only the band's block rows are
/// written, so disjoint bands can be processed independently. Each block is
/// dequantized, transformed and stored in a single fused pass, dispatched
/// on its recorded EOB (DC-only / 2×2 / 4×4 / dense — all bit-identical).
pub fn dequant_idct_region(
    prep: &Prepared<'_>,
    coef: &CoefBuffer,
    start: usize,
    end: usize,
    planes: &mut SamplePlanes,
) {
    let geom = &prep.geom;
    for (ci, comp) in geom.comps.iter().enumerate() {
        let quant = &prep.quant[ci].values;
        let stride = planes.strides[ci];
        let plane = &mut planes.planes[ci];
        let by0 = start * comp.v_samp;
        let by1 = (end * comp.v_samp).min(comp.height_blocks);
        for by in by0..by1 {
            let row_base = by * 8 * stride;
            for bx in 0..comp.width_blocks {
                let idx = geom.block_index(ci, bx, by);
                dequant_idct_to(
                    coef.block(idx),
                    quant,
                    coef.eob(idx),
                    plane,
                    row_base + bx * 8,
                    stride,
                );
            }
        }
    }
}

/// Upsample the chroma planes of MCU rows `[start, end)` to full
/// resolution, into the scratch's band rasters (band-local row indexing).
/// 4:4:4 input is copied through unchanged.
fn upsample_region_into(
    prep: &Prepared<'_>,
    planes: &SamplePlanes,
    start: usize,
    end: usize,
    cb: &mut Vec<u8>,
    cr: &mut Vec<u8>,
    vtmp: &mut [u8],
) {
    let geom = &prep.geom;
    let lw = geom.comps[0].plane_width();
    let (p0, p1) = (
        start * geom.mcu_h,
        (end * geom.mcu_h).min(geom.comps[0].plane_height()),
    );
    let band_rows = p1 - p0;
    cb.clear();
    cb.resize(band_rows * lw, 0);
    cr.clear();
    cr.resize(band_rows * lw, 0);

    match geom.subsampling {
        Subsampling::S444 => {
            for r in 0..band_rows {
                let y = p0 + r;
                cb[r * lw..(r + 1) * lw].copy_from_slice(planes.row(1, y));
                cr[r * lw..(r + 1) * lw].copy_from_slice(planes.row(2, y));
            }
        }
        Subsampling::S422 => {
            // Chroma plane has the same height as luma, half the width.
            for r in 0..band_rows {
                let y = p0 + r;
                upsample_row_h2v1_blockwise(planes.row(1, y), &mut cb[r * lw..(r + 1) * lw]);
                upsample_row_h2v1_blockwise(planes.row(2, y), &mut cr[r * lw..(r + 1) * lw]);
            }
        }
        Subsampling::S420 => {
            // Vertical (blockwise triangular) then horizontal (Algorithm 1).
            let ch = geom.comps[1].plane_height();
            for r in 0..band_rows {
                let y = p0 + r; // luma row
                let cy = (y / 2).min(ch - 1);
                // Blockwise vertical neighbour: stay inside the 8-row block.
                let block_base = cy & !7;
                let neighbour = if y % 2 == 0 {
                    cy.saturating_sub(1).max(block_base)
                } else {
                    (cy + 1).min(block_base + 7).min(ch - 1)
                };
                for c in 0..2usize {
                    let near = planes.row(1 + c, cy);
                    let far = planes.row(1 + c, neighbour);
                    for ((t, &n), &f) in vtmp.iter_mut().zip(near.iter()).zip(far.iter()) {
                        *t = upsample_v2_pair(n, f);
                    }
                    let dst = if c == 0 {
                        &mut cb[r * lw..(r + 1) * lw]
                    } else {
                        &mut cr[r * lw..(r + 1) * lw]
                    };
                    upsample_row_h2v1_blockwise(vtmp, dst);
                }
            }
        }
    }
}

/// Upsample the chroma planes of MCU rows `[start, end)` to full resolution.
///
/// Returns full-resolution Cb/Cr rasters for the band's pixel rows
/// (band-local row indexing). Allocating wrapper around the scratch-based
/// path used by [`decode_region_rgb_with`].
pub fn upsample_region(
    prep: &Prepared<'_>,
    planes: &SamplePlanes,
    start: usize,
    end: usize,
) -> (Vec<u8>, Vec<u8>) {
    let mut cb = Vec::new();
    let mut cr = Vec::new();
    let mut vtmp = vec![0u8; prep.geom.comps[1].plane_width()];
    upsample_region_into(prep, planes, start, end, &mut cb, &mut cr, &mut vtmp);
    (cb, cr)
}

/// Color-convert MCU rows `[start, end)` into `out`, which must hold exactly
/// the band's `width * rows * 3` bytes (clipped to real image rows).
pub fn color_convert_region(
    prep: &Prepared<'_>,
    planes: &SamplePlanes,
    cb: &[u8],
    cr: &[u8],
    start: usize,
    end: usize,
    out: &mut [u8],
) -> Result<()> {
    let geom = &prep.geom;
    let (r0, r1) = geom.mcu_rows_to_pixel_rows(start, end);
    let w = geom.width;
    if out.len() != (r1 - r0) * w * 3 {
        return Err(Error::BufferSize {
            expected: (r1 - r0) * w * 3,
            got: out.len(),
        });
    }
    let lw = geom.comps[0].plane_width();
    let band_p0 = start * geom.mcu_h;
    for (ri, row_out) in out.chunks_exact_mut(w * 3).enumerate() {
        let y = r0 + ri;
        let band_row = y - band_p0;
        let yrow = planes.row(0, y);
        let cb_row = &cb[band_row * lw..band_row * lw + lw];
        let cr_row = &cr[band_row * lw..band_row * lw + lw];
        for (x, px) in row_out.chunks_exact_mut(3).enumerate() {
            let rgb = ycc_to_rgb(yrow[x], cb_row[x], cr_row[x]);
            px.copy_from_slice(&rgb);
        }
    }
    Ok(())
}

/// The whole parallel phase for a band, reusing `scratch` across calls:
/// dequant + IDCT + upsample + color conversion, writing interleaved RGB
/// for the band's pixel rows into `out`.
///
/// Returns the work metrics the cost model charges for the band.
pub fn decode_region_rgb_with(
    prep: &Prepared<'_>,
    coef: &CoefBuffer,
    start: usize,
    end: usize,
    out: &mut [u8],
    scratch: &mut Scratch,
) -> Result<ParallelWork> {
    dequant_idct_region(prep, coef, start, end, &mut scratch.planes);
    upsample_region_into(
        prep,
        &scratch.planes,
        start,
        end,
        &mut scratch.cb,
        &mut scratch.cr,
        &mut scratch.vtmp,
    );
    color_convert_region(
        prep,
        &scratch.planes,
        &scratch.cb,
        &scratch.cr,
        start,
        end,
        out,
    )?;
    Ok(ParallelWork::for_mcu_rows(&prep.geom, start, end))
}

/// The scalar parallel phase as a *tile stream*: render each MCU row of
/// `[start, end)` into `tile` (resized to that row's exact pixel-byte
/// count) and hand it to `sink` as `(first_pixel_row, pixel_rows, rgb)` —
/// the scalar sibling of
/// [`super::simd::stream_region_rgb_simd_with`], bit-identical to it at
/// every dispatch level. `sink` returning `false` aborts the stream after
/// the current tile; the second return value is whether the band
/// completed.
pub fn stream_region_rgb_with(
    prep: &Prepared<'_>,
    coef: &CoefBuffer,
    start: usize,
    end: usize,
    tile: &mut Vec<u8>,
    scratch: &mut Scratch,
    sink: &mut dyn FnMut(usize, usize, &[u8]) -> bool,
) -> Result<(ParallelWork, bool)> {
    let geom = &prep.geom;
    let w = geom.width;
    for mcu_row in start..end {
        let (py0, py1) = geom.mcu_rows_to_pixel_rows(mcu_row, mcu_row + 1);
        tile.resize((py1 - py0) * w * 3, 0);
        decode_region_rgb_with(prep, coef, mcu_row, mcu_row + 1, tile, scratch)?;
        if !sink(py0, py1 - py0, tile) {
            return Ok((ParallelWork::for_mcu_rows(geom, start, mcu_row + 1), false));
        }
    }
    Ok((ParallelWork::for_mcu_rows(geom, start, end), true))
}

/// The parallel phase for a band, stopping *before* color conversion:
/// dequant + IDCT + chroma upsampling, writing full-resolution Y/Cb/Cr
/// planes for the band's pixel rows into `out` (which must span the whole
/// image). Skipping the RGB transform is what planar consumers (re-encode,
/// tone-mapping, ML preprocessing) want; [`crate::types::YccImage::to_rgb`]
/// recovers the exact RGB bytes of [`decode_region_rgb`].
pub fn decode_region_ycc_with(
    prep: &Prepared<'_>,
    coef: &CoefBuffer,
    start: usize,
    end: usize,
    out: &mut crate::types::YccImage,
    scratch: &mut Scratch,
) -> Result<ParallelWork> {
    let geom = &prep.geom;
    if out.width != geom.width || out.height != geom.height {
        return Err(Error::BufferSize {
            expected: geom.width * geom.height,
            got: out.width * out.height,
        });
    }
    dequant_idct_region(prep, coef, start, end, &mut scratch.planes);
    upsample_region_into(
        prep,
        &scratch.planes,
        start,
        end,
        &mut scratch.cb,
        &mut scratch.cr,
        &mut scratch.vtmp,
    );
    let (r0, r1) = geom.mcu_rows_to_pixel_rows(start, end);
    let w = geom.width;
    let lw = geom.comps[0].plane_width();
    let band_p0 = start * geom.mcu_h;
    for y in r0..r1 {
        let band_row = y - band_p0;
        out.y[y * w..(y + 1) * w].copy_from_slice(&scratch.planes.row(0, y)[..w]);
        out.cb[y * w..(y + 1) * w].copy_from_slice(&scratch.cb[band_row * lw..band_row * lw + w]);
        out.cr[y * w..(y + 1) * w].copy_from_slice(&scratch.cr[band_row * lw..band_row * lw + w]);
    }
    Ok(ParallelWork::for_mcu_rows(geom, start, end))
}

/// The whole parallel phase for a band with a freshly allocated workspace.
/// Callers decoding many bands should hold a [`Scratch`] and call
/// [`decode_region_rgb_with`] instead.
pub fn decode_region_rgb(
    prep: &Prepared<'_>,
    coef: &CoefBuffer,
    start: usize,
    end: usize,
    out: &mut [u8],
) -> Result<ParallelWork> {
    let mut scratch = Scratch::new(prep);
    decode_region_rgb_with(prep, coef, start, end, out, &mut scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::Prepared;
    use crate::encoder::{encode_rgb, EncodeParams};
    use crate::types::Subsampling;

    fn setup(sub: Subsampling, w: usize, h: usize) -> (Vec<u8>, Vec<u8>) {
        let mut rgb = Vec::with_capacity(w * h * 3);
        for y in 0..h {
            for x in 0..w {
                rgb.extend_from_slice(&[
                    ((x * 7 + y * 3) % 256) as u8,
                    ((x * 2 + y * 11) % 256) as u8,
                    ((x * 5 + y * 5) % 256) as u8,
                ]);
            }
        }
        let jpeg = encode_rgb(
            &rgb,
            w as u32,
            h as u32,
            &EncodeParams {
                quality: 88,
                subsampling: sub,
                restart_interval: 0,
            },
        )
        .unwrap();
        (rgb, jpeg)
    }

    #[test]
    fn idct_region_only_touches_band() {
        let (_, jpeg) = setup(Subsampling::S444, 32, 32);
        let prep = Prepared::new(&jpeg).unwrap();
        let (coef, _) = prep.entropy_decode_all().unwrap();
        let mut planes = SamplePlanes::new(&prep.geom);
        dequant_idct_region(&prep, &coef, 1, 2, &mut planes);
        // Rows of MCU row 0 remain zero, rows of MCU row 1 are written.
        assert!(planes.row(0, 0).iter().all(|&v| v == 0));
        assert!(planes.row(0, 8).iter().any(|&v| v != 0));
        assert!(planes.row(0, 16).iter().all(|&v| v == 0));
    }

    #[test]
    fn upsample_444_is_passthrough() {
        let (_, jpeg) = setup(Subsampling::S444, 16, 16);
        let prep = Prepared::new(&jpeg).unwrap();
        let (coef, _) = prep.entropy_decode_all().unwrap();
        let mut planes = SamplePlanes::new(&prep.geom);
        dequant_idct_region(&prep, &coef, 0, prep.geom.mcus_y, &mut planes);
        let (cb, cr) = upsample_region(&prep, &planes, 0, prep.geom.mcus_y);
        assert_eq!(&cb[0..16], planes.row(1, 0));
        assert_eq!(&cr[0..16], planes.row(2, 0));
    }

    #[test]
    fn color_convert_rejects_bad_buffer() {
        let (_, jpeg) = setup(Subsampling::S444, 16, 16);
        let prep = Prepared::new(&jpeg).unwrap();
        let (coef, _) = prep.entropy_decode_all().unwrap();
        let mut planes = SamplePlanes::new(&prep.geom);
        dequant_idct_region(&prep, &coef, 0, 1, &mut planes);
        let (cb, cr) = upsample_region(&prep, &planes, 0, 1);
        let mut tiny = vec![0u8; 3];
        assert!(color_convert_region(&prep, &planes, &cb, &cr, 0, 1, &mut tiny).is_err());
    }

    #[test]
    fn work_metrics_scale_with_band_size() {
        let (_, jpeg) = setup(Subsampling::S422, 64, 64);
        let prep = Prepared::new(&jpeg).unwrap();
        let (coef, _) = prep.entropy_decode_all().unwrap();
        let mut out1 = vec![0u8; prep.geom.rgb_bytes_in_mcu_rows(0, 1)];
        let w1 = decode_region_rgb(&prep, &coef, 0, 1, &mut out1).unwrap();
        let mut out2 = vec![0u8; prep.geom.rgb_bytes_in_mcu_rows(0, 2)];
        let w2 = decode_region_rgb(&prep, &coef, 0, 2, &mut out2).unwrap();
        assert_eq!(w2.idct_blocks, 2 * w1.idct_blocks);
        assert_eq!(w2.color_pixels, 2 * w1.color_pixels);
    }

    #[test]
    fn reused_scratch_matches_fresh_allocations() {
        for sub in [Subsampling::S444, Subsampling::S422, Subsampling::S420] {
            let (_, jpeg) = setup(sub, 48, 56);
            let prep = Prepared::new(&jpeg).unwrap();
            let (coef, _) = prep.entropy_decode_all().unwrap();
            let mut scratch = Scratch::new(&prep);
            for (a, b) in [(0usize, 2usize), (2, 3), (0, prep.geom.mcus_y)] {
                let bytes = prep.geom.rgb_bytes_in_mcu_rows(a, b);
                let mut fresh = vec![0u8; bytes];
                let mut reused = vec![0u8; bytes];
                decode_region_rgb(&prep, &coef, a, b, &mut fresh).unwrap();
                decode_region_rgb_with(&prep, &coef, a, b, &mut reused, &mut scratch).unwrap();
                assert_eq!(fresh, reused, "{} band {a}..{b}", sub.notation());
            }
        }
    }

    #[test]
    fn planar_ycc_converts_to_the_exact_rgb_bytes() {
        for sub in [Subsampling::S444, Subsampling::S422, Subsampling::S420] {
            let (_, jpeg) = setup(sub, 52, 41); // non-MCU-aligned on purpose
            let prep = Prepared::new(&jpeg).unwrap();
            let (coef, _) = prep.entropy_decode_all().unwrap();
            let mut scratch = Scratch::new(&prep);
            let mut rgb = vec![0u8; prep.geom.rgb_bytes_in_mcu_rows(0, prep.geom.mcus_y)];
            decode_region_rgb_with(&prep, &coef, 0, prep.geom.mcus_y, &mut rgb, &mut scratch)
                .unwrap();
            let mut ycc = crate::types::YccImage::new(prep.geom.width, prep.geom.height);
            // Decode in two bands to exercise band-local indexing.
            let mid = prep.geom.mcus_y / 2;
            for (a, b) in [(0, mid), (mid, prep.geom.mcus_y)] {
                if a < b {
                    decode_region_ycc_with(&prep, &coef, a, b, &mut ycc, &mut scratch).unwrap();
                }
            }
            assert_eq!(ycc.to_rgb().data, rgb, "{}", sub.notation());
        }
    }

    #[test]
    fn dense_eob_fallback_decodes_identically() {
        // Blocks written through `block_mut` lose their sparse EOB and fall
        // back to the dense bound; pixels must not change.
        let (_, jpeg) = setup(Subsampling::S420, 40, 40);
        let prep = Prepared::new(&jpeg).unwrap();
        let (coef, _) = prep.entropy_decode_all().unwrap();
        let mut dense = coef.clone();
        for idx in 0..dense.num_blocks() {
            let copy = *dense.block(idx);
            *dense.block_mut(idx) = copy; // resets EOB to 63
            assert_eq!(dense.eob(idx), crate::coef::EOB_DENSE);
        }
        let bytes = prep.geom.rgb_bytes_in_mcu_rows(0, prep.geom.mcus_y);
        let mut a = vec![0u8; bytes];
        let mut b = vec![0u8; bytes];
        decode_region_rgb(&prep, &coef, 0, prep.geom.mcus_y, &mut a).unwrap();
        decode_region_rgb(&prep, &dense, 0, prep.geom.mcus_y, &mut b).unwrap();
        assert_eq!(a, b);
    }
}
