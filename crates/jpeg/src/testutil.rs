//! Seeded generators for test inputs, shared by this crate's unit tests,
//! the integration suites (`tests/idct_simd_props.rs`) and the bench
//! crate — one home for the decoder's input-domain rules (8-bit DQT,
//! i16 coefficients, EOB = highest nonzero zigzag index) so the suites
//! cannot drift apart when the domain changes.
//!
//! Everything here is deterministic (splitmix/LCG-style state from the
//! caller's seed): failures reproduce from the seed alone.

use crate::zigzag::ZIGZAG;

#[inline]
fn step(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

/// Pseudo-random coefficients populating exactly the zigzag prefix
/// `0..=eob` with values in `[-magnitude, magnitude]` (i16 domain), the
/// final prefix position forced nonzero so the block's true EOB is
/// exactly `eob`.
pub fn coef_block_for_eob(seed: u64, eob: usize, magnitude: i32) -> [i16; 64] {
    assert!(eob < 64 && magnitude >= 1 && magnitude <= i16::MAX as i32);
    let mut c = [0i16; 64];
    let mut state = seed | 1;
    for (k, nat) in ZIGZAG.iter().enumerate().take(eob + 1) {
        let v = ((step(&mut state) >> 33) as i32 % (2 * magnitude + 1)) - magnitude;
        c[*nat] = if k == eob && v == 0 { 1 } else { v as i16 };
    }
    c
}

/// A quantization table in the parser-enforced 8-bit DQT domain
/// (values in `1..=255`, natural order).
pub fn quant_8bit(seed: u64) -> [u16; 64] {
    let mut q = [0u16; 64];
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    for slot in q.iter_mut() {
        *slot = ((step(&mut state) >> 40) % 255) as u16 + 1;
    }
    q
}

/// `pixels` worth of pseudo-random interleaved RGB bytes.
pub fn noise_rgb(pixels: usize, seed: u32) -> Vec<u8> {
    let mut rgb = Vec::with_capacity(pixels * 3);
    let mut s = seed | 1;
    for _ in 0..pixels {
        s = s.wrapping_mul(1664525).wrapping_add(1013904223);
        rgb.extend_from_slice(&[(s >> 8) as u8, (s >> 16) as u8, (s >> 24) as u8]);
    }
    rgb
}
