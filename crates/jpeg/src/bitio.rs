//! Bit-level I/O over JPEG entropy-coded segments.
//!
//! JPEG's entropy stream is byte-stuffed: a literal 0xFF data byte is encoded
//! as `FF 00`, so that any `FF xx` with `xx != 0` is a marker. The reader
//! unstuffs transparently, stops at markers, and counts the bits it consumes
//! — those counts are the raw material of the Huffman-rate model in paper §5.1
//! (Fig. 7 plots exactly this: decoded bits per pixel).
//!
//! The refill is bulk: 0xFF-free runs are loaded six bytes at a time from an
//! unaligned big-endian `u64` (detected with a SWAR byte-equality test), and
//! only windows containing 0xFF take the byte-at-a-time unstuffing slow
//! path. This keeps the strictly sequential Huffman phase — the paper's
//! serial bottleneck — as short as possible.

use crate::error::{Error, Result};

/// Marker-aware big-endian bit reader with 0xFF-unstuffing.
///
/// The reader exposes `bits_consumed` so callers can meter entropy work at
/// MCU-row granularity.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte to load into the accumulator.
    pos: usize,
    /// Bit accumulator; bits are consumed from the MSB side.
    acc: u64,
    /// Number of valid bits in `acc`.
    acc_len: u32,
    /// Set when a marker byte pair was encountered; reads return EOF-like
    /// zero bits afterwards (JPEG decoders pad with 1-bits per spec; we
    /// follow libjpeg and synthesize zeroes only after warning conditions —
    /// here decoding is expected to consume exactly the available bits).
    marker: Option<u8>,
    /// Set once synthesized padding bits entered the accumulator (EOF or
    /// post-marker). From then on [`Self::bit_checkpoint`] is undefined.
    padded: bool,
    /// Total bits handed out so far.
    bits_consumed: u64,
}

impl<'a> BitReader<'a> {
    /// Create a reader over an entropy-coded segment (marker-free prefix of
    /// `data` will be consumed; the first marker terminates bit supply).
    pub fn new(data: &'a [u8]) -> Self {
        Self::new_at(data, 0)
    }

    /// Create a reader over `data` that starts consuming at `byte_offset`.
    ///
    /// The reader keeps the *whole* slice, so byte-stuffing context (the
    /// `FF 00` rule depends on the preceding byte) and
    /// [`Self::bit_checkpoint`] positions stay globally consistent with a
    /// reader created at offset 0 — the property the speculative parallel
    /// entropy decoder relies on. Callers must not start on the `00` of a
    /// stuffed `FF 00` pair (such a byte would be consumed as data here but
    /// skipped by a reader arriving from the left).
    pub fn new_at(data: &'a [u8], byte_offset: usize) -> Self {
        BitReader {
            data,
            pos: byte_offset.min(data.len()),
            acc: 0,
            acc_len: 0,
            marker: None,
            padded: false,
            bits_consumed: 0,
        }
    }

    /// Canonical raw-bit position of the next unconsumed logical bit, i.e.
    /// the index (in bits) into `data` where decoding would resume. Stuffed
    /// `00` bytes carry no logical bits, so two readers over the same slice
    /// report the *same* checkpoint exactly when their future decodes are
    /// identical — regardless of how their refills happened to buffer bits.
    /// Returns `u64::MAX` once a marker was reached or padding bits were
    /// synthesized (no meaningful raw position exists then).
    pub fn bit_checkpoint(&self) -> u64 {
        if self.marker.is_some() || self.padded {
            return u64::MAX;
        }
        // Walk back over the raw bytes feeding the pending accumulator bits;
        // stuffed bytes contributed nothing.
        let mut j = self.pos;
        let mut need = self.acc_len as i64;
        while need > 0 {
            if j == 0 {
                return u64::MAX;
            }
            j -= 1;
            let stuffed = self.data[j] == 0x00 && j > 0 && self.data[j - 1] == 0xFF;
            if !stuffed {
                need -= 8;
            }
        }
        8 * j as u64 + need.unsigned_abs()
    }

    /// Total number of bits consumed by `get_bits`/`receive` so far.
    #[inline]
    pub fn bits_consumed(&self) -> u64 {
        self.bits_consumed
    }

    /// Byte offset of the next unread byte in the underlying slice.
    #[inline]
    pub fn byte_pos(&self) -> usize {
        self.pos - (self.acc_len as usize) / 8
    }

    /// The marker that terminated the stream, if one has been reached.
    #[inline]
    pub fn marker(&self) -> Option<u8> {
        self.marker
    }

    /// Pull bytes until the accumulator holds at least `need` bits or the
    /// stream is exhausted. Stuffed zero bytes are skipped; markers stop
    /// refilling.
    ///
    /// Fast path: most of a scan is 0xFF-free, so the refill loads six bytes
    /// per iteration from an unaligned big-endian `u64` whenever the window
    /// contains no 0xFF. Only windows touching a stuffed byte, a marker, or
    /// the stream tail fall back to the byte-at-a-time slow path. Both paths
    /// buffer identical bit sequences, so decode output is bit-exact.
    #[inline]
    fn refill(&mut self, need: u32) {
        debug_assert!(need <= 24);
        while self.acc_len < need {
            // 48 fresh bits always fit while acc_len <= 16, and `need` is at
            // most 24, so one bulk load finishes the refill.
            if self.acc_len <= 16 && self.marker.is_none() && self.pos + 8 <= self.data.len() {
                let window =
                    u64::from_be_bytes(self.data[self.pos..self.pos + 8].try_into().unwrap());
                let six = window >> 16;
                if !contains_ff_byte6(six) {
                    self.acc = (self.acc << 48) | six;
                    self.acc_len += 48;
                    self.pos += 6;
                    return;
                }
            }
            self.refill_one_byte();
        }
    }

    /// Slow-path refill: buffer one byte (or eight padding bits), handling
    /// 0xFF unstuffing and marker detection.
    #[cold]
    fn refill_one_byte(&mut self) {
        if self.marker.is_some() || self.pos >= self.data.len() {
            // Pad with zero bits; callers that overrun real data will
            // produce wrong symbols and hit BadHuffmanCode soon after,
            // mirroring libjpeg's behaviour on truncated files.
            self.acc <<= 8;
            self.acc_len += 8;
            self.padded = true;
            return;
        }
        let b = self.data[self.pos];
        self.pos += 1;
        if b == 0xFF {
            match self.data.get(self.pos) {
                Some(0x00) => {
                    // Stuffed data byte.
                    self.pos += 1;
                    self.acc = (self.acc << 8) | 0xFF;
                    self.acc_len += 8;
                }
                Some(&m) => {
                    self.marker = Some(m);
                    self.pos += 1;
                    self.acc <<= 8;
                    self.acc_len += 8;
                    self.padded = true;
                }
                None => {
                    self.marker = Some(0x00);
                    self.acc <<= 8;
                    self.acc_len += 8;
                    self.padded = true;
                }
            }
        } else {
            self.acc = (self.acc << 8) | b as u64;
            self.acc_len += 8;
        }
    }

    /// Read `n` bits (0..=24) MSB-first.
    #[inline]
    pub fn get_bits(&mut self, n: u32) -> u32 {
        if n == 0 {
            return 0;
        }
        debug_assert!(n <= 24);
        self.refill(n);
        self.acc_len -= n;
        self.bits_consumed += n as u64;
        ((self.acc >> self.acc_len) & ((1u64 << n) - 1)) as u32
    }

    /// Peek at the next `n` bits without consuming them.
    #[inline]
    pub fn peek_bits(&mut self, n: u32) -> u32 {
        debug_assert!(n > 0 && n <= 24);
        self.refill(n);
        ((self.acc >> (self.acc_len - n)) & ((1u64 << n) - 1)) as u32
    }

    /// Consume `n` bits previously seen via [`Self::peek_bits`].
    #[inline]
    pub fn skip_bits(&mut self, n: u32) {
        debug_assert!(self.acc_len >= n);
        self.acc_len -= n;
        self.bits_consumed += n as u64;
    }

    /// Discard buffered bits so the reader is positioned at a byte boundary,
    /// as required before a restart marker.
    pub fn align_to_byte(&mut self) {
        let drop = self.acc_len % 8;
        self.acc_len -= drop;
        // Unread whole buffered bytes cannot be "pushed back" cheaply; keep
        // them — they are the upcoming bytes. Only sub-byte bits are padding.
        self.bits_consumed += drop as u64;
    }

    /// After aligning, read a two-byte restart marker `FF D0+n`. The reader
    /// must have consumed the entropy data exactly up to the marker.
    pub fn read_restart_marker(&mut self) -> Result<u8> {
        self.align_to_byte();
        // Whatever whole bytes remain buffered should be exactly zero (there
        // are none in well-formed streams: restart markers follow the last
        // entropy byte immediately).
        while self.acc_len >= 8 {
            let b = ((self.acc >> (self.acc_len - 8)) & 0xFF) as u8;
            if b != 0 {
                return Err(Error::Malformed("data before restart marker"));
            }
            self.acc_len -= 8;
        }
        if let Some(m) = self.marker.take() {
            // Buffered bytes were zero padding synthesized after the marker;
            // drop them so decoding resumes with real post-marker bytes.
            self.acc_len = 0;
            if (0xD0..=0xD7).contains(&m) {
                return Ok(m - 0xD0);
            }
            return Err(Error::RestartMismatch {
                expected: 0xFF,
                found: m,
            });
        }
        // Marker not yet pulled from the byte stream: read it directly.
        if self.pos + 1 > self.data.len() {
            return Err(Error::UnexpectedEof);
        }
        if self.data.get(self.pos) != Some(&0xFF) {
            return Err(Error::Malformed("expected restart marker"));
        }
        let m = *self.data.get(self.pos + 1).ok_or(Error::UnexpectedEof)?;
        self.pos += 2;
        if (0xD0..=0xD7).contains(&m) {
            Ok(m - 0xD0)
        } else {
            Err(Error::RestartMismatch {
                expected: 0xFF,
                found: m,
            })
        }
    }
}

/// True if any of the low six bytes of `v` equals 0xFF (top two bytes must
/// be zero). Branch-free SWAR byte-equality test: XOR maps 0xFF bytes to
/// 0x00, then the classic zero-byte detector flags them.
#[inline(always)]
fn contains_ff_byte6(v: u64) -> bool {
    const LOW6: u64 = 0x0000_FFFF_FFFF_FFFF;
    const ONES: u64 = 0x0000_0101_0101_0101;
    const HIGH: u64 = 0x0000_8080_8080_8080;
    let x = v ^ LOW6;
    x.wrapping_sub(ONES) & !x & HIGH != 0
}

/// Big-endian bit writer producing a byte-stuffed entropy segment.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    acc_len: u32,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the low `n` bits of `value`, MSB first.
    #[inline]
    pub fn put_bits(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 24);
        debug_assert!(n == 24 || (value >> n) == 0, "value wider than n bits");
        self.acc = (self.acc << n) | value as u64;
        self.acc_len += n;
        while self.acc_len >= 8 {
            self.acc_len -= 8;
            let byte = ((self.acc >> self.acc_len) & 0xFF) as u8;
            self.out.push(byte);
            if byte == 0xFF {
                self.out.push(0x00); // byte stuffing
            }
        }
    }

    /// Pad to a byte boundary with 1-bits (T.81 §B.1.1.5 convention).
    pub fn pad_to_byte(&mut self) {
        let pad = (8 - self.acc_len % 8) % 8;
        if pad > 0 {
            self.put_bits((1 << pad) - 1, pad);
        }
    }

    /// Emit a restart marker (outside byte stuffing), padding first.
    pub fn put_restart_marker(&mut self, n: u8) {
        self.pad_to_byte();
        self.out.push(0xFF);
        self.out.push(0xD0 + (n & 7));
    }

    /// Pad and return the finished segment.
    pub fn finish(mut self) -> Vec<u8> {
        self.pad_to_byte();
        self.out
    }

    /// Bytes emitted so far (excluding buffered bits).
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True if nothing has been emitted or buffered.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty() && self.acc_len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple_bits() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        w.put_bits(0b0110, 4);
        w.put_bits(0x5A, 8);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(3), 0b101);
        assert_eq!(r.get_bits(4), 0b0110);
        assert_eq!(r.get_bits(8), 0x5A);
        assert_eq!(r.bits_consumed(), 15);
    }

    #[test]
    fn ff_bytes_are_stuffed_and_unstuffed() {
        let mut w = BitWriter::new();
        w.put_bits(0xFF, 8);
        w.put_bits(0xFF, 8);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0xFF, 0x00, 0xFF, 0x00]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(8), 0xFF);
        assert_eq!(r.get_bits(8), 0xFF);
    }

    #[test]
    fn reader_stops_at_marker() {
        // Data byte, then an EOI marker.
        let bytes = [0xAB, 0xFF, 0xD9];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(8), 0xAB);
        // Reading past the marker returns zero padding.
        assert_eq!(r.get_bits(8), 0);
        assert_eq!(r.marker(), Some(0xD9));
    }

    #[test]
    fn peek_does_not_consume() {
        let bytes = [0b1011_0010, 0x00];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(4), 0b1011);
        assert_eq!(r.peek_bits(4), 0b1011);
        assert_eq!(r.bits_consumed(), 0);
        r.skip_bits(4);
        assert_eq!(r.get_bits(4), 0b0010);
        assert_eq!(r.bits_consumed(), 8);
    }

    #[test]
    fn restart_marker_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0b1, 1);
        w.put_restart_marker(3);
        w.put_bits(0xAA, 8);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(1), 1);
        assert_eq!(r.read_restart_marker().unwrap(), 3);
        assert_eq!(r.get_bits(8), 0xAA);
    }

    #[test]
    fn pad_uses_one_bits() {
        let mut w = BitWriter::new();
        w.put_bits(0, 1);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b0111_1111]);
    }

    #[test]
    fn writer_len_and_empty() {
        let mut w = BitWriter::new();
        assert!(w.is_empty());
        w.put_bits(0, 1);
        assert!(!w.is_empty());
        assert_eq!(w.len(), 0); // still buffered
        w.pad_to_byte();
        assert_eq!(w.len(), 1);
    }
}
