//! The shard pool: worker threads owning one [`Decoder`] session each, fed
//! by bounded per-shard admission queues whose consumers coalesce requests
//! into [`Decoder::decode_batch`] calls.
//!
//! ## Why shards, and why shape-keyed routing
//!
//! A `Decoder` serializes decodes on its internal workspace lock — that is
//! what lets it reuse one coefficient buffer and one set of band scratches
//! across images. Throughput therefore scales by adding *sessions*, not by
//! hammering one session from more threads. Each shard worker owns its
//! session outright, so shards decode truly concurrently.
//!
//! Routing by image shape (width, height, subsampling — read by a cheap
//! header scan, no entropy work) keeps each session's per-shape state hot:
//! the pooled buffers are re-shaped only when the shape actually changes,
//! and the `Mode::Auto` decision cache sees the same keys again and again
//! instead of a shuffled mix. The same idea at a different scale as the
//! paper's partitioning: send work where its state already lives.
//!
//! Affinity is a preference, not a pin: when a shape's home queue is full
//! the request spills to the next shard with room, so a workload of one
//! shape (all thumbnails the same size) still fans out across every shard
//! instead of serializing behind one worker. The spilled-to session pays
//! one extra `Auto` evaluation and a buffer re-shape — both cheap — and
//! then is hot for that shape too.
//!
//! ## Batch admission
//!
//! Each worker blocks on its queue; on the first arrival it keeps
//! collecting until the batch reaches [`ServeConfig::max_batch`] or
//! [`ServeConfig::flush_after`] has elapsed, then decodes the whole batch
//! under one session lock. Under light load the deadline keeps latency
//! bounded (a lone request waits at most `flush_after`); under heavy load
//! batches fill instantly and the per-image admission overhead amortizes
//! away. The queues are bounded: a flooded server blocks submitters
//! (backpressure) rather than queueing without limit.

use crate::{ConfigError, ServeConfig, ServeError};
use hetjpeg_core::{DecodeOutcome, Decoder, SessionStats};
use hetjpeg_jpeg::error::Error;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One queued decode request: the image bytes plus the reply slot the
/// worker answers into.
struct Request {
    data: Vec<u8>,
    reply: mpsc::Sender<Result<DecodeOutcome, Error>>,
}

/// Receipt for a submitted request; [`Ticket::wait`] blocks until the
/// shard worker has decoded the image.
pub struct Ticket {
    rx: mpsc::Receiver<Result<DecodeOutcome, Error>>,
}

impl Ticket {
    /// Block until the decode finishes and return its outcome.
    pub fn wait(self) -> Result<DecodeOutcome, ServeError> {
        match self.rx.recv() {
            Ok(Ok(out)) => Ok(out),
            Ok(Err(e)) => Err(ServeError::Decode(e)),
            Err(_) => Err(ServeError::WorkerGone),
        }
    }
}

/// Monotone per-shard counters, updated by the worker, read by
/// [`Server::stats`].
#[derive(Default)]
struct ShardCounters {
    requests: AtomicU64,
    batches: AtomicU64,
    decode_errors: AtomicU64,
    max_batch: AtomicU64,
    deadline_partials: AtomicU64,
}

/// A snapshot of one shard's counters plus its session's statistics.
#[derive(Debug, Clone, Copy)]
pub struct ShardStats {
    /// Requests decoded by this shard.
    pub requests: u64,
    /// `decode_batch` calls issued (each covers one coalesced batch).
    pub batches: u64,
    /// Requests whose decode returned an error.
    pub decode_errors: u64,
    /// Largest batch the admission loop coalesced.
    pub max_batch: u64,
    /// Progressive requests answered with a deadline-paced prefix render
    /// ([`crate::ServeConfig::scan_deadline`]).
    pub deadline_partials: u64,
    /// The shard session's pool/cache statistics (allocations amortized,
    /// `Auto` evaluations, cache hits, evictions, cache occupancy).
    pub session: SessionStats,
}

/// Aggregated server statistics: one [`ShardStats`] per shard.
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Per-shard snapshots, in shard order.
    pub shards: Vec<ShardStats>,
}

impl ServerStats {
    /// Total requests decoded.
    pub fn requests(&self) -> u64 {
        self.shards.iter().map(|s| s.requests).sum()
    }

    /// Total `decode_batch` calls.
    pub fn batches(&self) -> u64 {
        self.shards.iter().map(|s| s.batches).sum()
    }

    /// Total requests whose decode errored.
    pub fn decode_errors(&self) -> u64 {
        self.shards.iter().map(|s| s.decode_errors).sum()
    }

    /// Mean images per batch — the admission loop's amortization factor.
    pub fn mean_batch(&self) -> f64 {
        let b = self.batches();
        if b == 0 {
            0.0
        } else {
            self.requests() as f64 / b as f64
        }
    }

    /// The kernel dispatch level the shard sessions decode at, when every
    /// shard agrees (they always do — shards are built identically from
    /// one config; `None` only for an empty shard list). The smoke test
    /// asserts this against the host's detected level so a silent fallback
    /// to scalar can't masquerade as a passing end-to-end run.
    pub fn simd_level(&self) -> Option<hetjpeg_core::SimdLevel> {
        let first = self.shards.first().map(|s| s.session.simd_level)?;
        self.shards
            .iter()
            .all(|s| s.session.simd_level == first)
            .then_some(first)
    }

    /// Total `Mode::Auto` decisions served from the per-shard caches.
    pub fn auto_cache_hits(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.session.pool.auto_cache_hits)
            .sum()
    }

    /// Total `Mode::Auto` decisions priced from the model.
    pub fn auto_evals(&self) -> u64 {
        self.shards.iter().map(|s| s.session.pool.auto_evals).sum()
    }

    /// Total `Mode::Auto` cache evictions (LRU, per-shard caps).
    pub fn auto_evictions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.session.pool.auto_evictions)
            .sum()
    }

    /// Speculation counters merged across shards (ISSUE 6): how often the
    /// restart-free parallel entropy path ran and what it cost, so the
    /// serve path can observe the speculative mode in production.
    pub fn speculation(&self) -> hetjpeg_jpeg::speculate::SpecStats {
        let mut total = hetjpeg_jpeg::speculate::SpecStats::default();
        for s in &self.shards {
            total.merge(&s.session.spec);
        }
        total
    }

    /// Total speculative segments (chunks) launched across shards.
    pub fn speculative_chunks(&self) -> u64 {
        self.speculation().chunks
    }

    /// Total convergence-prefix MCUs wasted by speculation across shards.
    pub fn speculation_wasted_mcus(&self) -> u64 {
        self.speculation().wasted_mcus
    }

    /// Total MCUs the stitch pass re-decoded exactly across shards.
    pub fn stitch_redecoded_mcus(&self) -> u64 {
        self.speculation().redecoded_mcus
    }

    /// Progressive-decode counters merged across shards (PR 7): scans
    /// decoded, refinement passes, and partial (prefix) renders — so the
    /// serve path can observe the multi-scan subsystem in production.
    pub fn progressive(&self) -> hetjpeg_jpeg::progressive::ProgressiveStats {
        let mut total = hetjpeg_jpeg::progressive::ProgressiveStats::default();
        for s in &self.shards {
            total.merge(&s.session.progressive);
        }
        total
    }

    /// Total progressive requests answered with a deadline-paced prefix
    /// render instead of the full scan sequence.
    pub fn deadline_partials(&self) -> u64 {
        self.shards.iter().map(|s| s.deadline_partials).sum()
    }
}

struct ShardState {
    decoder: Arc<Decoder>,
    counters: Arc<ShardCounters>,
}

struct Inner {
    /// Intake side of every shard queue. `None` once shutdown began —
    /// taking the senders is what lets the workers drain and exit.
    senders: Mutex<Option<Vec<crossbeam::channel::Sender<Request>>>>,
    shards: Vec<ShardState>,
}

/// The server: a pool of shard workers plus the shared intake state.
///
/// Constructed by [`Server::start`]; hand out [`ServeHandle`]s (cheap
/// clones) to submitters. [`Server::shutdown`] stops intake, drains every
/// in-flight batch, joins the workers and returns the final statistics.
/// Dropping the server without calling `shutdown` performs the same
/// drain-and-join.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

/// Cloneable, thread-safe submission handle to a running [`Server`].
#[derive(Clone)]
pub struct ServeHandle {
    inner: Arc<Inner>,
}

impl Server {
    /// Validate `config`, build one `Decoder` session per shard and spawn
    /// the shard workers.
    pub fn start(config: ServeConfig) -> Result<Server, ServeError> {
        if config.shards == 0 {
            return Err(ServeError::Config(ConfigError::ZeroShards));
        }
        if config.queue_depth == 0 {
            return Err(ServeError::Config(ConfigError::ZeroQueueDepth));
        }
        if config.max_batch == 0 {
            return Err(ServeError::Config(ConfigError::ZeroMaxBatch));
        }

        let mut senders = Vec::with_capacity(config.shards);
        let mut shards = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for i in 0..config.shards {
            let model = config
                .model
                .clone()
                .unwrap_or_else(|| config.platform.untrained_model());
            let decoder = Decoder::builder()
                .platform(config.platform.clone())
                .model(model)
                .threads(config.threads)
                .auto_cache_cap(config.auto_cache_cap)
                .build()
                .map_err(|e| ServeError::Config(ConfigError::Session(e)))?;
            let decoder = Arc::new(decoder);
            let counters = Arc::new(ShardCounters::default());
            let (tx, rx) = crossbeam::channel::bounded::<Request>(config.queue_depth);
            senders.push(tx);
            let worker_decoder = Arc::clone(&decoder);
            let worker_counters = Arc::clone(&counters);
            let opts = config.options;
            let max_batch = config.max_batch;
            let flush_after = config.flush_after;
            let scan_deadline = config.scan_deadline;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("hetjpeg-shard-{i}"))
                    .spawn(move || {
                        shard_worker(
                            &worker_decoder,
                            &rx,
                            opts,
                            max_batch,
                            flush_after,
                            scan_deadline,
                            &worker_counters,
                        )
                    })
                    .expect("spawn shard worker"),
            );
            shards.push(ShardState { decoder, counters });
        }

        Ok(Server {
            inner: Arc::new(Inner {
                senders: Mutex::new(Some(senders)),
                shards,
            }),
            workers,
        })
    }

    /// A cloneable submission handle bound to this server.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Snapshot of every shard's counters and session statistics.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            shards: self
                .inner
                .shards
                .iter()
                .map(|s| ShardStats {
                    requests: s.counters.requests.load(Ordering::Relaxed),
                    batches: s.counters.batches.load(Ordering::Relaxed),
                    decode_errors: s.counters.decode_errors.load(Ordering::Relaxed),
                    max_batch: s.counters.max_batch.load(Ordering::Relaxed),
                    deadline_partials: s.counters.deadline_partials.load(Ordering::Relaxed),
                    session: s.decoder.stats(),
                })
                .collect(),
        }
    }

    /// Graceful shutdown: stop admitting, let every worker drain the
    /// requests already queued (their replies are still delivered), join
    /// the workers, and return the final statistics.
    pub fn shutdown(mut self) -> ServerStats {
        self.close_and_join();
        self.stats()
    }

    fn close_and_join(&mut self) {
        // Taking the senders closes every queue once outstanding submit()
        // clones finish their sends; workers then drain buffered requests
        // and exit on the disconnect.
        *self.inner.senders.lock().expect("server intake lock") = None;
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

impl ServeHandle {
    /// Submit an image for decoding; returns a [`Ticket`] to await.
    ///
    /// Admission prefers the image's home shard (shape-keyed, cache-hot)
    /// but never serializes a homogeneous workload behind one worker: when
    /// the home queue is full the request spills to the next shard with
    /// room, and only when *every* queue is full does the submit block on
    /// the home shard (backpressure).
    pub fn submit(&self, data: Vec<u8>) -> Result<Ticket, ServeError> {
        let shards = self.inner.shards.len();
        let base = route(&data, shards);
        let (reply, rx) = mpsc::channel();
        let mut req = Request { data, reply };
        // The non-blocking pass runs under the intake lock (try_send never
        // blocks); the fallback blocking send happens outside it so a
        // backpressured submitter cannot serialize other submitters or
        // deadlock shutdown.
        let tx = {
            let guard = self.inner.senders.lock().expect("server intake lock");
            let senders = match guard.as_ref() {
                Some(senders) => senders,
                None => return Err(ServeError::ShuttingDown),
            };
            let mut offset = 0;
            loop {
                if offset == shards {
                    break senders[base].clone();
                }
                match senders[(base + offset) % shards].try_send(req) {
                    Ok(()) => return Ok(Ticket { rx }),
                    Err(crossbeam::channel::TrySendError::Full(r)) => {
                        req = r;
                        offset += 1;
                    }
                    Err(crossbeam::channel::TrySendError::Disconnected(_)) => {
                        return Err(ServeError::ShuttingDown)
                    }
                }
            }
        };
        tx.send(req).map_err(|_| ServeError::ShuttingDown)?;
        Ok(Ticket { rx })
    }

    /// Synchronous round trip: submit and wait.
    pub fn decode(&self, data: &[u8]) -> Result<DecodeOutcome, ServeError> {
        self.submit(data.to_vec())?.wait()
    }
}

/// Measured decode throughput of one shard, in compressed bytes per
/// second, smoothed over recent requests. Seeds the prediction behind
/// [`crate::ServeConfig::scan_deadline`]: whole-request throughput is a
/// deliberately coarse proxy (it folds entropy *and* render cost into one
/// rate), but it needs no model training and self-corrects as the shard
/// observes its own workload.
#[derive(Default)]
struct Pacer {
    bytes_per_sec: Option<f64>,
}

impl Pacer {
    fn observe(&mut self, bytes: usize, took: std::time::Duration) {
        let secs = took.as_secs_f64();
        if secs <= 0.0 {
            return;
        }
        let obs = bytes as f64 / secs;
        self.bytes_per_sec = Some(match self.bytes_per_sec {
            Some(prev) => 0.7 * prev + 0.3 * obs,
            None => obs,
        });
    }
}

/// Decide whether a progressive request must be paced: `Some(k)` means
/// "decode only the first `k` scans" — the largest prefix whose predicted
/// time (scan bytes over the shard's measured throughput) fits the budget,
/// never fewer than the first scan (a DC render is the floor the server
/// promises). `None` means the full scan script fits (or the request is
/// not progressive, or no throughput has been measured yet).
fn paced_scan_limit(
    data: &[u8],
    budget: std::time::Duration,
    bytes_per_sec: Option<f64>,
) -> Option<usize> {
    let rate = bytes_per_sec?;
    if !hetjpeg_jpeg::progressive::is_progressive(data) {
        return None;
    }
    let parsed = hetjpeg_jpeg::progressive::parse_progressive(data).ok()?;
    let total: usize = parsed.scans.iter().map(|s| s.data.len()).sum();
    let budget_bytes = rate * budget.as_secs_f64();
    if total as f64 <= budget_bytes {
        return None;
    }
    let mut cum = 0usize;
    let mut k = 0usize;
    for scan in &parsed.scans {
        cum += scan.data.len();
        if cum as f64 <= budget_bytes {
            k += 1;
        } else {
            break;
        }
    }
    Some(k.max(1))
}

/// The per-shard consumer: block for the first request, coalesce until the
/// batch is full or the flush deadline passes, decode the batch under one
/// session lock, answer every reply slot.
fn shard_worker(
    decoder: &Decoder,
    rx: &crossbeam::channel::Receiver<Request>,
    opts: hetjpeg_core::DecodeOptions,
    max_batch: usize,
    flush_after: std::time::Duration,
    scan_deadline: Option<std::time::Duration>,
    counters: &ShardCounters,
) {
    let mut batch: Vec<Request> = Vec::with_capacity(max_batch);
    let mut pacer = Pacer::default();
    loop {
        match rx.recv() {
            Ok(first) => batch.push(first),
            // Intake closed and queue drained: the shard is done.
            Err(_) => return,
        }
        let deadline = Instant::now() + flush_after;
        while batch.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(r) => batch.push(r),
                Err(RecvTimeoutError::Timeout) => break,
                // Disconnected mid-coalesce: decode what we have, then the
                // next outer recv() observes the disconnect and exits.
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        let outs: Vec<Result<DecodeOutcome, Error>> = match scan_deadline {
            None => {
                let datas: Vec<&[u8]> = batch.iter().map(|r| r.data.as_slice()).collect();
                decoder.decode_batch(&datas, opts)
            }
            // Pacing needs per-request options (a reduced scan limit) and
            // per-request timing, so the batch decodes request by request;
            // the session still amortizes its pools across them.
            Some(budget) => batch
                .iter()
                .map(|r| {
                    let limit = paced_scan_limit(&r.data, budget, pacer.bytes_per_sec);
                    let o = match limit {
                        Some(k) => opts.max_scans(match opts.max_scans {
                            Some(m) => m.min(k),
                            None => k,
                        }),
                        None => opts,
                    };
                    let t0 = Instant::now();
                    let out = decoder.decode(&r.data, o);
                    pacer.observe(r.data.len(), t0.elapsed());
                    if limit.is_some() && out.is_ok() {
                        counters.deadline_partials.fetch_add(1, Ordering::Relaxed);
                    }
                    out
                })
                .collect(),
        };

        counters.batches.fetch_add(1, Ordering::Relaxed);
        counters
            .requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        counters
            .max_batch
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
        let errors = outs.iter().filter(|o| o.is_err()).count() as u64;
        if errors > 0 {
            counters.decode_errors.fetch_add(errors, Ordering::Relaxed);
        }
        for (req, out) in batch.drain(..).zip(outs) {
            // A vanished waiter (dropped Ticket) is not an error.
            let _ = req.reply.send(out);
        }
    }
}

/// Home shard for an image, by its shape fingerprint ([`ServeHandle::submit`]
/// spills to other shards when the home queue is full). Unparseable data
/// goes to shard 0, where the decode will produce the error that is then
/// reported through the request's own reply slot.
fn route(data: &[u8], shards: usize) -> usize {
    match shape_key(data) {
        Some(key) => {
            let mut h = DefaultHasher::new();
            key.hash(&mut h);
            (h.finish() % shards as u64) as usize
        }
        None => 0,
    }
}

/// Cheap shape fingerprint (width, height, component count, luma sampling
/// factors) read by scanning the marker stream for SOF0/SOF1/SOF2 — no
/// entropy decoding, no table parsing, no allocation. Progressive (SOF2)
/// images share the fingerprint space with baseline ones: a progressive
/// image routes to the same shard as its baseline counterpart of the same
/// shape, where the pooled buffers for that shape already live. `None`
/// when the bytes carry no recognized frame header.
fn shape_key(data: &[u8]) -> Option<(u16, u16, u8, u8)> {
    use hetjpeg_jpeg::markers::m;
    if data.len() < 4 || data[0] != 0xFF || data[1] != m::SOI {
        return None;
    }
    let mut pos = 2usize;
    while pos + 3 < data.len() {
        if data[pos] != 0xFF {
            return None;
        }
        let marker = data[pos + 1];
        match marker {
            // Padding / RSTn / TEM: no length field.
            0xFF => {
                pos += 1;
                continue;
            }
            m::TEM | m::RST0..=m::RST7 => {
                pos += 2;
                continue;
            }
            // SOS or EOI before any SOF: give up.
            m::SOS | m::EOI => return None,
            _ => {}
        }
        let len = u16::from_be_bytes([data[pos + 2], data[pos + 3]]) as usize;
        if len < 2 || pos + 2 + len > data.len() {
            return None;
        }
        if marker == m::SOF0 || marker == m::SOF1 || marker == m::SOF2 {
            // SOF segment: precision(1) height(2) width(2) ncomp(1), then
            // per component (id, sampling, tq).
            let seg = &data[pos + 4..pos + 2 + len];
            if seg.len() < 6 {
                return None;
            }
            let height = u16::from_be_bytes([seg[1], seg[2]]);
            let width = u16::from_be_bytes([seg[3], seg[4]]);
            let ncomp = seg[5];
            let sampling = if seg.len() >= 9 { seg[7] } else { 0 };
            return Some((width, height, ncomp, sampling));
        }
        pos += 2 + len;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetjpeg_corpus::{generate_jpeg, ImageSpec, Pattern};
    use hetjpeg_jpeg::types::Subsampling;

    fn jpeg(w: usize, h: usize, seed: u64) -> Vec<u8> {
        let spec = ImageSpec {
            width: w,
            height: h,
            pattern: Pattern::PhotoLike { detail: 0.5 },
            seed,
        };
        generate_jpeg(&spec, 85, Subsampling::S420).unwrap()
    }

    fn progressive_jpeg(w: usize, h: usize, seed: u64) -> Vec<u8> {
        let spec = ImageSpec {
            width: w,
            height: h,
            pattern: Pattern::PhotoLike { detail: 0.5 },
            seed,
        };
        hetjpeg_corpus::generate_progressive_jpeg(
            &spec,
            85,
            Subsampling::S420,
            hetjpeg_jpeg::progressive::ScanPreset::Standard10,
        )
        .unwrap()
    }

    #[test]
    fn shape_key_reads_the_frame_header() {
        let j = jpeg(96, 64, 1);
        let (w, h, ncomp, sampling) = shape_key(&j).expect("baseline jpeg has a shape");
        assert_eq!((w, h, ncomp), (96, 64, 3));
        assert_eq!(sampling, 0x22, "4:2:0 luma sampling factors");
        // Same shape, different pixels: identical key.
        assert_eq!(shape_key(&j), shape_key(&jpeg(96, 64, 2)));
        // Different shape: different key.
        assert_ne!(shape_key(&j), shape_key(&jpeg(64, 96, 1)));
        // Garbage is unroutable, not a panic.
        assert_eq!(shape_key(b"not a jpeg"), None);
        assert_eq!(shape_key(&j[..3]), None);
        // A progressive (SOF2) image of the same shape shares the key —
        // it must land on the shard whose buffers are hot for that shape.
        let prog = progressive_jpeg(96, 64, 1);
        assert_eq!(shape_key(&prog), shape_key(&j));
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let j = jpeg(128, 96, 3);
        for shards in 1..5 {
            let s = route(&j, shards);
            assert!(s < shards);
            assert_eq!(s, route(&j, shards), "routing is deterministic");
        }
        assert_eq!(route(b"garbage", 4), 0);
    }

    #[test]
    fn same_shape_lands_on_one_shard() {
        let shards = 4;
        let target = route(&jpeg(96, 64, 1), shards);
        for seed in 2..10 {
            assert_eq!(route(&jpeg(96, 64, seed), shards), target);
        }
    }

    #[test]
    fn config_validation() {
        let bad = |c: ServeConfig| matches!(Server::start(c), Err(ServeError::Config(_)));
        assert!(bad(ServeConfig {
            shards: 0,
            ..ServeConfig::default()
        }));
        assert!(bad(ServeConfig {
            queue_depth: 0,
            ..ServeConfig::default()
        }));
        assert!(bad(ServeConfig {
            max_batch: 0,
            ..ServeConfig::default()
        }));
        assert!(bad(ServeConfig {
            auto_cache_cap: 0,
            ..ServeConfig::default()
        }));
        assert!(bad(ServeConfig {
            threads: 0,
            ..ServeConfig::default()
        }));
    }

    #[test]
    fn speculation_counters_surface_in_server_stats() {
        // A restart-free stream decoded under `Mode::ParallelEntropy`
        // takes the speculative path (ISSUE 6); its counters must be
        // visible through the server's aggregated statistics.
        let server = Server::start(ServeConfig {
            shards: 1,
            threads: 4,
            options: hetjpeg_core::DecodeOptions {
                mode: hetjpeg_core::Mode::ParallelEntropy,
                ..hetjpeg_core::DecodeOptions::default()
            },
            ..ServeConfig::default()
        })
        .unwrap();
        let handle = server.handle();
        handle.decode(&jpeg(256, 160, 7)).unwrap();
        let stats = server.shutdown();
        let spec = stats.speculation();
        assert!(spec.chunks >= 2, "speculative chunks launched: {spec:?}");
        assert!(spec.synced >= 1, "at least one boundary converged");
        assert!(spec.adopted_mcus > 0, "staged MCUs adopted: {spec:?}");
        assert_eq!(stats.speculative_chunks(), spec.chunks);
        assert_eq!(
            stats.speculation_wasted_mcus() + stats.stitch_redecoded_mcus(),
            spec.wasted_mcus + spec.redecoded_mcus,
        );
    }

    #[test]
    fn progressive_requests_decode_and_surface_counters() {
        // A progressive image served next to its baseline counterpart
        // produces the same bytes, and the multi-scan counters appear in
        // the aggregated server statistics.
        let server = Server::start(ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let handle = server.handle();
        let base_out = handle.decode(&jpeg(96, 64, 11)).unwrap();
        let prog_out = handle.decode(&progressive_jpeg(96, 64, 11)).unwrap();
        assert!(!prog_out.truncated);
        assert_eq!(prog_out.image.data, base_out.image.data);
        let stats = server.shutdown();
        let p = stats.progressive();
        assert_eq!(p.scans_decoded, 10, "Standard10 scan script: {p:?}");
        assert_eq!(p.refine_passes, 5);
        assert_eq!(p.partial_renders, 0);
        assert_eq!(stats.deadline_partials(), 0);
    }

    #[test]
    fn progressive_deadline_yields_partial_renders() {
        let server = Server::start(ServeConfig {
            shards: 1,
            scan_deadline: Some(std::time::Duration::from_nanos(1)),
            ..ServeConfig::default()
        })
        .unwrap();
        let handle = server.handle();
        let prog = progressive_jpeg(128, 96, 3);
        // The first request seeds the shard's throughput estimate and
        // decodes in full…
        let first = handle.decode(&prog).unwrap();
        assert!(!first.truncated);
        // …after which a 1 ns budget can never absorb the scan script:
        // the shard answers with a prefix render, flagged truncated.
        let paced = handle.decode(&prog).unwrap();
        assert!(paced.truncated, "paced decode is a prefix render");
        assert_eq!(paced.image.data.len(), 128 * 96 * 3);
        assert_ne!(paced.image.data, first.image.data);
        let stats = server.shutdown();
        assert_eq!(stats.deadline_partials(), 1);
        let p = stats.progressive();
        assert_eq!(p.partial_renders, 1);
        assert_eq!(p.scans_decoded, 10 + 1, "full script + the DC prefix");
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let server = Server::start(ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let handle = server.handle();
        let j = jpeg(64, 64, 5);
        assert!(handle.decode(&j).is_ok());
        server.shutdown();
        assert!(matches!(handle.submit(j), Err(ServeError::ShuttingDown)));
    }
}
