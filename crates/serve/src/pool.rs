//! The shard pool: worker threads owning one [`Decoder`] session each, fed
//! by bounded per-shard admission queues whose consumers coalesce requests
//! and decode them under one hot session.
//!
//! ## Why shards, and why shape-keyed routing
//!
//! A `Decoder` serializes decodes on its internal workspace lock — that is
//! what lets it reuse one coefficient buffer and one set of band scratches
//! across images. Throughput therefore scales by adding *sessions*, not by
//! hammering one session from more threads. Each shard worker owns its
//! session outright, so shards decode truly concurrently.
//!
//! Routing by image shape (width, height, subsampling — read by a cheap
//! header scan, no entropy work) keeps each session's per-shape state hot:
//! the pooled buffers are re-shaped only when the shape actually changes,
//! and the `Mode::Auto` decision cache sees the same keys again and again
//! instead of a shuffled mix. The same idea at a different scale as the
//! paper's partitioning: send work where its state already lives.
//!
//! Affinity is a preference, not a pin: when a shape's home queue is full
//! the request spills to the next shard with room, so a workload of one
//! shape (all thumbnails the same size) still fans out across every shard
//! instead of serializing behind one worker. The spilled-to session pays
//! one extra `Auto` evaluation and a buffer re-shape — both cheap — and
//! then is hot for that shape too.
//!
//! ## Batch admission
//!
//! Each worker blocks on its queue; on the first arrival it keeps
//! collecting until the batch reaches [`ServeConfig::max_batch`] or
//! [`ServeConfig::flush_after`] has elapsed, then decodes the coalesced
//! group under its session. Under light load the deadline keeps latency
//! bounded (a lone request waits at most `flush_after`); under heavy load
//! batches fill instantly and the per-image admission overhead amortizes
//! away. The queues are bounded: a flooded server blocks submitters
//! (backpressure) rather than queueing without limit.
//!
//! ## Failure domains (PR 8)
//!
//! Every decode runs inside `catch_unwind`: a panicking request is
//! answered with [`ServeError::Panicked`], the shard's poisoned session is
//! rebuilt (fresh pools, empty `Auto` cache — its *statistics* survive via
//! a retired-totals accumulator), and the worker keeps serving. A
//! per-shard **circuit breaker** trips after
//! [`ServeConfig::breaker_threshold`] consecutive panics: an open shard is
//! routed around at submit time (overflow-spill reuse) and fail-fasts its
//! own queue with [`ServeError::Busy`] until a backoff probe half-opens
//! it; a successful probe closes it again. During shutdown an open shard
//! drains its queue with explicit [`ServeError::Shutdown`] errors instead
//! of silently dropping tickets.
//!
//! ## SLO admission (PR 8)
//!
//! [`ServeHandle::submit_with`] accepts an optional per-request deadline.
//! At admission the home shard's completion time is estimated as its
//! queued work plus this request's predicted cost — `Decoder::predict`'s
//! §5.1 virtual seconds scaled by the shard's observed wall-per-virtual
//! ratio for baseline images, measured bytes/s throughput for progressive
//! ones. Infeasible requests are shed with [`ServeError::Busy`] (carrying
//! a retry-after hint) or, when [`SubmitOptions::degrade`] opts in,
//! admitted degraded: progressive sources fall back to a `max_scans`
//! prefix render sized to the remaining budget, baseline sources to
//! [`hetjpeg_core::Strictness::Tolerant`]. Estimates start optimistic (an
//! uncalibrated shard admits everything) and self-correct as the shard
//! observes its own workload.

use crate::fault::{FaultPlan, FaultSite};
use crate::{ConfigError, ServeConfig, ServeError};
use hetjpeg_core::timeline::{Breakdown, Trace};
use hetjpeg_core::{
    DecodeOptions, DecodeOutcome, Decoder, Mode, OutputFormat, SessionStats, SimdLevel, Strictness,
};
use hetjpeg_jpeg::types::RgbImage;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{mpsc, Arc, Mutex, Once};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One queued decode request: the image bytes, the reply slot the worker
/// answers into, and the admission-control context attached at submit.
struct Request {
    data: Vec<u8>,
    reply: mpsc::Sender<Result<ServeReply, ServeError>>,
    /// Per-request decode overrides (and the streaming opt-in).
    options: RequestOptions,
    /// Absolute completion deadline, when the submitter set one.
    deadline: Option<Instant>,
    /// The submitter opted into degraded service instead of shedding.
    degrade: bool,
    /// Admission already judged the deadline infeasible: the worker must
    /// degrade (the submitter opted in) rather than decode in full.
    degrade_now: bool,
    /// Predicted §5.1 virtual microseconds for this image, when admission
    /// priced it — what calibrates the shard's wall-per-virtual ratio.
    predicted_virtual_us: Option<u64>,
    /// Microseconds of estimated work charged to the serving shard's
    /// queue; the worker credits it back when the request completes.
    charged_us: u64,
}

/// A successful server response: the decode outcome plus whether the
/// server degraded the request (prefix render / tolerant salvage) to meet
/// its deadline.
#[derive(Debug, Clone)]
pub struct Served {
    /// The decode outcome (bit-identical to a direct [`Decoder`] call
    /// unless `degraded`).
    pub outcome: DecodeOutcome,
    /// True when the server applied the degradation ladder to this request
    /// instead of shedding it ([`SubmitOptions::degrade`]).
    pub degraded: bool,
}

/// A worker's answer to one request: either a whole-image response or the
/// receiving end of a row-tile stream ([`RequestOptions::streaming`]).
// `Whole` dominates the size, but the enum is moved at most twice per
// request (worker → reply slot → caller) and never stored in bulk, so the
// indirection a `Box` buys is all cost.
#[allow(clippy::large_enum_variant)]
pub enum ServeReply {
    /// The whole decoded image, buffered.
    Whole(Served),
    /// A chunked response: consume [`StreamEvent`]s as the worker renders
    /// MCU-row tiles. Peak buffering is bounded by the worker's tile pool
    /// ([`TILE_POOL_CAP`] tiles), not the image size.
    Stream(ServedStream),
}

impl std::fmt::Debug for ServeReply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeReply::Whole(s) => f.debug_tuple("Whole").field(s).finish(),
            ServeReply::Stream(_) => f.debug_tuple("Stream").finish(),
        }
    }
}

/// Receiving side of a streamed response: a sequence of
/// [`StreamEvent::Begin`], zero or more [`StreamEvent::Tile`]s in row
/// order, and a terminal [`StreamEvent::End`].
pub struct ServedStream {
    rx: mpsc::Receiver<StreamEvent>,
}

/// Outcome of [`ServedStream::try_next`].
pub enum TryEvent {
    /// The next event.
    Event(StreamEvent),
    /// Nothing available yet; the worker is still rendering.
    Pending,
    /// The worker hung up without a terminal event (a bug or a killed
    /// worker) — treat as [`ServeError::WorkerGone`].
    Gone,
}

impl ServedStream {
    /// Block for the next event; `None` once the stream is exhausted (the
    /// terminal [`StreamEvent::End`] was already delivered) or the worker
    /// died without one.
    pub fn recv(&self) -> Option<StreamEvent> {
        self.rx.recv().ok()
    }

    /// Non-blocking [`ServedStream::recv`] — what the event-driven front
    /// end pumps from its poll loop.
    pub fn try_next(&self) -> TryEvent {
        match self.rx.try_recv() {
            Ok(ev) => TryEvent::Event(ev),
            Err(mpsc::TryRecvError::Empty) => TryEvent::Pending,
            Err(mpsc::TryRecvError::Disconnected) => TryEvent::Gone,
        }
    }
}

/// One event of a streamed response.
pub enum StreamEvent {
    /// Stream prologue: image geometry and the degrade flag, sent before
    /// the first tile.
    Begin {
        /// Image width in pixels.
        width: u32,
        /// Image height in pixels.
        height: u32,
        /// The response is degraded (scan-prefix render / tolerant
        /// salvage) — the streamed mirror of [`Served::degraded`].
        degraded: bool,
    },
    /// One MCU-row tile of interleaved RGB, in top-to-bottom row order.
    Tile(StreamTile),
    /// Terminal event: the stream summary, or the error that ended it.
    /// Always the last event of a stream. An `Err` *before* any `Begin`
    /// means the request failed whole (decode error, shed, shutdown); an
    /// `Err` after `Begin` aborts a partially delivered image.
    End(Result<StreamEnd, ServeError>),
}

/// Summary carried by a successful [`StreamEvent::End`].
#[derive(Debug, Clone, Copy)]
pub struct StreamEnd {
    /// Tiles delivered.
    pub tiles: u64,
    /// The pixels are a salvage/prefix render, same meaning as
    /// [`DecodeOutcome::truncated`].
    pub truncated: bool,
    /// Render path used (output bytes are mode-invariant).
    pub mode: Mode,
    /// Image width in pixels (repeated from `Begin` so `End`-only
    /// consumers need no cross-event state).
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// The response was degraded (repeated from `Begin`).
    pub degraded: bool,
}

/// One row tile of a streamed response. The backing buffer is borrowed
/// from the shard worker's bounded tile pool; **dropping the tile returns
/// it**. A consumer that holds tiles (or stops consuming) therefore
/// backpressures the worker after [`TILE_POOL_CAP`] tiles in flight —
/// that bound, not the image height, is the peak response memory.
pub struct StreamTile {
    buf: Vec<u8>,
    pool: mpsc::Sender<Vec<u8>>,
}

impl StreamTile {
    /// The tile's interleaved RGB bytes (`rows * width * 3`).
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }
}

impl std::fmt::Debug for StreamTile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamTile")
            .field("len", &self.buf.len())
            .finish()
    }
}

impl Drop for StreamTile {
    fn drop(&mut self) {
        // Hand the allocation back to the worker's pool; if the worker is
        // gone the buffer simply frees.
        let _ = self.pool.send(std::mem::take(&mut self.buf));
    }
}

/// Receipt for a submitted request; [`Ticket::wait`] blocks until the
/// shard worker has decoded the image.
pub struct Ticket {
    rx: mpsc::Receiver<Result<ServeReply, ServeError>>,
}

impl Ticket {
    /// Block until the decode finishes and return its outcome. Streamed
    /// replies are reassembled into a whole image first.
    pub fn wait(self) -> Result<DecodeOutcome, ServeError> {
        self.wait_served().map(|s| s.outcome)
    }

    /// Block until the decode finishes and return the full server
    /// response, including the degradation flag. Streamed replies are
    /// reassembled into a whole image first (tile bytes are bit-identical
    /// to the whole-image decode, so the result is indistinguishable from
    /// a non-streamed response except for the zeroed timing breakdown).
    pub fn wait_served(self) -> Result<Served, ServeError> {
        match self.wait_reply()? {
            ServeReply::Whole(s) => Ok(s),
            ServeReply::Stream(stream) => assemble_stream(&stream),
        }
    }

    /// Block until the worker answers and return the raw reply — the only
    /// waiter that surfaces a streamed response without reassembly.
    pub fn wait_reply(self) -> Result<ServeReply, ServeError> {
        match self.rx.recv() {
            Ok(r) => r,
            Err(_) => Err(ServeError::WorkerGone),
        }
    }

    /// Non-blocking poll: `None` while the worker has not answered yet.
    /// A dead worker answers [`ServeError::WorkerGone`]. The event-driven
    /// front end pumps tickets with this from its poll loop.
    pub fn try_reply(&self) -> Option<Result<ServeReply, ServeError>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::WorkerGone)),
        }
    }
}

/// Reassemble a streamed reply into a whole [`Served`] response
/// ([`Ticket::wait_served`]'s compatibility path).
fn assemble_stream(stream: &ServedStream) -> Result<Served, ServeError> {
    let mut dims = (0usize, 0usize);
    let mut degraded = false;
    let mut data = Vec::new();
    loop {
        match stream.recv() {
            Some(StreamEvent::Begin {
                width,
                height,
                degraded: d,
            }) => {
                dims = (width as usize, height as usize);
                degraded = d;
                data.reserve(dims.0 * dims.1 * 3);
            }
            Some(StreamEvent::Tile(t)) => data.extend_from_slice(t.bytes()),
            Some(StreamEvent::End(Ok(end))) => {
                return Ok(Served {
                    outcome: DecodeOutcome {
                        image: RgbImage {
                            width: dims.0,
                            height: dims.1,
                            data,
                        },
                        ycc: None,
                        // A streamed decode reports no per-stage timing;
                        // the tile pipeline is not instrumented per stage.
                        times: Breakdown::default(),
                        trace: Trace::default(),
                        partition: None,
                        mode: end.mode,
                        truncated: end.truncated,
                    },
                    degraded: degraded || end.degraded,
                });
            }
            Some(StreamEvent::End(Err(e))) => return Err(e),
            None => return Err(ServeError::WorkerGone),
        }
    }
}

/// Per-request decode overrides, carried in-process via
/// [`SubmitOptions::options`] and on the wire via the v2 options block.
/// Every field defaults to "inherit the server's configuration". Overrides
/// compose with the server's own guards: `max_pixels` and `max_scans` take
/// the **minimum** of the request's and the server's values, and
/// `simd_cap` can only lower the session's dispatch level, never raise it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestOptions {
    /// Output format override. Planar YCC is in-process only — the wire
    /// protocol carries interleaved RGB, so a wire request overriding to
    /// planar is answered with an in-band error.
    pub format: Option<OutputFormat>,
    /// Strictness override (e.g. a client preferring tolerant salvage of
    /// damaged streams over a hard error).
    pub strictness: Option<Strictness>,
    /// Per-request decompression-bomb guard, min-composed with the
    /// server's.
    pub max_pixels: Option<u64>,
    /// Cap the kernel dispatch level for this request (reproducibility /
    /// debugging hook; output bytes are identical at every level).
    pub simd_cap: Option<SimdLevel>,
    /// Progressive scan prefix, min-composed with the server's pacing.
    pub max_scans: Option<u32>,
    /// The client accepts a row-tile streamed response. The worker streams
    /// when this is set and the effective output format is RGB; otherwise
    /// it falls back to a whole-image reply.
    pub streaming: bool,
}

/// Per-request submission options ([`ServeHandle::submit_with`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Complete-by deadline, relative to submission. `None` (default)
    /// disables SLO admission for this request.
    pub deadline: Option<Duration>,
    /// When the deadline is judged infeasible, degrade the request
    /// (progressive → scan-prefix render, baseline → tolerant salvage)
    /// instead of shedding it with [`ServeError::Busy`].
    pub degrade: bool,
    /// Per-request decode overrides (output format, strictness, guards,
    /// SIMD cap, scan prefix) and the streaming opt-in.
    pub options: RequestOptions,
}

/// Monotone per-shard counters, updated by the worker (and, for admission
/// sheds, the submitter), read by [`Server::stats`].
#[derive(Default)]
struct ShardCounters {
    requests: AtomicU64,
    batches: AtomicU64,
    decode_errors: AtomicU64,
    max_batch: AtomicU64,
    deadline_partials: AtomicU64,
    panics_recovered: AtomicU64,
    sessions_rebuilt: AtomicU64,
    breaker_trips: AtomicU64,
    shed: AtomicU64,
    degraded: AtomicU64,
    shutdown_drained: AtomicU64,
    streamed: AtomicU64,
    stream_tile_peak: AtomicU64,
}

/// A snapshot of one shard's counters plus its session's statistics.
#[derive(Debug, Clone, Copy)]
pub struct ShardStats {
    /// Requests decoded by this shard.
    pub requests: u64,
    /// Coalesced batches served (each covers one admission group).
    pub batches: u64,
    /// Requests whose decode returned an error.
    pub decode_errors: u64,
    /// Largest batch the admission loop coalesced.
    pub max_batch: u64,
    /// Progressive requests answered with a deadline-paced prefix render
    /// ([`crate::ServeConfig::scan_deadline`]).
    pub deadline_partials: u64,
    /// Decode panics confined to their request (answered with
    /// [`ServeError::Panicked`], worker kept serving).
    pub panics_recovered: u64,
    /// Sessions rebuilt after a panic poisoned the previous one.
    pub sessions_rebuilt: u64,
    /// Circuit-breaker trips (threshold consecutive panics, or a failed
    /// half-open probe).
    pub breaker_trips: u64,
    /// Requests shed with [`ServeError::Busy`] — deadline infeasible at
    /// admission, deadline already missed at decode, or breaker open.
    pub shed: u64,
    /// Requests served degraded instead of shed ([`SubmitOptions::degrade`]).
    pub degraded: u64,
    /// Queued requests drained with [`ServeError::Shutdown`] when the
    /// server shut down while this shard's breaker was open.
    pub shutdown_drained: u64,
    /// Requests answered as row-tile streams ([`RequestOptions::streaming`]).
    pub streamed: u64,
    /// High-water mark of stream tiles in flight at once from this shard —
    /// the observable proof that streamed responses buffer at most
    /// [`TILE_POOL_CAP`] tiles, not the whole image.
    pub stream_tile_peak: u64,
    /// The shard session's pool/cache statistics (allocations amortized,
    /// `Auto` evaluations, cache hits, evictions, cache occupancy),
    /// *cumulative across session rebuilds*.
    pub session: SessionStats,
}

/// Aggregated server statistics: one [`ShardStats`] per shard.
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Per-shard snapshots, in shard order.
    pub shards: Vec<ShardStats>,
}

impl ServerStats {
    /// Total requests decoded.
    pub fn requests(&self) -> u64 {
        self.shards.iter().map(|s| s.requests).sum()
    }

    /// Total coalesced batches served.
    pub fn batches(&self) -> u64 {
        self.shards.iter().map(|s| s.batches).sum()
    }

    /// Total requests whose decode errored.
    pub fn decode_errors(&self) -> u64 {
        self.shards.iter().map(|s| s.decode_errors).sum()
    }

    /// Mean images per batch — the admission loop's amortization factor.
    pub fn mean_batch(&self) -> f64 {
        let b = self.batches();
        if b == 0 {
            0.0
        } else {
            self.requests() as f64 / b as f64
        }
    }

    /// The kernel dispatch level the shard sessions decode at, when every
    /// shard agrees (they always do — shards are built identically from
    /// one config; `None` only for an empty shard list). The smoke test
    /// asserts this against the host's detected level so a silent fallback
    /// to scalar can't masquerade as a passing end-to-end run.
    pub fn simd_level(&self) -> Option<hetjpeg_core::SimdLevel> {
        let first = self.shards.first().map(|s| s.session.simd_level)?;
        self.shards
            .iter()
            .all(|s| s.session.simd_level == first)
            .then_some(first)
    }

    /// Total `Mode::Auto` decisions served from the per-shard caches.
    pub fn auto_cache_hits(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.session.pool.auto_cache_hits)
            .sum()
    }

    /// Total `Mode::Auto` decisions priced from the model.
    pub fn auto_evals(&self) -> u64 {
        self.shards.iter().map(|s| s.session.pool.auto_evals).sum()
    }

    /// Total `Mode::Auto` cache evictions (LRU, per-shard caps).
    pub fn auto_evictions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.session.pool.auto_evictions)
            .sum()
    }

    /// Total host→device transfers issued across all shard sessions. A
    /// `decode_batch` that coalesces several images' compacted payloads
    /// counts **one** transfer (PR 9); per-request serving counts one per
    /// GPU region transfer. Cumulative across session rebuilds, so a
    /// fault-induced mid-run rebuild never resets or double-counts it.
    pub fn h2d_transfers(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.session.pool.h2d_transfers)
            .sum()
    }

    /// Total bytes shipped host→device across all shard sessions
    /// (compacted payload + offset table + EOB sidecar under the default
    /// transfer layout). Cumulative across session rebuilds.
    pub fn h2d_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.session.pool.h2d_bytes).sum()
    }

    /// Speculation counters merged across shards (ISSUE 6): how often the
    /// restart-free parallel entropy path ran and what it cost, so the
    /// serve path can observe the speculative mode in production.
    pub fn speculation(&self) -> hetjpeg_jpeg::speculate::SpecStats {
        let mut total = hetjpeg_jpeg::speculate::SpecStats::default();
        for s in &self.shards {
            total.merge(&s.session.spec);
        }
        total
    }

    /// Total speculative segments (chunks) launched across shards.
    pub fn speculative_chunks(&self) -> u64 {
        self.speculation().chunks
    }

    /// Total convergence-prefix MCUs wasted by speculation across shards.
    pub fn speculation_wasted_mcus(&self) -> u64 {
        self.speculation().wasted_mcus
    }

    /// Total MCUs the stitch pass re-decoded exactly across shards.
    pub fn stitch_redecoded_mcus(&self) -> u64 {
        self.speculation().redecoded_mcus
    }

    /// Progressive-decode counters merged across shards (PR 7): scans
    /// decoded, refinement passes, and partial (prefix) renders — so the
    /// serve path can observe the multi-scan subsystem in production.
    pub fn progressive(&self) -> hetjpeg_jpeg::progressive::ProgressiveStats {
        let mut total = hetjpeg_jpeg::progressive::ProgressiveStats::default();
        for s in &self.shards {
            total.merge(&s.session.progressive);
        }
        total
    }

    /// Total progressive requests answered with a deadline-paced prefix
    /// render instead of the full scan sequence.
    pub fn deadline_partials(&self) -> u64 {
        self.shards.iter().map(|s| s.deadline_partials).sum()
    }

    /// Total decode panics confined to their request (PR 8).
    pub fn panics_recovered(&self) -> u64 {
        self.shards.iter().map(|s| s.panics_recovered).sum()
    }

    /// Total shard sessions rebuilt after a panic (PR 8).
    pub fn sessions_rebuilt(&self) -> u64 {
        self.shards.iter().map(|s| s.sessions_rebuilt).sum()
    }

    /// Total circuit-breaker trips (PR 8).
    pub fn breaker_trips(&self) -> u64 {
        self.shards.iter().map(|s| s.breaker_trips).sum()
    }

    /// Total requests shed with [`ServeError::Busy`] (PR 8).
    pub fn shed(&self) -> u64 {
        self.shards.iter().map(|s| s.shed).sum()
    }

    /// Total requests served degraded instead of shed (PR 8).
    pub fn degraded(&self) -> u64 {
        self.shards.iter().map(|s| s.degraded).sum()
    }

    /// Total queued requests drained with [`ServeError::Shutdown`] (PR 8).
    pub fn shutdown_drained(&self) -> u64 {
        self.shards.iter().map(|s| s.shutdown_drained).sum()
    }

    /// Total requests answered as row-tile streams.
    pub fn streamed(&self) -> u64 {
        self.shards.iter().map(|s| s.streamed).sum()
    }

    /// Highest number of stream tiles any shard ever had in flight at
    /// once — bounded by [`TILE_POOL_CAP`] by construction; the streaming
    /// tests assert it to prove peak response buffering stays tile-sized.
    pub fn stream_tile_peak(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.stream_tile_peak)
            .max()
            .unwrap_or(0)
    }
}

/// Circuit-breaker states (`Breaker::state`).
const BREAKER_CLOSED: u8 = 0;
const BREAKER_OPEN: u8 = 1;
const BREAKER_HALF_OPEN: u8 = 2;

/// Per-shard circuit breaker. Only the shard's own worker mutates it (the
/// worker is single-threaded per shard); submitters only read
/// [`Breaker::is_open`] to route around tripped shards, so plain atomic
/// loads/stores suffice — no CAS protocol needed.
struct Breaker {
    /// Consecutive decode *panics* (decode errors don't count — a
    /// malformed request is the client's fault, not the shard's).
    consecutive: AtomicU32,
    state: AtomicU8,
    /// When an open breaker may half-open, in µs since the server epoch.
    open_until_us: AtomicU64,
    /// Current cooldown; doubles on each trip, reset on close.
    cooldown_us: AtomicU64,
}

/// What the worker's breaker gate says about the next request.
enum Gate {
    /// Serve it (normally, or as the half-open probe).
    Admit,
    /// Fail-fast: the breaker is open for this much longer.
    Open(Duration),
}

impl Breaker {
    fn new(base_cooldown_us: u64) -> Breaker {
        Breaker {
            consecutive: AtomicU32::new(0),
            state: AtomicU8::new(BREAKER_CLOSED),
            open_until_us: AtomicU64::new(0),
            cooldown_us: AtomicU64::new(base_cooldown_us),
        }
    }

    /// Worker-side gate, consulted before each decode.
    fn gate(&self, now_us: u64) -> Gate {
        match self.state.load(Ordering::Acquire) {
            BREAKER_OPEN => {
                let until = self.open_until_us.load(Ordering::Acquire);
                if now_us >= until {
                    // Cooldown elapsed: this request is the probe.
                    self.state.store(BREAKER_HALF_OPEN, Ordering::Release);
                    Gate::Admit
                } else {
                    Gate::Open(Duration::from_micros(until - now_us))
                }
            }
            _ => Gate::Admit,
        }
    }

    /// Submitter-side read-only check for routing.
    fn is_open(&self, now_us: u64) -> bool {
        self.state.load(Ordering::Acquire) == BREAKER_OPEN
            && now_us < self.open_until_us.load(Ordering::Acquire)
    }

    /// A decode completed without panicking (decode errors included).
    fn on_success(&self, base_cooldown_us: u64) {
        self.consecutive.store(0, Ordering::Release);
        if self.state.load(Ordering::Acquire) != BREAKER_CLOSED {
            // Half-open probe succeeded: close and forget the backoff.
            self.cooldown_us.store(base_cooldown_us, Ordering::Release);
            self.state.store(BREAKER_CLOSED, Ordering::Release);
        }
    }

    /// A decode panicked; returns true when this trips (or re-trips) the
    /// breaker. A failed half-open probe re-trips immediately regardless
    /// of the threshold.
    fn on_panic(&self, threshold: u32, base_cooldown_us: u64, now_us: u64) -> bool {
        let n = self.consecutive.fetch_add(1, Ordering::AcqRel) + 1;
        let probe_failed = self.state.load(Ordering::Acquire) == BREAKER_HALF_OPEN;
        if !probe_failed && n < threshold {
            return false;
        }
        let cd = self.cooldown_us.load(Ordering::Acquire);
        self.open_until_us.store(now_us + cd, Ordering::Release);
        self.cooldown_us
            .store((cd * 2).min(base_cooldown_us * 64), Ordering::Release);
        self.state.store(BREAKER_OPEN, Ordering::Release);
        true
    }
}

/// Per-shard load estimate and calibration for SLO admission. The queue
/// charge is written by submitters and credited back by the worker (hence
/// signed — the two races harmlessly); the calibration EWMAs are written
/// only by the shard's own worker.
#[derive(Default)]
struct ShardLoad {
    /// Estimated microseconds of work queued on (or running in) the shard.
    queued_us: AtomicI64,
    /// EWMA of wall-seconds per §5.1 virtual second (f64 bits; 0 =
    /// uncalibrated).
    wall_per_virtual: AtomicU64,
    /// EWMA of compressed bytes decoded per wall second (f64 bits; 0 =
    /// uncalibrated). Mirrors the worker's [`Pacer`] for admission use.
    bytes_per_sec: AtomicU64,
}

impl ShardLoad {
    fn queued(&self) -> u64 {
        self.queued_us.load(Ordering::Acquire).max(0) as u64
    }

    fn charge(&self, us: u64) {
        self.queued_us.fetch_add(us as i64, Ordering::AcqRel);
    }

    fn credit(&self, us: u64) {
        self.queued_us.fetch_sub(us as i64, Ordering::AcqRel);
    }

    fn ratio(&self) -> Option<f64> {
        let v = f64::from_bits(self.wall_per_virtual.load(Ordering::Acquire));
        (v > 0.0).then_some(v)
    }

    fn rate(&self) -> Option<f64> {
        let v = f64::from_bits(self.bytes_per_sec.load(Ordering::Acquire));
        (v > 0.0).then_some(v)
    }

    fn observe_ratio(&self, obs: f64) {
        if !obs.is_finite() || obs <= 0.0 {
            return;
        }
        let next = match self.ratio() {
            Some(prev) => 0.7 * prev + 0.3 * obs,
            None => obs,
        };
        self.wall_per_virtual
            .store(next.to_bits(), Ordering::Release);
    }

    fn publish_rate(&self, rate: f64) {
        if rate.is_finite() && rate > 0.0 {
            self.bytes_per_sec.store(rate.to_bits(), Ordering::Release);
        }
    }
}

/// Session statistics retired by panic-recovery rebuilds: the cumulative
/// history of every previous session of one shard, folded into stats
/// snapshots so a rebuild never resets the shard's observable accounting.
#[derive(Default)]
struct RetiredTotals {
    pool: hetjpeg_core::PoolStats,
    spec: hetjpeg_jpeg::speculate::SpecStats,
    progressive: hetjpeg_jpeg::progressive::ProgressiveStats,
}

/// Everything needed to (re)build one shard's `Decoder` session — kept so
/// panic recovery can replace a poisoned session with an identical fresh
/// one.
struct SessionSpec {
    platform: hetjpeg_core::Platform,
    model: hetjpeg_core::model::PerformanceModel,
    threads: usize,
    auto_cache_cap: usize,
}

impl SessionSpec {
    fn build(&self) -> Result<Decoder, hetjpeg_core::BuildError> {
        Decoder::builder()
            .platform(self.platform.clone())
            .model(self.model.clone())
            .threads(self.threads)
            .auto_cache_cap(self.auto_cache_cap)
            .build()
    }
}

struct ShardState {
    /// The shard's current session. The worker holds its own working
    /// clone; this shared slot exists so [`Server::stats`] snapshots the
    /// *current* session even across rebuilds.
    decoder: Mutex<Arc<Decoder>>,
    retired: Mutex<RetiredTotals>,
    counters: ShardCounters,
    breaker: Breaker,
    load: ShardLoad,
    spec: SessionSpec,
}

struct Inner {
    /// Intake side of every shard queue. `None` once shutdown began —
    /// taking the senders is what lets the workers drain and exit.
    senders: Mutex<Option<Vec<crossbeam::channel::Sender<Request>>>>,
    shards: Vec<ShardState>,
    /// Set before intake closes; workers draining a breaker-open queue
    /// answer [`ServeError::Shutdown`] instead of `Busy` once this is set.
    shutting_down: AtomicBool,
    /// Server birth instant; breaker timestamps are µs offsets from it.
    epoch: Instant,
    plan: Option<Arc<FaultPlan>>,
    breaker_threshold: u32,
    breaker_base_us: u64,
    opts: DecodeOptions,
    scan_deadline: Option<Duration>,
}

impl Inner {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// The server: a pool of shard workers plus the shared intake state.
///
/// Constructed by [`Server::start`]; hand out [`ServeHandle`]s (cheap
/// clones) to submitters. [`Server::shutdown`] stops intake, drains every
/// in-flight batch, joins the workers and returns the final statistics.
/// Dropping the server without calling `shutdown` performs the same
/// drain-and-join.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

/// Cloneable, thread-safe submission handle to a running [`Server`].
#[derive(Clone)]
pub struct ServeHandle {
    inner: Arc<Inner>,
}

/// Install (once per process) a panic hook that stays silent for panics
/// the shard workers are about to catch and convert into error replies —
/// the default hook's backtrace spew would otherwise drown test output —
/// and delegates every other panic to the previously installed hook.
fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_REPORT.with(|s| s.get()) {
                prev(info);
            }
        }));
    });
}

thread_local! {
    static SUPPRESS_PANIC_REPORT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// RAII guard that marks panics on this thread as handled (caught and
/// converted to error replies) for the quiet panic hook.
struct SuppressPanicReport;

impl SuppressPanicReport {
    fn new() -> SuppressPanicReport {
        SUPPRESS_PANIC_REPORT.with(|s| s.set(true));
        SuppressPanicReport
    }
}

impl Drop for SuppressPanicReport {
    fn drop(&mut self) {
        SUPPRESS_PANIC_REPORT.with(|s| s.set(false));
    }
}

impl Server {
    /// Validate `config`, build one `Decoder` session per shard and spawn
    /// the shard workers.
    pub fn start(config: ServeConfig) -> Result<Server, ServeError> {
        if config.shards == 0 {
            return Err(ServeError::Config(ConfigError::ZeroShards));
        }
        if config.queue_depth == 0 {
            return Err(ServeError::Config(ConfigError::ZeroQueueDepth));
        }
        if config.max_batch == 0 {
            return Err(ServeError::Config(ConfigError::ZeroMaxBatch));
        }
        if config.breaker_threshold == 0 {
            return Err(ServeError::Config(ConfigError::ZeroBreakerThreshold));
        }
        let plan = match config.fault_plan {
            Some(plan) => Some(plan),
            None => FaultPlan::from_env().map_err(|e| ServeError::Config(ConfigError::Fault(e)))?,
        };
        install_quiet_panic_hook();

        let breaker_base_us = config.breaker_cooldown.as_micros().max(1) as u64;
        let mut senders = Vec::with_capacity(config.shards);
        let mut receivers = Vec::with_capacity(config.shards);
        let mut shards = Vec::with_capacity(config.shards);
        for _ in 0..config.shards {
            let spec = SessionSpec {
                platform: config.platform.clone(),
                model: config
                    .model
                    .clone()
                    .unwrap_or_else(|| config.platform.untrained_model()),
                threads: config.threads,
                auto_cache_cap: config.auto_cache_cap,
            };
            let decoder = Arc::new(
                spec.build()
                    .map_err(|e| ServeError::Config(ConfigError::Session(e)))?,
            );
            let (tx, rx) = crossbeam::channel::bounded::<Request>(config.queue_depth);
            senders.push(tx);
            receivers.push(rx);
            shards.push(ShardState {
                decoder: Mutex::new(decoder),
                retired: Mutex::new(RetiredTotals::default()),
                counters: ShardCounters::default(),
                breaker: Breaker::new(breaker_base_us),
                load: ShardLoad::default(),
                spec,
            });
        }

        let inner = Arc::new(Inner {
            senders: Mutex::new(Some(senders)),
            shards,
            shutting_down: AtomicBool::new(false),
            epoch: Instant::now(),
            plan,
            breaker_threshold: config.breaker_threshold,
            breaker_base_us,
            opts: config.options,
            scan_deadline: config.scan_deadline,
        });

        let mut workers = Vec::with_capacity(config.shards);
        for (i, rx) in receivers.into_iter().enumerate() {
            let worker_inner = Arc::clone(&inner);
            let max_batch = config.max_batch;
            let flush_after = config.flush_after;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("hetjpeg-shard-{i}"))
                    .spawn(move || shard_worker(&worker_inner, i, &rx, max_batch, flush_after))
                    .expect("spawn shard worker"),
            );
        }

        Ok(Server { inner, workers })
    }

    /// A cloneable submission handle bound to this server.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Snapshot of every shard's counters and session statistics. Session
    /// statistics are cumulative across panic-recovery rebuilds: retired
    /// sessions' totals are folded into the current session's.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            shards: self
                .inner
                .shards
                .iter()
                .map(|s| {
                    let decoder = Arc::clone(&s.decoder.lock().expect("shard decoder slot"));
                    let mut session = decoder.stats();
                    let retired = s.retired.lock().expect("shard retired totals");
                    session.pool.merge(&retired.pool);
                    session.spec.merge(&retired.spec);
                    session.progressive.merge(&retired.progressive);
                    ShardStats {
                        requests: s.counters.requests.load(Ordering::Relaxed),
                        batches: s.counters.batches.load(Ordering::Relaxed),
                        decode_errors: s.counters.decode_errors.load(Ordering::Relaxed),
                        max_batch: s.counters.max_batch.load(Ordering::Relaxed),
                        deadline_partials: s.counters.deadline_partials.load(Ordering::Relaxed),
                        panics_recovered: s.counters.panics_recovered.load(Ordering::Relaxed),
                        sessions_rebuilt: s.counters.sessions_rebuilt.load(Ordering::Relaxed),
                        breaker_trips: s.counters.breaker_trips.load(Ordering::Relaxed),
                        shed: s.counters.shed.load(Ordering::Relaxed),
                        degraded: s.counters.degraded.load(Ordering::Relaxed),
                        shutdown_drained: s.counters.shutdown_drained.load(Ordering::Relaxed),
                        streamed: s.counters.streamed.load(Ordering::Relaxed),
                        stream_tile_peak: s.counters.stream_tile_peak.load(Ordering::Relaxed),
                        session,
                    }
                })
                .collect(),
        }
    }

    /// Graceful shutdown: stop admitting, let every worker drain the
    /// requests already queued (their replies are still delivered — as
    /// decodes on healthy shards, as explicit [`ServeError::Shutdown`]
    /// errors on breaker-open ones), join the workers, and return the
    /// final statistics.
    pub fn shutdown(mut self) -> ServerStats {
        self.close_and_join();
        self.stats()
    }

    fn close_and_join(&mut self) {
        // Order matters: workers must observe the flag before the queue
        // disconnect so breaker-open shards drain with Shutdown (not Busy)
        // errors.
        self.inner.shutting_down.store(true, Ordering::Release);
        // Taking the senders closes every queue once outstanding submit()
        // clones finish their sends; workers then drain buffered requests
        // and exit on the disconnect.
        *self.inner.senders.lock().expect("server intake lock") = None;
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

impl ServeHandle {
    /// Submit an image for decoding; returns a [`Ticket`] to await.
    ///
    /// Admission prefers the image's home shard (shape-keyed, cache-hot)
    /// but never serializes a homogeneous workload behind one worker: when
    /// the home queue is full (or its circuit breaker is open) the request
    /// spills to the next eligible shard with room, and only when *every*
    /// queue is unavailable does the submit block on the home shard
    /// (backpressure).
    pub fn submit(&self, data: Vec<u8>) -> Result<Ticket, ServeError> {
        self.submit_with(data, SubmitOptions::default())
    }

    /// [`Self::submit`] with per-request SLO options. With a deadline set,
    /// admission estimates the home shard's completion time (queued work
    /// plus this request's predicted cost); infeasible requests are shed
    /// with [`ServeError::Busy`] — or admitted degraded when
    /// [`SubmitOptions::degrade`] opts in. An uncalibrated shard admits
    /// optimistically; the worker still sheds or degrades requests whose
    /// deadline has already passed when they reach the front of the queue,
    /// so an admission mistake delays a request but never lets it decode
    /// in full past its deadline silently.
    pub fn submit_with(&self, data: Vec<u8>, options: SubmitOptions) -> Result<Ticket, ServeError> {
        self.submit_impl(data, options, true)
    }

    /// [`Self::submit_with`] that never blocks the caller: when every
    /// eligible shard queue is full the request is rejected with
    /// [`ServeError::Busy`] (retry hint from the home shard's estimated
    /// drain time) instead of falling back to a blocking send. The
    /// event-driven front end submits with this from its single poll
    /// thread, which must never park on a full queue — backpressure is
    /// surfaced to the client as an in-band `Busy` frame instead.
    pub fn submit_nonblocking(
        &self,
        data: Vec<u8>,
        options: SubmitOptions,
    ) -> Result<Ticket, ServeError> {
        self.submit_impl(data, options, false)
    }

    fn submit_impl(
        &self,
        data: Vec<u8>,
        options: SubmitOptions,
        block: bool,
    ) -> Result<Ticket, ServeError> {
        let shards = self.inner.shards.len();
        let base = route(&data, shards);
        let home = &self.inner.shards[base];

        // SLO admission: price the request against the home shard.
        let mut predicted_virtual_us = None;
        let mut estimate_us = None;
        if options.deadline.is_some() {
            if hetjpeg_jpeg::progressive::is_progressive(&data) {
                // `Decoder::predict` prices baseline pipelines only; for
                // progressive sources the shard's measured byte throughput
                // is the estimator (same signal as scan pacing).
                estimate_us = home
                    .load
                    .rate()
                    .map(|rate| (data.len() as f64 / rate * 1e6) as u64);
            } else {
                let decoder = Arc::clone(&home.decoder.lock().expect("shard decoder slot"));
                if let Ok(d) = decoder.predict(&data) {
                    let virtual_us = d
                        .predictions
                        .iter()
                        .find(|p| p.mode == d.mode)
                        .map(|p| (p.seconds * 1e6) as u64);
                    predicted_virtual_us = virtual_us;
                    estimate_us = match (virtual_us, home.load.ratio()) {
                        (Some(v), Some(r)) => Some((v as f64 * r) as u64),
                        _ => None,
                    };
                }
            }
        }
        let mut degrade_now = false;
        if let (Some(deadline), Some(est)) = (options.deadline, estimate_us) {
            let completion_us = home.load.queued() + est;
            if completion_us > deadline.as_micros() as u64 {
                if options.degrade {
                    degrade_now = true;
                } else {
                    home.counters.shed.fetch_add(1, Ordering::Relaxed);
                    return Err(ServeError::Busy {
                        retry_after: Duration::from_micros(home.load.queued().max(1000)),
                    });
                }
            }
        }

        let charged_us = estimate_us.unwrap_or(0);
        let (reply, rx) = mpsc::channel();
        let mut req = Request {
            data,
            reply,
            options: options.options,
            deadline: options.deadline.map(|d| Instant::now() + d),
            degrade: options.degrade,
            degrade_now,
            predicted_virtual_us,
            charged_us,
        };
        let now_us = self.inner.now_us();
        // The non-blocking pass runs under the intake lock (try_send never
        // blocks); the fallback blocking send happens outside it so a
        // backpressured submitter cannot serialize other submitters or
        // deadlock shutdown.
        let tx = {
            let guard = self.inner.senders.lock().expect("server intake lock");
            let senders = match guard.as_ref() {
                Some(senders) => senders,
                None => return Err(ServeError::ShuttingDown),
            };
            let mut offset = 0;
            loop {
                // Nothing non-blocking worked (every queue full or
                // breaker-open). A blocking submitter falls back to a
                // blocking send on the home shard outside the lock (an
                // open home breaker fail-fasts the request from the
                // worker side); a non-blocking submitter sheds with Busy.
                if offset == shards {
                    if block {
                        break senders[base].clone();
                    }
                    home.counters.shed.fetch_add(1, Ordering::Relaxed);
                    return Err(ServeError::Busy {
                        retry_after: Duration::from_micros(home.load.queued().max(1000)),
                    });
                }
                let idx = (base + offset) % shards;
                // Route around tripped shards; their worker would only
                // fail-fast the request anyway.
                if self.inner.shards[idx].breaker.is_open(now_us) {
                    offset += 1;
                    continue;
                }
                match senders[idx].try_send(req) {
                    Ok(()) => {
                        self.inner.shards[idx].load.charge(charged_us);
                        return Ok(Ticket { rx });
                    }
                    Err(crossbeam::channel::TrySendError::Full(r)) => {
                        req = r;
                        offset += 1;
                    }
                    Err(crossbeam::channel::TrySendError::Disconnected(_)) => {
                        return Err(ServeError::ShuttingDown)
                    }
                }
            }
        };
        tx.send(req).map_err(|_| ServeError::ShuttingDown)?;
        self.inner.shards[base].load.charge(charged_us);
        Ok(Ticket { rx })
    }

    /// Synchronous round trip: submit and wait.
    pub fn decode(&self, data: &[u8]) -> Result<DecodeOutcome, ServeError> {
        self.submit(data.to_vec())?.wait()
    }

    /// Synchronous round trip with SLO options, returning the full
    /// [`Served`] response (outcome + degradation flag).
    pub fn decode_with(&self, data: &[u8], options: SubmitOptions) -> Result<Served, ServeError> {
        self.submit_with(data.to_vec(), options)?.wait_served()
    }

    /// The shard this image would be routed to under shape-keyed routing
    /// (before overflow spill) — the diagnostic tests and fault plans use
    /// to aim shard-targeted rules.
    pub fn home_shard(&self, data: &[u8]) -> usize {
        route(data, self.inner.shards.len())
    }

    /// The active fault-injection plan, when one was configured — the
    /// serving loops use it to wrap connection readers in
    /// [`crate::fault::ChaosReader`] when the plan has read faults.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.inner.plan.clone()
    }
}

/// Maximum row tiles one shard may have in flight to stream consumers at
/// once. This bound — not the image height — is a streamed response's peak
/// pixel memory: the worker blocks (briefly) for a returned buffer rather
/// than allocating a fifth tile.
pub const TILE_POOL_CAP: usize = 4;

/// How long the worker waits for a stream consumer to return a tile
/// buffer before declaring the consumer stalled and aborting the stream.
/// Keeps a dead-slow (or wedged) client from pinning a shard worker
/// forever; the consumer sees a terminal error event.
const TILE_STALL_LIMIT: Duration = Duration::from_secs(10);

/// The per-worker pool of row-tile buffers behind [`StreamTile`]:
/// at most [`TILE_POOL_CAP`] buffers circulate between the worker and the
/// stream consumer; dropped tiles return their allocation through the
/// channel.
struct TilePool {
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
    free: Vec<Vec<u8>>,
    in_flight: usize,
}

impl TilePool {
    fn new() -> TilePool {
        let (tx, rx) = mpsc::channel();
        TilePool {
            tx,
            rx,
            free: Vec::new(),
            in_flight: 0,
        }
    }

    /// Take a buffer, blocking (bounded by [`TILE_STALL_LIMIT`]) when the
    /// cap is reached until the consumer returns one — the backpressure
    /// that bounds peak response memory. `None` means the consumer
    /// stalled; the caller aborts the stream.
    fn acquire(&mut self, counters: &ShardCounters) -> Option<Vec<u8>> {
        while let Ok(buf) = self.rx.try_recv() {
            self.in_flight -= 1;
            self.free.push(buf);
        }
        if self.in_flight >= TILE_POOL_CAP {
            match self.rx.recv_timeout(TILE_STALL_LIMIT) {
                Ok(buf) => {
                    self.in_flight -= 1;
                    self.free.push(buf);
                }
                // Disconnect is impossible (the pool holds its own sender);
                // a timeout means the consumer stalled.
                Err(_) => return None,
            }
        }
        self.in_flight += 1;
        counters
            .stream_tile_peak
            .fetch_max(self.in_flight as u64, Ordering::Relaxed);
        Some(self.free.pop().unwrap_or_default())
    }
}

/// Measured decode throughput of one shard, in compressed bytes per
/// second, smoothed over recent requests. Seeds the prediction behind
/// [`crate::ServeConfig::scan_deadline`] and the progressive-admission
/// estimate: whole-request throughput is a deliberately coarse proxy (it
/// folds entropy *and* render cost into one rate), but it needs no model
/// training and self-corrects as the shard observes its own workload.
#[derive(Default)]
struct Pacer {
    bytes_per_sec: Option<f64>,
}

impl Pacer {
    fn observe(&mut self, bytes: usize, took: std::time::Duration) {
        let secs = took.as_secs_f64();
        if secs <= 0.0 {
            return;
        }
        let obs = bytes as f64 / secs;
        self.bytes_per_sec = Some(match self.bytes_per_sec {
            Some(prev) => 0.7 * prev + 0.3 * obs,
            None => obs,
        });
    }
}

/// Decide whether a progressive request must be paced: `Some(k)` means
/// "decode only the first `k` scans" — the largest prefix whose predicted
/// time (scan bytes over the shard's measured throughput) fits the budget,
/// never fewer than the first scan (a DC render is the floor the server
/// promises). `None` means the full scan script fits (or the request is
/// not progressive, or no throughput has been measured yet).
fn paced_scan_limit(
    data: &[u8],
    budget: std::time::Duration,
    bytes_per_sec: Option<f64>,
) -> Option<usize> {
    let rate = bytes_per_sec?;
    if !hetjpeg_jpeg::progressive::is_progressive(data) {
        return None;
    }
    let parsed = hetjpeg_jpeg::progressive::parse_progressive(data).ok()?;
    let total: usize = parsed.scans.iter().map(|s| s.data.len()).sum();
    let budget_bytes = rate * budget.as_secs_f64();
    if total as f64 <= budget_bytes {
        return None;
    }
    let mut cum = 0usize;
    let mut k = 0usize;
    for scan in &parsed.scans {
        cum += scan.data.len();
        if cum as f64 <= budget_bytes {
            k += 1;
        } else {
            break;
        }
    }
    Some(k.max(1))
}

/// Extract a human-readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The per-shard consumer: block for the first request, coalesce until the
/// batch is full or the flush deadline passes, then serve each request of
/// the group through the full resilience pipeline ([`serve_one`]).
fn shard_worker(
    inner: &Inner,
    shard: usize,
    rx: &crossbeam::channel::Receiver<Request>,
    max_batch: usize,
    flush_after: Duration,
) {
    let state = &inner.shards[shard];
    let mut decoder = Arc::clone(&state.decoder.lock().expect("shard decoder slot"));
    let mut batch: Vec<Request> = Vec::with_capacity(max_batch);
    let mut pacer = Pacer::default();
    let mut tiles = TilePool::new();
    loop {
        match rx.recv() {
            Ok(first) => batch.push(first),
            // Intake closed and queue drained: the shard is done.
            Err(_) => return,
        }
        let mut flush_at = cut_flush(Instant::now() + flush_after, &batch[0]);
        while batch.len() < max_batch {
            let now = Instant::now();
            if now >= flush_at {
                break;
            }
            match rx.recv_timeout(flush_at - now) {
                Ok(r) => {
                    flush_at = cut_flush(flush_at, &r);
                    batch.push(r);
                }
                Err(RecvTimeoutError::Timeout) => break,
                // Disconnected mid-coalesce: decode what we have, then the
                // next outer recv() observes the disconnect and exits.
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        state.counters.batches.fetch_add(1, Ordering::Relaxed);
        state
            .counters
            .requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        state
            .counters
            .max_batch
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
        for req in batch.drain(..) {
            serve_one(inner, shard, &mut decoder, &mut pacer, &mut tiles, req);
        }
    }
}

/// Cut the coalescing window for a deadline-bearing admission: the flush
/// fires no later than the member's deadline minus its estimated decode
/// time, so a request the admission gate already priced as feasible never
/// burns its remaining slack waiting for batch company. Without the cut, a
/// `flush_after` longer than the request's slack would hold it until the
/// late recheck in [`serve_one`] sheds or degrades it — a silent SLO miss
/// the server itself manufactured.
fn cut_flush(current: Instant, req: &Request) -> Instant {
    /// Scheduler-jitter headroom on top of the estimated decode time: a
    /// `recv_timeout` wakeup a few milliseconds late must not turn a
    /// feasible request into a late-recheck degrade.
    const FLUSH_MARGIN: Duration = Duration::from_millis(5);
    match req.deadline {
        Some(dl) => {
            let cut = dl
                .checked_sub(Duration::from_micros(req.charged_us) + FLUSH_MARGIN)
                .unwrap_or(dl);
            current.min(cut)
        }
        None => current,
    }
}

/// Fold a request's per-request overrides into the server's base decode
/// options. Guards compose conservatively: `max_pixels`/`max_scans` take
/// the minimum of request and server values, and the SIMD cap can only
/// lower the level the decode would otherwise run at.
fn apply_request_options(opts: &mut DecodeOptions, ro: &RequestOptions, session_level: SimdLevel) {
    if let Some(f) = ro.format {
        opts.format = f;
    }
    if let Some(s) = ro.strictness {
        opts.strictness = s;
    }
    if let Some(mp) = ro.max_pixels {
        let mp = mp.min(usize::MAX as u64) as usize;
        opts.max_pixels = Some(opts.max_pixels.map_or(mp, |m| m.min(mp)));
    }
    if let Some(cap) = ro.simd_cap {
        let base = opts.force_simd_level.unwrap_or(if opts.force_scalar_simd {
            SimdLevel::Scalar
        } else {
            session_level
        });
        opts.force_simd_level = Some(base.min(cap));
    }
    if let Some(ms) = ro.max_scans {
        let ms = ms.max(1) as usize;
        opts.max_scans = Some(opts.max_scans.map_or(ms, |m| m.min(ms)));
    }
}

/// Serve one request end to end: fault sites, breaker gate, late-deadline
/// shed/degrade, the `catch_unwind`-isolated decode, panic recovery with
/// session rebuild, calibration, and the reply.
fn serve_one(
    inner: &Inner,
    shard: usize,
    decoder: &mut Arc<Decoder>,
    pacer: &mut Pacer,
    tiles: &mut TilePool,
    req: Request,
) {
    let state = &inner.shards[shard];
    let counters = &state.counters;

    // Fault site: artificial per-request latency (a stalled worker).
    if let Some(plan) = &inner.plan {
        if let Some(d) = plan.latency(Some(shard)) {
            std::thread::sleep(d);
        }
    }

    // Circuit-breaker gate: an open shard fail-fasts its queue instead of
    // decoding on a session that keeps panicking.
    if let Gate::Open(retry_after) = state.breaker.gate(inner.now_us()) {
        let reply = if inner.shutting_down.load(Ordering::Acquire) {
            counters.shutdown_drained.fetch_add(1, Ordering::Relaxed);
            Err(ServeError::Shutdown)
        } else {
            counters.shed.fetch_add(1, Ordering::Relaxed);
            Err(ServeError::Busy { retry_after })
        };
        let _ = req.reply.send(reply);
        state.load.credit(req.charged_us);
        return;
    }

    // Late-deadline check: admission was optimistic (or the queue slower
    // than estimated) and the deadline has already passed. Shed or degrade
    // now — never decode in full past a deadline silently.
    let mut degrade_now = req.degrade_now;
    if let Some(dl) = req.deadline {
        if Instant::now() >= dl {
            if req.degrade {
                degrade_now = true;
            } else {
                counters.shed.fetch_add(1, Ordering::Relaxed);
                let _ = req.reply.send(Err(ServeError::Busy {
                    retry_after: Duration::from_micros(state.load.queued().max(1000)),
                }));
                state.load.credit(req.charged_us);
                return;
            }
        }
    }

    // Assemble this request's decode options: base config, per-request
    // overrides, scan-deadline pacing, degradation ladder, alloc-cap
    // fault. Overrides come first so the ladder min-composes onto them.
    let mut opts = inner.opts;
    apply_request_options(&mut opts, &req.options, decoder.simd_level());
    let mut scan_limit = inner
        .scan_deadline
        .and_then(|budget| paced_scan_limit(&req.data, budget, pacer.bytes_per_sec));
    let paced = scan_limit.is_some();
    let mut degraded = false;
    if degrade_now {
        if hetjpeg_jpeg::progressive::is_progressive(&req.data) {
            // Degrade to the largest scan prefix the remaining budget can
            // absorb; a missed deadline floors at the DC-only render.
            let remaining = req
                .deadline
                .map(|d| d.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::ZERO);
            let k = if remaining.is_zero() {
                Some(1)
            } else {
                paced_scan_limit(&req.data, remaining, pacer.bytes_per_sec)
            };
            if let Some(k) = k {
                scan_limit = Some(scan_limit.map_or(k, |l| l.min(k)));
                degraded = true;
            }
        } else {
            opts = opts.tolerant();
            degraded = true;
        }
    }
    if let Some(k) = scan_limit {
        opts = opts.max_scans(match opts.max_scans {
            Some(m) => m.min(k),
            None => k,
        });
    }
    if let Some(plan) = &inner.plan {
        // Fault site: allocation-cap failure — flows the decoder's real
        // decompression-bomb guard path, not a simulated error.
        if plan.fires(FaultSite::AllocCap, Some(shard)) {
            opts = opts.max_pixels(1);
        }
    }

    // Fault site: decode panic, injected inside the session lock so it
    // poisons the session exactly as a real mid-decode panic would.
    let inject_panic = inner
        .plan
        .as_ref()
        .is_some_and(|p| p.fires(FaultSite::Panic, Some(shard)));

    // Streaming opt-in with a streamable (RGB) effective format: answer
    // with a row-tile stream instead of a whole-image buffer.
    if req.options.streaming && opts.format == OutputFormat::Rgb {
        serve_streaming(
            inner,
            shard,
            decoder,
            pacer,
            tiles,
            req,
            opts,
            degraded,
            paced,
            inject_panic,
        );
        return;
    }

    let t0 = Instant::now();
    let result = {
        let _quiet = SuppressPanicReport::new();
        let d = &**decoder;
        let data = &req.data;
        catch_unwind(AssertUnwindSafe(move || {
            if inject_panic {
                d.inject_panic("injected decode panic");
            }
            d.decode(data, opts)
        }))
    };
    match result {
        Ok(out) => {
            state.breaker.on_success(inner.breaker_base_us);
            observe_calibration(state, pacer, &req, t0.elapsed());
            match out {
                Ok(outcome) => {
                    if paced {
                        counters.deadline_partials.fetch_add(1, Ordering::Relaxed);
                    }
                    if degraded {
                        counters.degraded.fetch_add(1, Ordering::Relaxed);
                    }
                    let _ = req
                        .reply
                        .send(Ok(ServeReply::Whole(Served { outcome, degraded })));
                }
                Err(e) => {
                    counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = req.reply.send(Err(ServeError::Decode(e)));
                }
            }
        }
        Err(payload) => {
            let msg = recover_panic(inner, shard, decoder, payload);
            let _ = req.reply.send(Err(ServeError::Panicked(msg)));
        }
    }
    state.load.credit(req.charged_us);
}

/// Feed one completed decode's wall time into the shard's pacing and
/// admission calibration (shared by the whole-image and streaming paths).
fn observe_calibration(state: &ShardState, pacer: &mut Pacer, req: &Request, wall: Duration) {
    pacer.observe(req.data.len(), wall);
    if let Some(rate) = pacer.bytes_per_sec {
        state.load.publish_rate(rate);
    }
    if let Some(v_us) = req.predicted_virtual_us {
        if v_us > 0 {
            state
                .load
                .observe_ratio(wall.as_micros() as f64 / v_us as f64);
        }
    }
}

/// Panic bookkeeping shared by the whole-image and streaming paths:
/// count the recovery, rebuild the poisoned session (retiring its
/// statistics), drive the breaker, and return the panic message.
fn recover_panic(
    inner: &Inner,
    shard: usize,
    decoder: &mut Arc<Decoder>,
    payload: Box<dyn std::any::Any + Send>,
) -> String {
    let state = &inner.shards[shard];
    let counters = &state.counters;
    let msg = panic_message(payload);
    counters.panics_recovered.fetch_add(1, Ordering::Relaxed);
    // The panic poisoned the session's workspace lock; rebuild a
    // fresh identical session and retire the old one's statistics
    // so the shard's cumulative accounting survives.
    // Rebuild failure is impossible for a config that already built
    // once; if it somehow happens, keep the poisoned session — every
    // decode on it panics, is caught here, and the breaker walls the
    // shard off.
    if let Ok(fresh) = state.spec.build() {
        let old = decoder.stats();
        {
            let mut retired = state.retired.lock().expect("shard retired totals");
            retired.pool.merge(&old.pool);
            retired.spec.merge(&old.spec);
            retired.progressive.merge(&old.progressive);
        }
        let fresh = Arc::new(fresh);
        *state.decoder.lock().expect("shard decoder slot") = Arc::clone(&fresh);
        *decoder = fresh;
        counters.sessions_rebuilt.fetch_add(1, Ordering::Relaxed);
    }
    if state.breaker.on_panic(
        inner.breaker_threshold,
        inner.breaker_base_us,
        inner.now_us(),
    ) {
        counters.breaker_trips.fetch_add(1, Ordering::Relaxed);
    }
    msg
}

/// The streaming tail of [`serve_one`]: hand the submitter a
/// [`ServedStream`] immediately, then render the image as MCU-row tiles
/// through [`Decoder::decode_rows`], pushing each tile (in a pooled
/// buffer) as a [`StreamEvent`]. The tile pool bounds tiles in flight at
/// [`TILE_POOL_CAP`]; a consumer that stops draining backpressures the
/// worker and, past [`TILE_STALL_LIMIT`], aborts the stream. Panics are
/// recovered exactly as on the whole-image path, with the terminal error
/// delivered in-stream.
#[allow(clippy::too_many_arguments)]
fn serve_streaming(
    inner: &Inner,
    shard: usize,
    decoder: &mut Arc<Decoder>,
    pacer: &mut Pacer,
    tiles: &mut TilePool,
    req: Request,
    opts: DecodeOptions,
    degraded: bool,
    paced: bool,
    inject_panic: bool,
) {
    let state = &inner.shards[shard];
    let counters = &state.counters;
    let (etx, erx) = mpsc::channel::<StreamEvent>();
    if req
        .reply
        .send(Ok(ServeReply::Stream(ServedStream { rx: erx })))
        .is_err()
    {
        // Nobody is waiting on the ticket: skip the decode entirely.
        state.load.credit(req.charged_us);
        return;
    }
    let t0 = Instant::now();
    let result = {
        let _quiet = SuppressPanicReport::new();
        let d = &**decoder;
        let data = &req.data;
        let etx = &etx;
        let pool = &mut *tiles;
        catch_unwind(AssertUnwindSafe(move || {
            if inject_panic {
                d.inject_panic("injected decode panic");
            }
            let mut begun = false;
            d.decode_rows(data, opts, &mut |tile| {
                if !begun {
                    begun = true;
                    let begin = StreamEvent::Begin {
                        width: tile.width as u32,
                        height: tile.height as u32,
                        degraded,
                    };
                    if etx.send(begin).is_err() {
                        return false;
                    }
                }
                let Some(mut buf) = pool.acquire(counters) else {
                    return false; // consumer stalled past the limit
                };
                buf.clear();
                buf.extend_from_slice(tile.rgb);
                etx.send(StreamEvent::Tile(StreamTile {
                    buf,
                    pool: pool.tx.clone(),
                }))
                .is_ok()
            })
        }))
    };
    match result {
        Ok(out) => {
            state.breaker.on_success(inner.breaker_base_us);
            observe_calibration(state, pacer, &req, t0.elapsed());
            match out {
                Ok(rso) => {
                    if paced {
                        counters.deadline_partials.fetch_add(1, Ordering::Relaxed);
                    }
                    if degraded {
                        counters.degraded.fetch_add(1, Ordering::Relaxed);
                    }
                    counters.streamed.fetch_add(1, Ordering::Relaxed);
                    let _ = etx.send(StreamEvent::End(Ok(StreamEnd {
                        tiles: rso.tiles as u64,
                        truncated: rso.truncated,
                        mode: rso.mode,
                        width: rso.width as u32,
                        height: rso.height as u32,
                        degraded,
                    })));
                }
                Err(e) => {
                    counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = etx.send(StreamEvent::End(Err(ServeError::Decode(e))));
                }
            }
        }
        Err(payload) => {
            let msg = recover_panic(inner, shard, decoder, payload);
            let _ = etx.send(StreamEvent::End(Err(ServeError::Panicked(msg))));
        }
    }
    state.load.credit(req.charged_us);
}

/// Home shard for an image, by its shape fingerprint ([`ServeHandle::submit`]
/// spills to other shards when the home queue is full). Unparseable data
/// goes to shard 0, where the decode will produce the error that is then
/// reported through the request's own reply slot.
fn route(data: &[u8], shards: usize) -> usize {
    match shape_key(data) {
        Some(key) => {
            let mut h = DefaultHasher::new();
            key.hash(&mut h);
            (h.finish() % shards as u64) as usize
        }
        None => 0,
    }
}

/// Cheap shape fingerprint (width, height, component count, luma sampling
/// factors) read by scanning the marker stream for SOF0/SOF1/SOF2 — no
/// entropy decoding, no table parsing, no allocation. Progressive (SOF2)
/// images share the fingerprint space with baseline ones: a progressive
/// image routes to the same shard as its baseline counterpart of the same
/// shape, where the pooled buffers for that shape already live. `None`
/// when the bytes carry no recognized frame header.
fn shape_key(data: &[u8]) -> Option<(u16, u16, u8, u8)> {
    use hetjpeg_jpeg::markers::m;
    if data.len() < 4 || data[0] != 0xFF || data[1] != m::SOI {
        return None;
    }
    let mut pos = 2usize;
    while pos + 3 < data.len() {
        if data[pos] != 0xFF {
            return None;
        }
        let marker = data[pos + 1];
        match marker {
            // Padding / RSTn / TEM: no length field.
            0xFF => {
                pos += 1;
                continue;
            }
            m::TEM | m::RST0..=m::RST7 => {
                pos += 2;
                continue;
            }
            // SOS or EOI before any SOF: give up.
            m::SOS | m::EOI => return None,
            _ => {}
        }
        let len = u16::from_be_bytes([data[pos + 2], data[pos + 3]]) as usize;
        if len < 2 || pos + 2 + len > data.len() {
            return None;
        }
        if marker == m::SOF0 || marker == m::SOF1 || marker == m::SOF2 {
            // SOF segment: precision(1) height(2) width(2) ncomp(1), then
            // per component (id, sampling, tq).
            let seg = &data[pos + 4..pos + 2 + len];
            if seg.len() < 6 {
                return None;
            }
            let height = u16::from_be_bytes([seg[1], seg[2]]);
            let width = u16::from_be_bytes([seg[3], seg[4]]);
            let ncomp = seg[5];
            let sampling = if seg.len() >= 9 { seg[7] } else { 0 };
            return Some((width, height, ncomp, sampling));
        }
        pos += 2 + len;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetjpeg_corpus::{generate_jpeg, ImageSpec, Pattern};
    use hetjpeg_jpeg::types::Subsampling;

    fn jpeg(w: usize, h: usize, seed: u64) -> Vec<u8> {
        let spec = ImageSpec {
            width: w,
            height: h,
            pattern: Pattern::PhotoLike { detail: 0.5 },
            seed,
        };
        generate_jpeg(&spec, 85, Subsampling::S420).unwrap()
    }

    fn progressive_jpeg(w: usize, h: usize, seed: u64) -> Vec<u8> {
        let spec = ImageSpec {
            width: w,
            height: h,
            pattern: Pattern::PhotoLike { detail: 0.5 },
            seed,
        };
        hetjpeg_corpus::generate_progressive_jpeg(
            &spec,
            85,
            Subsampling::S420,
            hetjpeg_jpeg::progressive::ScanPreset::Standard10,
        )
        .unwrap()
    }

    #[test]
    fn shape_key_reads_the_frame_header() {
        let j = jpeg(96, 64, 1);
        let (w, h, ncomp, sampling) = shape_key(&j).expect("baseline jpeg has a shape");
        assert_eq!((w, h, ncomp), (96, 64, 3));
        assert_eq!(sampling, 0x22, "4:2:0 luma sampling factors");
        // Same shape, different pixels: identical key.
        assert_eq!(shape_key(&j), shape_key(&jpeg(96, 64, 2)));
        // Different shape: different key.
        assert_ne!(shape_key(&j), shape_key(&jpeg(64, 96, 1)));
        // Garbage is unroutable, not a panic.
        assert_eq!(shape_key(b"not a jpeg"), None);
        assert_eq!(shape_key(&j[..3]), None);
        // A progressive (SOF2) image of the same shape shares the key —
        // it must land on the shard whose buffers are hot for that shape.
        let prog = progressive_jpeg(96, 64, 1);
        assert_eq!(shape_key(&prog), shape_key(&j));
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let j = jpeg(128, 96, 3);
        for shards in 1..5 {
            let s = route(&j, shards);
            assert!(s < shards);
            assert_eq!(s, route(&j, shards), "routing is deterministic");
        }
        assert_eq!(route(b"garbage", 4), 0);
    }

    #[test]
    fn same_shape_lands_on_one_shard() {
        let shards = 4;
        let target = route(&jpeg(96, 64, 1), shards);
        for seed in 2..10 {
            assert_eq!(route(&jpeg(96, 64, seed), shards), target);
        }
    }

    #[test]
    fn config_validation() {
        let bad = |c: ServeConfig| matches!(Server::start(c), Err(ServeError::Config(_)));
        assert!(bad(ServeConfig {
            shards: 0,
            ..ServeConfig::default()
        }));
        assert!(bad(ServeConfig {
            queue_depth: 0,
            ..ServeConfig::default()
        }));
        assert!(bad(ServeConfig {
            max_batch: 0,
            ..ServeConfig::default()
        }));
        assert!(bad(ServeConfig {
            auto_cache_cap: 0,
            ..ServeConfig::default()
        }));
        assert!(bad(ServeConfig {
            threads: 0,
            ..ServeConfig::default()
        }));
        assert!(bad(ServeConfig {
            breaker_threshold: 0,
            ..ServeConfig::default()
        }));
    }

    #[test]
    fn speculation_counters_surface_in_server_stats() {
        // A restart-free stream decoded under `Mode::ParallelEntropy`
        // takes the speculative path (ISSUE 6); its counters must be
        // visible through the server's aggregated statistics.
        let server = Server::start(ServeConfig {
            shards: 1,
            threads: 4,
            options: hetjpeg_core::DecodeOptions {
                mode: hetjpeg_core::Mode::ParallelEntropy,
                ..hetjpeg_core::DecodeOptions::default()
            },
            ..ServeConfig::default()
        })
        .unwrap();
        let handle = server.handle();
        handle.decode(&jpeg(256, 160, 7)).unwrap();
        let stats = server.shutdown();
        let spec = stats.speculation();
        assert!(spec.chunks >= 2, "speculative chunks launched: {spec:?}");
        assert!(spec.synced >= 1, "at least one boundary converged");
        assert!(spec.adopted_mcus > 0, "staged MCUs adopted: {spec:?}");
        assert_eq!(stats.speculative_chunks(), spec.chunks);
        assert_eq!(
            stats.speculation_wasted_mcus() + stats.stitch_redecoded_mcus(),
            spec.wasted_mcus + spec.redecoded_mcus,
        );
    }

    #[test]
    fn progressive_requests_decode_and_surface_counters() {
        // A progressive image served next to its baseline counterpart
        // produces the same bytes, and the multi-scan counters appear in
        // the aggregated server statistics.
        let server = Server::start(ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let handle = server.handle();
        let base_out = handle.decode(&jpeg(96, 64, 11)).unwrap();
        let prog_out = handle.decode(&progressive_jpeg(96, 64, 11)).unwrap();
        assert!(!prog_out.truncated);
        assert_eq!(prog_out.image.data, base_out.image.data);
        let stats = server.shutdown();
        let p = stats.progressive();
        assert_eq!(p.scans_decoded, 10, "Standard10 scan script: {p:?}");
        assert_eq!(p.refine_passes, 5);
        assert_eq!(p.partial_renders, 0);
        assert_eq!(stats.deadline_partials(), 0);
    }

    #[test]
    fn progressive_deadline_yields_partial_renders() {
        let server = Server::start(ServeConfig {
            shards: 1,
            scan_deadline: Some(std::time::Duration::from_nanos(1)),
            ..ServeConfig::default()
        })
        .unwrap();
        let handle = server.handle();
        let prog = progressive_jpeg(128, 96, 3);
        // The first request seeds the shard's throughput estimate and
        // decodes in full…
        let first = handle.decode(&prog).unwrap();
        assert!(!first.truncated);
        // …after which a 1 ns budget can never absorb the scan script:
        // the shard answers with a prefix render, flagged truncated.
        let paced = handle.decode(&prog).unwrap();
        assert!(paced.truncated, "paced decode is a prefix render");
        assert_eq!(paced.image.data.len(), 128 * 96 * 3);
        assert_ne!(paced.image.data, first.image.data);
        let stats = server.shutdown();
        assert_eq!(stats.deadline_partials(), 1);
        let p = stats.progressive();
        assert_eq!(p.partial_renders, 1);
        assert_eq!(p.scans_decoded, 10 + 1, "full script + the DC prefix");
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let server = Server::start(ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let handle = server.handle();
        let j = jpeg(64, 64, 5);
        assert!(handle.decode(&j).is_ok());
        server.shutdown();
        assert!(matches!(handle.submit(j), Err(ServeError::ShuttingDown)));
    }

    #[test]
    fn breaker_trips_after_consecutive_panics_and_half_open_probe_closes_it() {
        let server = Server::start(ServeConfig {
            shards: 1,
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(50),
            fault_plan: Some(Arc::new(
                // The first two decodes on the shard panic; everything
                // after decodes normally, so the half-open probe succeeds.
                FaultPlan::parse("panic=#1,panic=#2").unwrap(),
            )),
            ..ServeConfig::default()
        })
        .unwrap();
        let handle = server.handle();
        let j = jpeg(64, 64, 9);

        // Panic 1: recovered, session rebuilt, breaker still closed.
        assert!(matches!(
            handle.decode(&j),
            Err(ServeError::Panicked(msg)) if msg.contains("injected")
        ));
        // Panic 2: recovered and trips the breaker (threshold 2).
        assert!(matches!(handle.decode(&j), Err(ServeError::Panicked(_))));
        // Open breaker fail-fasts with Busy and a retry hint.
        match handle.decode(&j) {
            Err(ServeError::Busy { retry_after }) => {
                assert!(retry_after <= Duration::from_millis(50));
            }
            other => panic!("expected Busy from open breaker, got {other:?}"),
        }
        // After the cooldown the next request is the half-open probe; the
        // fault plan is exhausted, so it succeeds and closes the breaker.
        std::thread::sleep(Duration::from_millis(120));
        let probe = handle.decode(&j).expect("half-open probe decodes");
        assert_eq!(probe.image.data.len(), 64 * 64 * 3);
        let after = handle.decode(&j).expect("breaker closed again");
        assert_eq!(after.image.data, probe.image.data);

        let stats = server.shutdown();
        assert_eq!(stats.panics_recovered(), 2);
        assert_eq!(stats.sessions_rebuilt(), 2);
        assert_eq!(stats.breaker_trips(), 1);
        assert_eq!(stats.shed(), 1);
        assert_eq!(stats.decode_errors(), 0);
    }

    #[test]
    fn infeasible_deadlines_are_shed_or_degraded() {
        let server = Server::start(ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let handle = server.handle();
        let j = jpeg(96, 96, 21);

        // Warm-up with generous deadlines: the first requests are admitted
        // optimistically (no calibration yet) and teach the shard its
        // wall-per-virtual ratio.
        for _ in 0..3 {
            let s = handle
                .decode_with(
                    &j,
                    SubmitOptions {
                        deadline: Some(Duration::from_secs(10)),
                        degrade: false,
                        ..SubmitOptions::default()
                    },
                )
                .expect("feasible deadline decodes");
            assert!(!s.degraded);
        }

        // A zero deadline is infeasible once calibrated: shed with Busy.
        match handle.decode_with(
            &j,
            SubmitOptions {
                deadline: Some(Duration::ZERO),
                degrade: false,
                ..SubmitOptions::default()
            },
        ) {
            Err(ServeError::Busy { retry_after }) => {
                assert!(retry_after > Duration::ZERO);
            }
            other => panic!("expected Busy shed, got {other:?}"),
        }

        // Same deadline with degrade opted in: served tolerant, flagged.
        let s = handle
            .decode_with(
                &j,
                SubmitOptions {
                    deadline: Some(Duration::ZERO),
                    degrade: true,
                    ..SubmitOptions::default()
                },
            )
            .expect("degraded service instead of shed");
        assert!(s.degraded);
        assert_eq!(s.outcome.image.data.len(), 96 * 96 * 3);

        let stats = server.shutdown();
        assert_eq!(stats.shed(), 1);
        assert_eq!(stats.degraded(), 1);
        assert_eq!(stats.requests(), 4, "the shed request never queued");
    }

    #[test]
    fn infeasible_progressive_deadline_degrades_to_prefix_render() {
        let server = Server::start(ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let handle = server.handle();
        let prog = progressive_jpeg(128, 96, 5);

        // Seed the byte-throughput estimate (progressive admission prices
        // by measured rate, not the §5.1 model).
        let full = handle.decode(&prog).expect("seed decode");
        assert!(!full.truncated);

        let s = handle
            .decode_with(
                &prog,
                SubmitOptions {
                    deadline: Some(Duration::ZERO),
                    degrade: true,
                    ..SubmitOptions::default()
                },
            )
            .expect("degraded prefix render");
        assert!(s.degraded);
        assert!(s.outcome.truncated, "prefix render is flagged truncated");
        assert_eq!(s.outcome.image.data.len(), 128 * 96 * 3);
        assert_ne!(s.outcome.image.data, full.image.data);

        let stats = server.shutdown();
        assert_eq!(stats.degraded(), 1);
        assert_eq!(stats.progressive().partial_renders, 1);
    }

    #[test]
    fn h2d_counters_survive_fault_rebuild_without_double_count() {
        // PR 9: the H2D counters ride SessionStats → ShardStats →
        // ServerStats and must be cumulative across a fault-induced
        // session rebuild — neither reset (losing the retired session's
        // transfers) nor double-counted (merging them twice).
        let server = Server::start(ServeConfig {
            shards: 1,
            platform: hetjpeg_core::Platform::gtx680(),
            options: DecodeOptions::with_mode(hetjpeg_core::Mode::Gpu),
            fault_plan: Some(Arc::new(FaultPlan::parse("panic=#3").unwrap())),
            ..ServeConfig::default()
        })
        .unwrap();
        let handle = server.handle();
        let j = jpeg(96, 72, 21);

        handle.decode(&j).unwrap();
        handle.decode(&j).unwrap();
        let mid = server.stats();
        assert_eq!(
            mid.h2d_transfers(),
            2,
            "whole-image GPU serving ships one transfer per request"
        );
        assert!(mid.h2d_bytes() > 0);

        // Request 3 panics before any transfer; the shard session is
        // rebuilt and its counters retired into the cumulative totals.
        assert!(matches!(handle.decode(&j), Err(ServeError::Panicked(_))));
        handle.decode(&j).unwrap();
        handle.decode(&j).unwrap();

        let stats = server.shutdown();
        assert_eq!(stats.sessions_rebuilt(), 1);
        assert_eq!(
            stats.h2d_transfers(),
            4,
            "rebuild must neither reset nor double-count transfers"
        );
        assert_eq!(
            stats.h2d_bytes(),
            2 * mid.h2d_bytes(),
            "same image decoded twice more: payload bytes double exactly"
        );
    }

    #[test]
    fn decode_batch_counts_transfers_per_batch_across_shard_counts() {
        // The session-level batched H2D path under a sharded layout: eight
        // requests split round-robin across 1/2/4 shard sessions, each
        // shard serving its share with ONE `decode_batch` call. Transfers
        // must count per batch — not per image — and the payload bytes
        // must be invariant to the shard count.
        let images: Vec<Vec<u8>> = (0..8u64)
            .map(|i| jpeg(80, 56 + 8 * (i as usize % 3), i))
            .collect();
        let opts = DecodeOptions::with_mode(hetjpeg_core::Mode::Gpu);
        let mut byte_totals = Vec::new();
        for shards in [1usize, 2, 4] {
            let mut transfers = 0u64;
            let mut bytes = 0u64;
            for shard in 0..shards {
                let d = Decoder::builder()
                    .platform(hetjpeg_core::Platform::gtx680())
                    .build()
                    .unwrap();
                let share: Vec<&[u8]> = images
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % shards == shard)
                    .map(|(_, v)| v.as_slice())
                    .collect();
                for r in d.decode_batch(&share, opts) {
                    r.expect("batched decode");
                }
                let s = d.pool_stats();
                transfers += s.h2d_transfers;
                bytes += s.h2d_bytes;
            }
            assert_eq!(
                transfers, shards as u64,
                "{shards} shards: one coalesced transfer per shard batch"
            );
            byte_totals.push(bytes);
        }
        assert!(
            byte_totals.iter().all(|&b| b == byte_totals[0]),
            "payload bytes must be invariant to sharding: {byte_totals:?}"
        );
    }
}
