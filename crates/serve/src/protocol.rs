//! The length-prefixed wire protocol and the TCP/stdio serving loops.
//!
//! Framing is deliberately minimal — the interesting machinery (sharding,
//! batch admission) lives behind [`ServeHandle`]; the wire just carries
//! bytes in and pixels out:
//!
//! ```text
//! request  := u32_be length | length bytes of JPEG        (length 0 = goodbye)
//! response := 0u8 | u32_be width | u32_be height | u32_be n | n bytes RGB
//!           | 1u8 | u32_be n | n bytes of UTF-8 error message
//! ```
//!
//! Responses are written in request order. A connection may pipeline:
//! [`serve_connection`] submits every request as it is read and answers
//! from a writer thread, so consecutive frames from one client can still
//! coalesce into one shard batch.

use crate::pool::{ServeHandle, Ticket};
use crate::ServeError;
use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::sync::mpsc;

/// Request-frame guard: a length prefix above this is treated as a
/// protocol error rather than an allocation request (64 MiB is far beyond
/// any baseline JPEG this codec accepts).
pub const MAX_FRAME: u32 = 64 << 20;

/// Response-payload guard. Decoded RGB is ~3 bytes per pixel, so this is a
/// much larger bound than [`MAX_FRAME`]: 1 GiB covers ~357 megapixels. A
/// decode whose output exceeds it is answered with an in-band error frame
/// (the stream stays framed); a client reading a length above it treats
/// the stream as corrupt.
pub const MAX_RESPONSE: u32 = 1 << 30;

/// A successfully decoded response frame, as read back by a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseFrame {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Interleaved 8-bit RGB, `width * height * 3` bytes.
    pub rgb: Vec<u8>,
}

/// Client side: write one request frame.
pub fn write_request(w: &mut impl Write, jpeg: &[u8]) -> io::Result<()> {
    if jpeg.len() as u64 > MAX_FRAME as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "request exceeds MAX_FRAME",
        ));
    }
    w.write_all(&(jpeg.len() as u32).to_be_bytes())?;
    w.write_all(jpeg)?;
    w.flush()
}

/// Client side: write the zero-length goodbye frame.
pub fn write_goodbye(w: &mut impl Write) -> io::Result<()> {
    w.write_all(&0u32.to_be_bytes())?;
    w.flush()
}

/// Server side: read one request frame. `Ok(None)` on a clean end of
/// stream (EOF at a frame boundary, or the zero-length goodbye).
pub fn read_request(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // EOF before the first length byte is a clean close. Retry EINTR here
    // the same way read_exact does for the remaining prefix bytes — a
    // stray signal must not tear down a healthy connection.
    loop {
        match r.read(&mut len_buf) {
            Ok(0) => return Ok(None),
            Ok(n) => {
                r.read_exact(&mut len_buf[n..])?;
                break;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len == 0 {
        return Ok(None);
    }
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request length exceeds MAX_FRAME",
        ));
    }
    let mut data = vec![0u8; len as usize];
    r.read_exact(&mut data)?;
    Ok(Some(data))
}

/// Server side: write one response frame from a decode result.
pub fn write_response(
    w: &mut impl Write,
    result: &Result<hetjpeg_core::DecodeOutcome, ServeError>,
) -> io::Result<()> {
    match result {
        Ok(out) if out.image.data.len() as u64 > MAX_RESPONSE as u64 => write_error(
            w,
            &format!(
                "decoded image is {} bytes, over the {} byte response cap",
                out.image.data.len(),
                MAX_RESPONSE
            ),
        )?,
        Ok(out) if !out.image.data.is_empty() => {
            w.write_all(&[0u8])?;
            w.write_all(&(out.image.width as u32).to_be_bytes())?;
            w.write_all(&(out.image.height as u32).to_be_bytes())?;
            w.write_all(&(out.image.data.len() as u32).to_be_bytes())?;
            w.write_all(&out.image.data)?;
        }
        Ok(_) => write_error(w, "server produced no RGB output (planar options?)")?,
        Err(e) => write_error(w, &e.to_string())?,
    }
    w.flush()
}

fn write_error(w: &mut impl Write, msg: &str) -> io::Result<()> {
    let bytes = msg.as_bytes();
    w.write_all(&[1u8])?;
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)
}

/// Client side: read one response frame. The outer `Result` is transport
/// failure; the inner carries the server's per-request error message.
pub fn read_response(r: &mut impl Read) -> io::Result<Result<ResponseFrame, String>> {
    let mut status = [0u8; 1];
    r.read_exact(&mut status)?;
    let mut u32_buf = [0u8; 4];
    match status[0] {
        0 => {
            r.read_exact(&mut u32_buf)?;
            let width = u32::from_be_bytes(u32_buf);
            r.read_exact(&mut u32_buf)?;
            let height = u32::from_be_bytes(u32_buf);
            r.read_exact(&mut u32_buf)?;
            let len = u32::from_be_bytes(u32_buf);
            if len > MAX_RESPONSE {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "response length exceeds MAX_RESPONSE",
                ));
            }
            let mut rgb = vec![0u8; len as usize];
            r.read_exact(&mut rgb)?;
            Ok(Ok(ResponseFrame { width, height, rgb }))
        }
        1 => {
            r.read_exact(&mut u32_buf)?;
            let len = u32::from_be_bytes(u32_buf);
            if len > MAX_FRAME {
                // A clamped partial read would desync the stream; treat an
                // absurd error-message length the same as an absurd RGB
                // length.
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "error-message length exceeds MAX_FRAME",
                ));
            }
            let mut msg = vec![0u8; len as usize];
            r.read_exact(&mut msg)?;
            Ok(Err(String::from_utf8_lossy(&msg).into_owned()))
        }
        s => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown response status {s}"),
        )),
    }
}

/// Serve one connection: read request frames from `reader`, submit each to
/// the shard pool as it arrives, and write responses to `writer` in
/// request order from a companion thread — pipelined clients keep the
/// admission queues fed, so their frames can coalesce into batches.
/// Returns the number of requests served.
pub fn serve_connection(
    handle: &ServeHandle,
    reader: &mut impl Read,
    writer: &mut (impl Write + Send),
) -> io::Result<u64> {
    let mut served = 0u64;
    std::thread::scope(|s| -> io::Result<u64> {
        let (tx, rx) = mpsc::channel::<Result<Ticket, ServeError>>();
        let responder = s.spawn(move || -> io::Result<u64> {
            let mut n = 0u64;
            for ticket in rx {
                let result = ticket.and_then(Ticket::wait);
                write_response(writer, &result)?;
                n += 1;
            }
            Ok(n)
        });
        while let Some(data) = read_request(reader)? {
            // Submission errors (shutdown) still produce an in-order
            // response frame for this request.
            let submitted = handle.submit(data);
            if tx.send(submitted).is_err() {
                break; // responder hit an I/O error and hung up
            }
        }
        drop(tx);
        served = responder.join().expect("responder thread")?;
        Ok(served)
    })?;
    Ok(served)
}

/// Cap on concurrently served TCP connections. Each connection costs two
/// OS threads (reader + responder); beyond the cap new connections are
/// closed immediately instead of spawning unbounded threads under a
/// connection flood. Decode throughput is bounded by the shard count, so
/// a few hundred pipelined connections saturate any pool long before this
/// limit costs a legitimate client anything.
pub const MAX_CONNECTIONS: usize = 256;

/// Accept loop: serve every incoming TCP connection on its own thread
/// until the listener fails (e.g. is closed externally). Each connection
/// gets a clone of the handle, so all connections share the shard pool.
/// At most [`MAX_CONNECTIONS`] are served at once; excess connections are
/// accepted and closed.
///
/// Per-connection accept failures (a client resetting mid-handshake,
/// transient fd exhaustion) are skipped rather than allowed to take the
/// whole accept loop — and with it the server — down.
pub fn serve_tcp(handle: &ServeHandle, listener: TcpListener) -> io::Result<()> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let active = AtomicUsize::new(0);
    let active = &active;
    std::thread::scope(|s| {
        for stream in listener.incoming() {
            let mut stream = match stream {
                Ok(stream) => stream,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionAborted
                            | io::ErrorKind::ConnectionReset
                            | io::ErrorKind::Interrupted
                            | io::ErrorKind::WouldBlock
                    ) =>
                {
                    continue
                }
                // EMFILE/ENFILE: the fd table is full because of *other*
                // connections; back off briefly instead of dying.
                Err(e) if matches!(e.raw_os_error(), Some(23) | Some(24)) => {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
                Err(e) => return Err(e),
            };
            if active.fetch_add(1, Ordering::AcqRel) >= MAX_CONNECTIONS {
                active.fetch_sub(1, Ordering::AcqRel);
                drop(stream);
                continue;
            }
            let conn_handle = handle.clone();
            s.spawn(move || {
                if let Ok(mut reader) = stream.try_clone() {
                    let _ = serve_connection(&conn_handle, &mut reader, &mut stream);
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                }
                active.fetch_sub(1, Ordering::AcqRel);
            });
        }
        Ok(())
    })
}

/// Serve request frames from stdin and write responses to stdout until
/// EOF or the goodbye frame — the scripting-friendly transport
/// (`hetjpeg-serve --stdio`). Returns the number of requests served.
pub fn serve_stdio(handle: &ServeHandle) -> io::Result<u64> {
    let stdin = io::stdin();
    let mut reader = stdin.lock();
    // `Stdout` (unlocked) is used because the responder thread needs a
    // `Send` writer; its internal line-buffer lock is taken per write.
    let mut writer = io::stdout();
    serve_connection(handle, &mut reader, &mut writer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_frames_roundtrip() {
        let mut buf = Vec::new();
        write_request(&mut buf, b"hello jpeg").unwrap();
        write_goodbye(&mut buf).unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(
            read_request(&mut r).unwrap().as_deref(),
            Some(&b"hello jpeg"[..])
        );
        assert_eq!(read_request(&mut r).unwrap(), None);
        // Clean EOF also reads as end-of-stream.
        assert_eq!(
            read_request(&mut io::Cursor::new(Vec::new())).unwrap(),
            None
        );
    }

    #[test]
    fn oversized_length_is_a_protocol_error_not_an_allocation() {
        let mut framed = Vec::new();
        framed.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        framed.extend_from_slice(&[0u8; 16]);
        let err = read_request(&mut io::Cursor::new(framed)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_an_io_error() {
        let mut framed = Vec::new();
        framed.extend_from_slice(&100u32.to_be_bytes());
        framed.extend_from_slice(&[7u8; 10]); // promises 100, delivers 10
        assert!(read_request(&mut io::Cursor::new(framed)).is_err());
    }

    #[test]
    fn oversized_response_lengths_are_protocol_errors() {
        // Success frame promising more RGB than MAX_RESPONSE.
        let mut buf = vec![0u8];
        buf.extend_from_slice(&5u32.to_be_bytes());
        buf.extend_from_slice(&5u32.to_be_bytes());
        buf.extend_from_slice(&(MAX_RESPONSE + 1).to_be_bytes());
        let err = read_response(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Error frame promising an absurd message length must also be a
        // hard error — clamping would desync the stream.
        let mut buf = vec![1u8];
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        let err = read_response(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn error_responses_roundtrip() {
        let mut buf = Vec::new();
        write_response(
            &mut buf,
            &Err(ServeError::Decode(
                hetjpeg_jpeg::error::Error::BadHuffmanCode,
            )),
        )
        .unwrap();
        let got = read_response(&mut io::Cursor::new(buf)).unwrap();
        let msg = got.expect_err("error frame");
        assert!(msg.contains("decode failed"), "{msg}");
    }
}
