//! The length-prefixed wire protocol and the TCP/stdio serving loops.
//!
//! Framing is deliberately minimal — the interesting machinery (sharding,
//! batch admission, SLO shedding) lives behind [`ServeHandle`]; the wire
//! just carries bytes in and pixels out:
//!
//! ```text
//! request  := u32_be length | payload                 (length 0 = goodbye)
//!   v1: payload = length bytes of JPEG
//!   v2: length prefix has bit 31 set; payload =
//!       version(1)=2 | flags(1) | u32_be deadline_us | u32_be jpeg_len | jpeg
//! response := 0u8  | u32_be width | u32_be height | u32_be n | n bytes RGB
//!           | 1u8  | u32_be n | n bytes of UTF-8 error message
//!           | 2u8  | u32_be retry_after_us                    (busy / shed)
//!           | 3u8                                             (shutdown drain)
//!           | 4u8  | u32_be width | u32_be height | u32_be n | n bytes RGB
//!                                                             (degraded ok)
//! ```
//!
//! The v2 length-prefix flag bit is unambiguous because [`MAX_FRAME`] keeps
//! every legal v1 length far below `1 << 31`; a v1-only server reading a v2
//! frame fails the length guard instead of misparsing the payload. `flags`
//! bit 0 is *degrade-ok*: the client prefers a degraded response (scan-
//! prefix render or tolerant salvage) over a `Busy` shed when its deadline
//! is infeasible. `deadline_us == 0` means no deadline; sub-microsecond
//! deadlines round up to 1 µs. Statuses 2–4 are only ever sent in reply to
//! v2 frames — v1 requests have no deadline, never shed, and cannot opt
//! into degradation — so v1 clients never see a status byte they don't
//! know.
//!
//! Responses are written in request order. A connection may pipeline:
//! [`serve_connection`] submits every request as it is read and answers
//! from a writer thread, so consecutive frames from one client can still
//! coalesce into one shard batch.
//!
//! Every read in this module goes through an explicit EINTR-retrying
//! `read_full` loop rather than the reader's own `read_exact`: a wrapped
//! reader (TLS adapters, the chaos harness's [`ChaosReader`]) may surface
//! `ErrorKind::Interrupted` from `read` without retrying it, and a stray
//! signal must not tear down a healthy connection mid-frame.

use crate::fault::ChaosReader;
use crate::pool::{ServeHandle, Served, SubmitOptions, Ticket};
use crate::ServeError;
use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::sync::mpsc;
use std::time::Duration;

/// Request-frame guard: a length prefix above this is treated as a
/// protocol error rather than an allocation request (64 MiB is far beyond
/// any baseline JPEG this codec accepts).
pub const MAX_FRAME: u32 = 64 << 20;

/// Response-payload guard. Decoded RGB is ~3 bytes per pixel, so this is a
/// much larger bound than [`MAX_FRAME`]: 1 GiB covers ~357 megapixels. A
/// decode whose output exceeds it is answered with an in-band error frame
/// (the stream stays framed); a client reading a length above it treats
/// the stream as corrupt.
pub const MAX_RESPONSE: u32 = 1 << 30;

/// Length-prefix bit marking a protocol-v2 request frame.
pub const FRAME_V2_FLAG: u32 = 1 << 31;

/// Bytes of v2 payload header before the JPEG: version, flags,
/// deadline_us, jpeg_len.
pub const V2_HEADER_LEN: usize = 10;

/// Request-flag bit 0: the client opts into degraded service (prefix
/// render / tolerant salvage) instead of a `Busy` shed when its deadline
/// is infeasible.
pub const FLAG_DEGRADE_OK: u8 = 1;

/// A successfully decoded response frame, as read back by a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseFrame {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Interleaved 8-bit RGB, `width * height * 3` bytes.
    pub rgb: Vec<u8>,
}

/// One parsed request frame: the JPEG plus the per-request submission
/// options a v2 header carried (v1 frames parse with default options).
#[derive(Debug, Clone)]
pub struct RequestFrame {
    /// The compressed image.
    pub jpeg: Vec<u8>,
    /// Deadline / degrade options ([`ServeHandle::submit_with`]).
    pub options: SubmitOptions,
}

/// A server reply, as read back by a client — the wire-level mirror of
/// `Result<Served, ServeError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerReply {
    /// Full-fidelity decode (status 0).
    Ok(ResponseFrame),
    /// Decode served degraded to meet its deadline (status 4): a scan-
    /// prefix render or tolerant salvage, as opted into by
    /// [`FLAG_DEGRADE_OK`].
    Degraded(ResponseFrame),
    /// Per-request failure, UTF-8 message (status 1).
    Error(String),
    /// The request was shed — deadline infeasible or shard breaker open
    /// (status 2); retry after the hint.
    Busy {
        /// Server-suggested wait before retrying.
        retry_after: Duration,
    },
    /// The request was drained by server shutdown before decode (status 3).
    Shutdown,
}

impl ServerReply {
    /// The decoded frame, for both full-fidelity and degraded successes.
    pub fn frame(&self) -> Option<&ResponseFrame> {
        match self {
            ServerReply::Ok(f) | ServerReply::Degraded(f) => Some(f),
            _ => None,
        }
    }

    /// Consume the reply; `Err` carries a human-readable description for
    /// the non-success statuses.
    pub fn into_frame(self) -> Result<ResponseFrame, String> {
        match self {
            ServerReply::Ok(f) | ServerReply::Degraded(f) => Ok(f),
            ServerReply::Error(msg) => Err(msg),
            ServerReply::Busy { retry_after } => {
                Err(format!("busy: retry after {}us", retry_after.as_micros()))
            }
            ServerReply::Shutdown => Err("server shutdown".to_string()),
        }
    }
}

/// Read exactly `buf.len()` bytes, retrying `ErrorKind::Interrupted`
/// (EINTR) and converting a mid-frame EOF into `UnexpectedEof`. Used for
/// every framed read instead of the reader's own `read_exact` — see the
/// module docs.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> io::Result<()> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended mid-frame",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Client side: write one v1 request frame.
pub fn write_request(w: &mut impl Write, jpeg: &[u8]) -> io::Result<()> {
    if jpeg.len() as u64 > MAX_FRAME as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "request exceeds MAX_FRAME",
        ));
    }
    w.write_all(&(jpeg.len() as u32).to_be_bytes())?;
    w.write_all(jpeg)?;
    w.flush()
}

/// Client side: write one v2 request frame carrying an optional deadline
/// and the degrade-ok flag. `deadline` is relative to submission;
/// sub-microsecond deadlines round up to 1 µs (0 on the wire means "no
/// deadline").
pub fn write_request_v2(
    w: &mut impl Write,
    jpeg: &[u8],
    deadline: Option<Duration>,
    degrade_ok: bool,
) -> io::Result<()> {
    let total = jpeg.len() as u64 + V2_HEADER_LEN as u64;
    if total > MAX_FRAME as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "request exceeds MAX_FRAME",
        ));
    }
    let deadline_us = deadline
        .map(|d| d.as_micros().clamp(1, u32::MAX as u128) as u32)
        .unwrap_or(0);
    let flags = if degrade_ok { FLAG_DEGRADE_OK } else { 0 };
    w.write_all(&((total as u32) | FRAME_V2_FLAG).to_be_bytes())?;
    w.write_all(&[2u8, flags])?;
    w.write_all(&deadline_us.to_be_bytes())?;
    w.write_all(&(jpeg.len() as u32).to_be_bytes())?;
    w.write_all(jpeg)?;
    w.flush()
}

/// Client side: write the zero-length goodbye frame.
pub fn write_goodbye(w: &mut impl Write) -> io::Result<()> {
    w.write_all(&0u32.to_be_bytes())?;
    w.flush()
}

/// Server side: read one request frame (either version). `Ok(None)` on a
/// clean end of stream (EOF at a frame boundary, or the zero-length
/// goodbye).
pub fn read_request(r: &mut impl Read) -> io::Result<Option<RequestFrame>> {
    let mut len_buf = [0u8; 4];
    // EOF before the first length byte is a clean close; EINTR anywhere in
    // the prefix is retried.
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended mid-prefix",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let raw = u32::from_be_bytes(len_buf);
    let v2 = raw & FRAME_V2_FLAG != 0;
    let len = raw & !FRAME_V2_FLAG;
    if len == 0 {
        return Ok(None);
    }
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request length exceeds MAX_FRAME",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    read_full(r, &mut payload)?;
    if !v2 {
        return Ok(Some(RequestFrame {
            jpeg: payload,
            options: SubmitOptions::default(),
        }));
    }
    if payload.len() < V2_HEADER_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "v2 frame shorter than its header",
        ));
    }
    if payload[0] != 2 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown request version {}", payload[0]),
        ));
    }
    let flags = payload[1];
    let deadline_us = u32::from_be_bytes([payload[2], payload[3], payload[4], payload[5]]);
    let jpeg_len = u32::from_be_bytes([payload[6], payload[7], payload[8], payload[9]]);
    if jpeg_len as usize != payload.len() - V2_HEADER_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "v2 jpeg_len disagrees with frame length",
        ));
    }
    payload.drain(..V2_HEADER_LEN);
    Ok(Some(RequestFrame {
        jpeg: payload,
        options: SubmitOptions {
            deadline: (deadline_us > 0).then(|| Duration::from_micros(deadline_us as u64)),
            degrade: flags & FLAG_DEGRADE_OK != 0,
        },
    }))
}

/// Server side: write one response frame from a serve result.
pub fn write_response(w: &mut impl Write, result: &Result<Served, ServeError>) -> io::Result<()> {
    match result {
        Ok(s) if s.outcome.image.data.len() as u64 > MAX_RESPONSE as u64 => write_error(
            w,
            &format!(
                "decoded image is {} bytes, over the {} byte response cap",
                s.outcome.image.data.len(),
                MAX_RESPONSE
            ),
        )?,
        Ok(s) if !s.outcome.image.data.is_empty() => {
            w.write_all(&[if s.degraded { 4u8 } else { 0u8 }])?;
            w.write_all(&(s.outcome.image.width as u32).to_be_bytes())?;
            w.write_all(&(s.outcome.image.height as u32).to_be_bytes())?;
            w.write_all(&(s.outcome.image.data.len() as u32).to_be_bytes())?;
            w.write_all(&s.outcome.image.data)?;
        }
        Ok(_) => write_error(w, "server produced no RGB output (planar options?)")?,
        Err(ServeError::Busy { retry_after }) => {
            w.write_all(&[2u8])?;
            let us = retry_after.as_micros().min(u32::MAX as u128) as u32;
            w.write_all(&us.to_be_bytes())?;
        }
        Err(ServeError::Shutdown) => w.write_all(&[3u8])?,
        Err(e) => write_error(w, &e.to_string())?,
    }
    w.flush()
}

fn write_error(w: &mut impl Write, msg: &str) -> io::Result<()> {
    let bytes = msg.as_bytes();
    w.write_all(&[1u8])?;
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)
}

/// Client side: read one response frame. The `Result` is transport
/// failure; per-request outcomes (including errors, sheds and the
/// shutdown drain) arrive in-band as [`ServerReply`] variants.
pub fn read_response(r: &mut impl Read) -> io::Result<ServerReply> {
    let mut status = [0u8; 1];
    read_full(r, &mut status)?;
    let mut u32_buf = [0u8; 4];
    match status[0] {
        s @ (0 | 4) => {
            read_full(r, &mut u32_buf)?;
            let width = u32::from_be_bytes(u32_buf);
            read_full(r, &mut u32_buf)?;
            let height = u32::from_be_bytes(u32_buf);
            read_full(r, &mut u32_buf)?;
            let len = u32::from_be_bytes(u32_buf);
            if len > MAX_RESPONSE {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "response length exceeds MAX_RESPONSE",
                ));
            }
            let mut rgb = vec![0u8; len as usize];
            read_full(r, &mut rgb)?;
            let frame = ResponseFrame { width, height, rgb };
            Ok(if s == 0 {
                ServerReply::Ok(frame)
            } else {
                ServerReply::Degraded(frame)
            })
        }
        1 => {
            read_full(r, &mut u32_buf)?;
            let len = u32::from_be_bytes(u32_buf);
            if len > MAX_FRAME {
                // A clamped partial read would desync the stream; treat an
                // absurd error-message length the same as an absurd RGB
                // length.
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "error-message length exceeds MAX_FRAME",
                ));
            }
            let mut msg = vec![0u8; len as usize];
            read_full(r, &mut msg)?;
            Ok(ServerReply::Error(
                String::from_utf8_lossy(&msg).into_owned(),
            ))
        }
        2 => {
            read_full(r, &mut u32_buf)?;
            Ok(ServerReply::Busy {
                retry_after: Duration::from_micros(u32::from_be_bytes(u32_buf) as u64),
            })
        }
        3 => Ok(ServerReply::Shutdown),
        s => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown response status {s}"),
        )),
    }
}

/// Serve one connection: read request frames from `reader`, submit each to
/// the shard pool as it arrives, and write responses to `writer` in
/// request order from a companion thread — pipelined clients keep the
/// admission queues fed, so their frames can coalesce into batches.
/// Returns the number of requests served.
pub fn serve_connection(
    handle: &ServeHandle,
    reader: &mut impl Read,
    writer: &mut (impl Write + Send),
) -> io::Result<u64> {
    let mut served = 0u64;
    std::thread::scope(|s| -> io::Result<u64> {
        let (tx, rx) = mpsc::channel::<Result<Ticket, ServeError>>();
        let responder = s.spawn(move || -> io::Result<u64> {
            let mut n = 0u64;
            for ticket in rx {
                let result = ticket.and_then(Ticket::wait_served);
                write_response(writer, &result)?;
                n += 1;
            }
            Ok(n)
        });
        while let Some(frame) = read_request(reader)? {
            // Submission errors (shutdown, admission sheds) still produce
            // an in-order response frame for this request.
            let submitted = handle.submit_with(frame.jpeg, frame.options);
            if tx.send(submitted).is_err() {
                break; // responder hit an I/O error and hung up
            }
        }
        drop(tx);
        served = responder.join().expect("responder thread")?;
        Ok(served)
    })?;
    Ok(served)
}

/// Cap on concurrently served TCP connections. Each connection costs two
/// OS threads (reader + responder); beyond the cap new connections are
/// closed immediately instead of spawning unbounded threads under a
/// connection flood. Decode throughput is bounded by the shard count, so
/// a few hundred pipelined connections saturate any pool long before this
/// limit costs a legitimate client anything.
pub const MAX_CONNECTIONS: usize = 256;

/// Accept loop: serve every incoming TCP connection on its own thread
/// until the listener fails (e.g. is closed externally). Each connection
/// gets a clone of the handle, so all connections share the shard pool.
/// At most [`MAX_CONNECTIONS`] are served at once; excess connections are
/// accepted and closed.
///
/// Per-connection accept failures (a client resetting mid-handshake,
/// transient fd exhaustion) are skipped rather than allowed to take the
/// whole accept loop — and with it the server — down. When the active
/// fault plan carries read faults, every connection reader is wrapped in a
/// [`ChaosReader`]; a torn connection kills only that connection.
pub fn serve_tcp(handle: &ServeHandle, listener: TcpListener) -> io::Result<()> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let active = AtomicUsize::new(0);
    let active = &active;
    std::thread::scope(|s| {
        for stream in listener.incoming() {
            let mut stream = match stream {
                Ok(stream) => stream,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionAborted
                            | io::ErrorKind::ConnectionReset
                            | io::ErrorKind::Interrupted
                            | io::ErrorKind::WouldBlock
                    ) =>
                {
                    continue
                }
                // EMFILE/ENFILE: the fd table is full because of *other*
                // connections; back off briefly instead of dying.
                Err(e) if matches!(e.raw_os_error(), Some(23) | Some(24)) => {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
                Err(e) => return Err(e),
            };
            if active.fetch_add(1, Ordering::AcqRel) >= MAX_CONNECTIONS {
                active.fetch_sub(1, Ordering::AcqRel);
                drop(stream);
                continue;
            }
            let conn_handle = handle.clone();
            s.spawn(move || {
                if let Ok(reader) = stream.try_clone() {
                    let chaos = conn_handle.fault_plan().filter(|p| p.has_read_faults());
                    let _ = match chaos {
                        Some(plan) => {
                            let mut reader = ChaosReader::new(reader, plan);
                            serve_connection(&conn_handle, &mut reader, &mut stream)
                        }
                        None => {
                            let mut reader = reader;
                            serve_connection(&conn_handle, &mut reader, &mut stream)
                        }
                    };
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                }
                active.fetch_sub(1, Ordering::AcqRel);
            });
        }
        Ok(())
    })
}

/// Serve request frames from stdin and write responses to stdout until
/// EOF or the goodbye frame — the scripting-friendly transport
/// (`hetjpeg-serve --stdio`). Returns the number of requests served.
pub fn serve_stdio(handle: &ServeHandle) -> io::Result<u64> {
    let stdin = io::stdin();
    let reader = stdin.lock();
    // `Stdout` (unlocked) is used because the responder thread needs a
    // `Send` writer; its internal line-buffer lock is taken per write.
    let mut writer = io::stdout();
    match handle.fault_plan().filter(|p| p.has_read_faults()) {
        Some(plan) => {
            let mut reader = ChaosReader::new(reader, plan);
            serve_connection(handle, &mut reader, &mut writer)
        }
        None => {
            let mut reader = reader;
            serve_connection(handle, &mut reader, &mut writer)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use std::sync::Arc;

    #[test]
    fn request_frames_roundtrip() {
        let mut buf = Vec::new();
        write_request(&mut buf, b"hello jpeg").unwrap();
        write_goodbye(&mut buf).unwrap();
        let mut r = io::Cursor::new(buf);
        let frame = read_request(&mut r).unwrap().expect("one frame");
        assert_eq!(frame.jpeg, b"hello jpeg");
        assert_eq!(frame.options.deadline, None);
        assert!(!frame.options.degrade);
        assert!(read_request(&mut r).unwrap().is_none());
        // Clean EOF also reads as end-of-stream.
        assert!(read_request(&mut io::Cursor::new(Vec::new()))
            .unwrap()
            .is_none());
    }

    #[test]
    fn v2_request_frames_carry_deadline_and_degrade() {
        let mut buf = Vec::new();
        write_request_v2(
            &mut buf,
            b"v2 jpeg",
            Some(Duration::from_micros(1500)),
            true,
        )
        .unwrap();
        write_request_v2(&mut buf, b"no slo", None, false).unwrap();
        let mut r = io::Cursor::new(buf);
        let frame = read_request(&mut r).unwrap().expect("v2 frame");
        assert_eq!(frame.jpeg, b"v2 jpeg");
        assert_eq!(frame.options.deadline, Some(Duration::from_micros(1500)));
        assert!(frame.options.degrade);
        let frame = read_request(&mut r).unwrap().expect("second v2 frame");
        assert_eq!(frame.jpeg, b"no slo");
        assert_eq!(frame.options.deadline, None);
        assert!(!frame.options.degrade);
        // Sub-microsecond deadlines survive as 1 µs, not "no deadline".
        let mut buf = Vec::new();
        write_request_v2(&mut buf, b"x", Some(Duration::from_nanos(3)), false).unwrap();
        let frame = read_request(&mut io::Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(frame.options.deadline, Some(Duration::from_micros(1)));
    }

    #[test]
    fn malformed_v2_headers_are_protocol_errors() {
        // jpeg_len disagreeing with the frame length must not desync.
        let mut buf = Vec::new();
        buf.extend_from_slice(&((V2_HEADER_LEN as u32 + 4) | FRAME_V2_FLAG).to_be_bytes());
        buf.extend_from_slice(&[2u8, 0]);
        buf.extend_from_slice(&0u32.to_be_bytes()); // deadline
        buf.extend_from_slice(&99u32.to_be_bytes()); // lies about jpeg_len
        buf.extend_from_slice(&[1, 2, 3, 4]);
        let err = read_request(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Unknown version byte.
        let mut buf = Vec::new();
        buf.extend_from_slice(&((V2_HEADER_LEN as u32) | FRAME_V2_FLAG).to_be_bytes());
        buf.extend_from_slice(&[9u8, 0]);
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        let err = read_request(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_length_is_a_protocol_error_not_an_allocation() {
        let mut framed = Vec::new();
        framed.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        framed.extend_from_slice(&[0u8; 16]);
        let err = read_request(&mut io::Cursor::new(framed)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_an_io_error() {
        let mut framed = Vec::new();
        framed.extend_from_slice(&100u32.to_be_bytes());
        framed.extend_from_slice(&[7u8; 10]); // promises 100, delivers 10
        assert!(read_request(&mut io::Cursor::new(framed)).is_err());
    }

    #[test]
    fn oversized_response_lengths_are_protocol_errors() {
        // Success frame promising more RGB than MAX_RESPONSE.
        let mut buf = vec![0u8];
        buf.extend_from_slice(&5u32.to_be_bytes());
        buf.extend_from_slice(&5u32.to_be_bytes());
        buf.extend_from_slice(&(MAX_RESPONSE + 1).to_be_bytes());
        let err = read_response(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Error frame promising an absurd message length must also be a
        // hard error — clamping would desync the stream.
        let mut buf = vec![1u8];
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        let err = read_response(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn error_busy_and_shutdown_responses_roundtrip() {
        let mut buf = Vec::new();
        write_response(
            &mut buf,
            &Err(ServeError::Decode(
                hetjpeg_jpeg::error::Error::BadHuffmanCode,
            )),
        )
        .unwrap();
        write_response(
            &mut buf,
            &Err(ServeError::Busy {
                retry_after: Duration::from_micros(777),
            }),
        )
        .unwrap();
        write_response(&mut buf, &Err(ServeError::Shutdown)).unwrap();
        let mut r = io::Cursor::new(buf);
        match read_response(&mut r).unwrap() {
            ServerReply::Error(msg) => assert!(msg.contains("decode failed"), "{msg}"),
            other => panic!("expected error reply, got {other:?}"),
        }
        assert_eq!(
            read_response(&mut r).unwrap(),
            ServerReply::Busy {
                retry_after: Duration::from_micros(777)
            }
        );
        assert_eq!(read_response(&mut r).unwrap(), ServerReply::Shutdown);
    }

    #[test]
    fn eintr_and_short_reads_do_not_desync_request_framing() {
        // Satellite regression (PR 8): every read in read_request — prefix
        // remainder and payload included — must survive EINTR and one-byte
        // reads. The chaos harness's short-read site makes *every* read
        // either interrupted or one byte long.
        let payload: Vec<u8> = (0u8..200).collect();
        let mut buf = Vec::new();
        write_request(&mut buf, &payload).unwrap();
        write_request_v2(&mut buf, &payload, Some(Duration::from_millis(5)), true).unwrap();
        write_goodbye(&mut buf).unwrap();
        let plan = Arc::new(FaultPlan::parse("shortread=1:11").unwrap());
        let mut r = ChaosReader::new(io::Cursor::new(buf), plan);
        let first = read_request(&mut r).unwrap().expect("v1 frame survives");
        assert_eq!(first.jpeg, payload);
        let second = read_request(&mut r).unwrap().expect("v2 frame survives");
        assert_eq!(second.jpeg, payload);
        assert_eq!(second.options.deadline, Some(Duration::from_millis(5)));
        assert!(second.options.degrade);
        assert!(read_request(&mut r).unwrap().is_none(), "goodbye survives");
    }

    #[test]
    fn torn_reads_surface_as_connection_errors() {
        let mut buf = Vec::new();
        write_request(&mut buf, &[9u8; 64]).unwrap();
        let plan = Arc::new(FaultPlan::parse("torn=#2").unwrap());
        let mut r = ChaosReader::new(io::Cursor::new(buf), plan);
        let err = read_request(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }
}
