//! The length-prefixed wire protocol and the TCP/stdio serving loops.
//!
//! Framing is deliberately minimal — the interesting machinery (sharding,
//! batch admission, SLO shedding) lives behind [`ServeHandle`]; the wire
//! just carries bytes in and pixels out:
//!
//! ```text
//! request  := u32_be length | payload                 (length 0 = goodbye)
//!   v1: payload = length bytes of JPEG
//!   v2: length prefix has bit 31 set; payload =
//!       version(1)=2 | flags(1) | u32_be deadline_us | u32_be jpeg_len
//!       | [u16_be opt_len | opt_len bytes of TLV options]   (flags bit 1)
//!       | jpeg
//! response := 0u8  | u32_be width | u32_be height | u32_be n | n bytes RGB
//!           | 1u8  | u32_be n | n bytes of UTF-8 error message
//!           | 2u8  | u32_be retry_after_us                    (busy / shed)
//!           | 3u8                                             (shutdown drain)
//!           | 4u8  | u32_be width | u32_be height | u32_be n | n bytes RGB
//!                                                             (degraded ok)
//!           | 5u8  | flags(1) | u32_be width | u32_be height  (stream begin)
//!           | 6u8  | u32_be n | n bytes RGB                   (stream chunk)
//!           | 7u8  | 0u8 | u32_be crc32                       (stream final)
//!           | 7u8  | 1u8 | u32_be n | n bytes UTF-8 message   (stream abort)
//! ```
//!
//! The v2 length-prefix flag bit is unambiguous because [`MAX_FRAME`] keeps
//! every legal v1 length far below `1 << 31`; a v1-only server reading a v2
//! frame fails the length guard instead of misparsing the payload. `flags`
//! bit 0 ([`FLAG_DEGRADE_OK`]) is *degrade-ok*: the client prefers a
//! degraded response (scan-prefix render or tolerant salvage) over a
//! `Busy` shed when its deadline is infeasible. Bit 1
//! ([`FLAG_HAS_OPTIONS`]) marks the per-request options block between the
//! fixed header and the JPEG: a `u16_be` length followed by `tag(1)
//! len(1) value` TLV records — unknown tags are skipped, so new options
//! deploy without breaking old servers. Bit 2 ([`FLAG_STREAM_OK`]) opts
//! into **streamed responses**: the server may answer statuses 5/6/7 —
//! a begin frame (flags bit 0 = degraded), MCU-row RGB chunks in
//! top-to-bottom order, and a final frame carrying a CRC-32 (IEEE) over
//! every chunk's payload bytes (or, on mid-stream failure, an abort
//! message). Peak server-side buffering on this path is a few row tiles,
//! and the response size is *not* capped by [`MAX_RESPONSE`].
//!
//! Deadline edges (PR 10): `deadline_us == 0` means no deadline, so
//! sub-microsecond deadlines round **up** to 1 µs rather than silently
//! becoming "none"; deadlines above `u32::MAX` µs (~71.6 min) do not fit
//! the header and are **rejected** at write time rather than silently
//! saturated. Statuses 2–7 are only ever sent in reply to v2 frames — v1
//! requests have no deadline, never shed, cannot opt into degradation or
//! streaming — so v1 clients never see a status byte they don't know.
//!
//! Responses are written in request order. A connection may pipeline:
//! [`serve_connection`] submits every request as it is read and answers
//! from a writer thread, so consecutive frames from one client can still
//! coalesce into one shard batch.
//!
//! Every read in this module goes through an explicit EINTR-retrying
//! `read_full` loop rather than the reader's own `read_exact`: a wrapped
//! reader (TLS adapters, the chaos harness's [`ChaosReader`]) may surface
//! `ErrorKind::Interrupted` from `read` without retrying it, and a stray
//! signal must not tear down a healthy connection mid-frame.

use crate::fault::ChaosReader;
use crate::pool::{
    RequestOptions, ServeHandle, ServeReply, Served, ServedStream, StreamEvent, SubmitOptions,
    Ticket,
};
use crate::ServeError;
use hetjpeg_core::{OutputFormat, SimdLevel, Strictness};
use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::sync::mpsc;
use std::time::Duration;

/// Request-frame guard: a length prefix above this is treated as a
/// protocol error rather than an allocation request (64 MiB is far beyond
/// any baseline JPEG this codec accepts).
pub const MAX_FRAME: u32 = 64 << 20;

/// Response-payload guard. Decoded RGB is ~3 bytes per pixel, so this is a
/// much larger bound than [`MAX_FRAME`]: 1 GiB covers ~357 megapixels. A
/// decode whose output exceeds it is answered with an in-band error frame
/// (the stream stays framed); a client reading a length above it treats
/// the stream as corrupt.
pub const MAX_RESPONSE: u32 = 1 << 30;

/// Length-prefix bit marking a protocol-v2 request frame.
pub const FRAME_V2_FLAG: u32 = 1 << 31;

/// Bytes of v2 payload header before the JPEG: version, flags,
/// deadline_us, jpeg_len.
pub const V2_HEADER_LEN: usize = 10;

/// Request-flag bit 0: the client opts into degraded service (prefix
/// render / tolerant salvage) instead of a `Busy` shed when its deadline
/// is infeasible.
pub const FLAG_DEGRADE_OK: u8 = 1;

/// Request-flag bit 1: a per-request options block (`u16_be opt_len` +
/// TLV records) sits between the fixed v2 header and the JPEG.
pub const FLAG_HAS_OPTIONS: u8 = 2;

/// Request-flag bit 2: the client accepts a streamed response (statuses
/// 5/6/7) for this request.
pub const FLAG_STREAM_OK: u8 = 4;

/// Options TLV tag: output format (1 byte: 0 = RGB, 1 = planar YCC).
pub const OPT_FORMAT: u8 = 1;
/// Options TLV tag: strictness (1 byte: 0 = strict, 1 = tolerant).
pub const OPT_STRICTNESS: u8 = 2;
/// Options TLV tag: `max_pixels` guard (8 bytes, u64_be).
pub const OPT_MAX_PIXELS: u8 = 3;
/// Options TLV tag: SIMD dispatch cap (1 byte: 0 = scalar, 1 = SSE2,
/// 2 = AVX2).
pub const OPT_SIMD_CAP: u8 = 4;
/// Options TLV tag: progressive scan prefix (4 bytes, u32_be).
pub const OPT_MAX_SCANS: u8 = 5;

/// Response status 5: stream begin (`flags(1) | width | height`; flags
/// bit 0 = degraded).
pub const STATUS_STREAM_BEGIN: u8 = 5;
/// Response status 6: one stream chunk (`u32_be n | n` RGB bytes).
pub const STATUS_STREAM_CHUNK: u8 = 6;
/// Response status 7: stream final (`0u8 | crc32` on success, `1u8 |
/// u32_be n | message` on mid-stream abort).
pub const STATUS_STREAM_FINAL: u8 = 7;

/// Running CRC-32 (IEEE 802.3: reflected, polynomial `0xEDB88320`) over
/// the RGB payload bytes of a streamed response's chunks. The final frame
/// carries it so a client can verify a reassembled stream without
/// buffering it.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

const CRC32_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

impl Crc32 {
    /// Fresh checksum state.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Fold `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = CRC32_TABLE[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// The checksum of everything folded in so far (does not consume the
    /// state; more updates may follow).
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// A successfully decoded response frame, as read back by a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseFrame {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Interleaved 8-bit RGB, `width * height * 3` bytes.
    pub rgb: Vec<u8>,
}

/// One parsed request frame: the JPEG plus the per-request submission
/// options a v2 header carried (v1 frames parse with default options).
#[derive(Debug, Clone)]
pub struct RequestFrame {
    /// The compressed image.
    pub jpeg: Vec<u8>,
    /// Deadline / degrade / per-request decode options
    /// ([`ServeHandle::submit_with`]).
    pub options: SubmitOptions,
    /// The frame used the v2 header. Only v2 clients understand response
    /// statuses ≥ 2, so the serving loops gate streaming (including the
    /// `HETJPEG_SERVE_STREAMING` override) on this.
    pub v2: bool,
}

/// A server reply, as read back by a client — the wire-level mirror of
/// `Result<Served, ServeError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerReply {
    /// Full-fidelity decode (status 0).
    Ok(ResponseFrame),
    /// Decode served degraded to meet its deadline (status 4): a scan-
    /// prefix render or tolerant salvage, as opted into by
    /// [`FLAG_DEGRADE_OK`].
    Degraded(ResponseFrame),
    /// Per-request failure, UTF-8 message (status 1).
    Error(String),
    /// The request was shed — deadline infeasible or shard breaker open
    /// (status 2); retry after the hint.
    Busy {
        /// Server-suggested wait before retrying.
        retry_after: Duration,
    },
    /// The request was drained by server shutdown before decode (status 3).
    Shutdown,
}

impl ServerReply {
    /// The decoded frame, for both full-fidelity and degraded successes.
    pub fn frame(&self) -> Option<&ResponseFrame> {
        match self {
            ServerReply::Ok(f) | ServerReply::Degraded(f) => Some(f),
            _ => None,
        }
    }

    /// Consume the reply; `Err` carries a human-readable description for
    /// the non-success statuses.
    pub fn into_frame(self) -> Result<ResponseFrame, String> {
        match self {
            ServerReply::Ok(f) | ServerReply::Degraded(f) => Ok(f),
            ServerReply::Error(msg) => Err(msg),
            ServerReply::Busy { retry_after } => {
                Err(format!("busy: retry after {}us", retry_after.as_micros()))
            }
            ServerReply::Shutdown => Err("server shutdown".to_string()),
        }
    }
}

/// Read exactly `buf.len()` bytes, retrying `ErrorKind::Interrupted`
/// (EINTR) and converting a mid-frame EOF into `UnexpectedEof`. Used for
/// every framed read instead of the reader's own `read_exact` — see the
/// module docs.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> io::Result<()> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended mid-frame",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Client side: write one v1 request frame.
pub fn write_request(w: &mut impl Write, jpeg: &[u8]) -> io::Result<()> {
    if jpeg.len() as u64 > MAX_FRAME as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "request exceeds MAX_FRAME",
        ));
    }
    w.write_all(&(jpeg.len() as u32).to_be_bytes())?;
    w.write_all(jpeg)?;
    w.flush()
}

/// Client side: write one v2 request frame carrying an optional deadline
/// and the degrade-ok flag. `deadline` is relative to submission;
/// sub-microsecond deadlines round up to 1 µs (0 on the wire means "no
/// deadline") and deadlines above `u32::MAX` µs are rejected with
/// `InvalidInput` — the header cannot represent them and silent
/// saturation would lie to the server about the client's intent.
pub fn write_request_v2(
    w: &mut impl Write,
    jpeg: &[u8],
    deadline: Option<Duration>,
    degrade_ok: bool,
) -> io::Result<()> {
    write_request_v2_opts(
        w,
        jpeg,
        &SubmitOptions {
            deadline,
            degrade: degrade_ok,
            options: RequestOptions::default(),
        },
    )
}

/// Serialize a [`RequestOptions`] into the TLV options block. Empty when
/// every override is unset (the block — and [`FLAG_HAS_OPTIONS`] — is
/// omitted entirely). The streaming opt-in travels as [`FLAG_STREAM_OK`],
/// not a TLV.
fn encode_options(ro: &RequestOptions) -> Vec<u8> {
    let mut out = Vec::new();
    if let Some(f) = ro.format {
        out.extend_from_slice(&[
            OPT_FORMAT,
            1,
            match f {
                OutputFormat::Rgb => 0,
                OutputFormat::PlanarYcc => 1,
            },
        ]);
    }
    if let Some(s) = ro.strictness {
        out.extend_from_slice(&[
            OPT_STRICTNESS,
            1,
            match s {
                Strictness::Strict => 0,
                Strictness::Tolerant => 1,
            },
        ]);
    }
    if let Some(mp) = ro.max_pixels {
        out.extend_from_slice(&[OPT_MAX_PIXELS, 8]);
        out.extend_from_slice(&mp.to_be_bytes());
    }
    if let Some(cap) = ro.simd_cap {
        out.extend_from_slice(&[
            OPT_SIMD_CAP,
            1,
            match cap {
                SimdLevel::Scalar => 0,
                SimdLevel::Sse2 => 1,
                SimdLevel::Avx2 => 2,
            },
        ]);
    }
    if let Some(ms) = ro.max_scans {
        out.extend_from_slice(&[OPT_MAX_SCANS, 4]);
        out.extend_from_slice(&ms.to_be_bytes());
    }
    out
}

/// Parse a TLV options block. Unknown tags are skipped (forward
/// compatibility: a new client option must not break an old server);
/// malformed records — truncated TLVs, wrong value lengths, unknown
/// values of *known* tags — are protocol errors.
fn decode_options(buf: &[u8]) -> io::Result<RequestOptions> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut ro = RequestOptions::default();
    let mut pos = 0usize;
    while pos < buf.len() {
        if pos + 2 > buf.len() {
            return Err(bad("truncated options TLV header"));
        }
        let tag = buf[pos];
        let len = buf[pos + 1] as usize;
        pos += 2;
        if pos + len > buf.len() {
            return Err(bad("options TLV value overruns the block"));
        }
        let val = &buf[pos..pos + len];
        pos += len;
        match tag {
            OPT_FORMAT => {
                ro.format = Some(match val {
                    [0] => OutputFormat::Rgb,
                    [1] => OutputFormat::PlanarYcc,
                    _ => return Err(bad("bad output-format option value")),
                });
            }
            OPT_STRICTNESS => {
                ro.strictness = Some(match val {
                    [0] => Strictness::Strict,
                    [1] => Strictness::Tolerant,
                    _ => return Err(bad("bad strictness option value")),
                });
            }
            OPT_MAX_PIXELS => match <[u8; 8]>::try_from(val) {
                Ok(b) => ro.max_pixels = Some(u64::from_be_bytes(b)),
                Err(_) => return Err(bad("max_pixels option must be 8 bytes")),
            },
            OPT_SIMD_CAP => {
                ro.simd_cap = Some(match val {
                    [0] => SimdLevel::Scalar,
                    [1] => SimdLevel::Sse2,
                    [2] => SimdLevel::Avx2,
                    _ => return Err(bad("bad SIMD-cap option value")),
                });
            }
            OPT_MAX_SCANS => match <[u8; 4]>::try_from(val) {
                Ok(b) => ro.max_scans = Some(u32::from_be_bytes(b)),
                Err(_) => return Err(bad("max_scans option must be 4 bytes")),
            },
            // Unknown tag: skip. A future protocol revision may add tags
            // this server predates; its requests must still parse.
            _ => {}
        }
    }
    Ok(ro)
}

/// Client side: write one v2 request frame with the full per-request
/// option set — deadline, degrade-ok, decode overrides (as a TLV block)
/// and the streaming opt-in ([`RequestOptions::streaming`] →
/// [`FLAG_STREAM_OK`]). See [`write_request_v2`] for the deadline edge
/// rules.
pub fn write_request_v2_opts(
    w: &mut impl Write,
    jpeg: &[u8],
    options: &SubmitOptions,
) -> io::Result<()> {
    let deadline_us = match options.deadline {
        None => 0u32,
        Some(d) => {
            let us = d.as_micros();
            if us > u32::MAX as u128 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "deadline exceeds u32::MAX microseconds (not representable in a v2 header)",
                ));
            }
            // 0 on the wire means "no deadline", so sub-µs rounds up.
            (us as u32).max(1)
        }
    };
    let opt_bytes = encode_options(&options.options);
    if opt_bytes.len() > u16::MAX as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "options block exceeds u16::MAX bytes",
        ));
    }
    let mut flags = 0u8;
    if options.degrade {
        flags |= FLAG_DEGRADE_OK;
    }
    if !opt_bytes.is_empty() {
        flags |= FLAG_HAS_OPTIONS;
    }
    if options.options.streaming {
        flags |= FLAG_STREAM_OK;
    }
    let opt_overhead = if opt_bytes.is_empty() {
        0
    } else {
        2 + opt_bytes.len() as u64
    };
    let total = jpeg.len() as u64 + V2_HEADER_LEN as u64 + opt_overhead;
    if total > MAX_FRAME as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "request exceeds MAX_FRAME",
        ));
    }
    w.write_all(&((total as u32) | FRAME_V2_FLAG).to_be_bytes())?;
    w.write_all(&[2u8, flags])?;
    w.write_all(&deadline_us.to_be_bytes())?;
    w.write_all(&(jpeg.len() as u32).to_be_bytes())?;
    if !opt_bytes.is_empty() {
        w.write_all(&(opt_bytes.len() as u16).to_be_bytes())?;
        w.write_all(&opt_bytes)?;
    }
    w.write_all(jpeg)?;
    w.flush()
}

/// Client side: write the zero-length goodbye frame.
pub fn write_goodbye(w: &mut impl Write) -> io::Result<()> {
    w.write_all(&0u32.to_be_bytes())?;
    w.flush()
}

/// Server side: read one request frame (either version). `Ok(None)` on a
/// clean end of stream (EOF at a frame boundary, or the zero-length
/// goodbye).
pub fn read_request(r: &mut impl Read) -> io::Result<Option<RequestFrame>> {
    let mut len_buf = [0u8; 4];
    // EOF before the first length byte is a clean close; EINTR anywhere in
    // the prefix is retried.
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended mid-prefix",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let raw = u32::from_be_bytes(len_buf);
    let v2 = raw & FRAME_V2_FLAG != 0;
    let len = raw & !FRAME_V2_FLAG;
    if len == 0 {
        return Ok(None);
    }
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request length exceeds MAX_FRAME",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    read_full(r, &mut payload)?;
    decode_request_payload(v2, payload).map(Some)
}

/// Decode a request frame body (everything after the length prefix) into
/// a [`RequestFrame`]. Shared by the blocking [`read_request`] and the
/// frontend's incremental [`parse_request`].
fn decode_request_payload(v2: bool, mut payload: Vec<u8>) -> io::Result<RequestFrame> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    if !v2 {
        return Ok(RequestFrame {
            jpeg: payload,
            options: SubmitOptions::default(),
            v2: false,
        });
    }
    if payload.len() < V2_HEADER_LEN {
        return Err(bad("v2 frame shorter than its header".into()));
    }
    if payload[0] != 2 {
        return Err(bad(format!("unknown request version {}", payload[0])));
    }
    let flags = payload[1];
    let deadline_us = u32::from_be_bytes([payload[2], payload[3], payload[4], payload[5]]);
    let jpeg_len = u32::from_be_bytes([payload[6], payload[7], payload[8], payload[9]]);
    let mut options = RequestOptions::default();
    let mut skip = V2_HEADER_LEN;
    if flags & FLAG_HAS_OPTIONS != 0 {
        if payload.len() < V2_HEADER_LEN + 2 {
            return Err(bad("v2 frame truncates its options-block length".into()));
        }
        let opt_len = u16::from_be_bytes([payload[10], payload[11]]) as usize;
        skip += 2 + opt_len;
        if payload.len() < skip {
            return Err(bad("v2 options block overruns the frame".into()));
        }
        options = decode_options(&payload[V2_HEADER_LEN + 2..skip])?;
    }
    if jpeg_len as usize != payload.len() - skip {
        return Err(bad("v2 jpeg_len disagrees with frame length".into()));
    }
    options.streaming = flags & FLAG_STREAM_OK != 0;
    payload.drain(..skip);
    Ok(RequestFrame {
        jpeg: payload,
        options: SubmitOptions {
            deadline: (deadline_us > 0).then(|| Duration::from_micros(deadline_us as u64)),
            degrade: flags & FLAG_DEGRADE_OK != 0,
            options,
        },
        v2: true,
    })
}

/// Incremental request parser for the event-driven frontend: examine the
/// head of `buf` without consuming input from any reader.
///
/// Returns `Ok(None)` when `buf` does not yet hold a complete frame (read
/// more), and `Ok(Some((frame, consumed)))` when it does — the caller
/// drains `consumed` bytes. A goodbye frame (zero-length) parses as
/// `Some((None, 4))`.
pub fn parse_request(buf: &[u8]) -> io::Result<Option<(Option<RequestFrame>, usize)>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let raw = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
    let v2 = raw & FRAME_V2_FLAG != 0;
    let len = raw & !FRAME_V2_FLAG;
    if len == 0 {
        return Ok(Some((None, 4)));
    }
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request length exceeds MAX_FRAME",
        ));
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let frame = decode_request_payload(v2, buf[4..total].to_vec())?;
    Ok(Some((Some(frame), total)))
}

/// Server side: write one response frame from a serve result.
pub fn write_response(w: &mut impl Write, result: &Result<Served, ServeError>) -> io::Result<()> {
    match result {
        Ok(s) if s.outcome.image.data.len() as u64 > MAX_RESPONSE as u64 => write_error(
            w,
            &format!(
                "decoded image is {} bytes, over the {} byte response cap",
                s.outcome.image.data.len(),
                MAX_RESPONSE
            ),
        )?,
        Ok(s) if !s.outcome.image.data.is_empty() => {
            w.write_all(&[if s.degraded { 4u8 } else { 0u8 }])?;
            w.write_all(&(s.outcome.image.width as u32).to_be_bytes())?;
            w.write_all(&(s.outcome.image.height as u32).to_be_bytes())?;
            w.write_all(&(s.outcome.image.data.len() as u32).to_be_bytes())?;
            w.write_all(&s.outcome.image.data)?;
        }
        Ok(_) => write_error(w, "server produced no RGB output (planar options?)")?,
        Err(ServeError::Busy { retry_after }) => {
            w.write_all(&[2u8])?;
            let us = retry_after.as_micros().min(u32::MAX as u128) as u32;
            w.write_all(&us.to_be_bytes())?;
        }
        Err(ServeError::Shutdown) => w.write_all(&[3u8])?,
        Err(e) => write_error(w, &e.to_string())?,
    }
    w.flush()
}

fn write_error(w: &mut impl Write, msg: &str) -> io::Result<()> {
    let bytes = msg.as_bytes();
    w.write_all(&[1u8])?;
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)
}

/// `true` when `HETJPEG_SERVE_STREAMING` is set non-empty and not `"0"`:
/// the serving loops then stream every v2 response regardless of
/// [`FLAG_STREAM_OK`]. v1 frames are never streamed — their clients
/// predate response statuses ≥ 2.
pub fn forced_streaming() -> bool {
    std::env::var_os("HETJPEG_SERVE_STREAMING").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Server side: relay a streaming decode ([`ServedStream`]) to the wire as
/// StreamBegin / StreamChunk* / StreamFinal frames, forwarding each
/// MCU-row tile as it arrives so peak buffering stays at the tile pool,
/// not the image.
///
/// Failure mapping follows the grammar: an error *before* StreamBegin has
/// been written degrades to an ordinary status-1/2/3 frame (the client
/// never learns a stream was attempted); an error *after* is an abort
/// StreamFinal, because the stream header is already on the wire.
pub fn write_stream_response(w: &mut impl Write, stream: &ServedStream) -> io::Result<()> {
    let mut begun = false;
    let mut crc = Crc32::new();
    loop {
        match stream.recv() {
            Some(StreamEvent::Begin {
                width,
                height,
                degraded,
            }) => {
                w.write_all(&[STATUS_STREAM_BEGIN, u8::from(degraded)])?;
                w.write_all(&width.to_be_bytes())?;
                w.write_all(&height.to_be_bytes())?;
                begun = true;
            }
            Some(StreamEvent::Tile(tile)) => {
                let bytes = tile.bytes();
                crc.update(bytes);
                w.write_all(&[STATUS_STREAM_CHUNK])?;
                w.write_all(&(bytes.len() as u32).to_be_bytes())?;
                w.write_all(bytes)?;
                // `tile` drops here, returning its buffer to the shard's
                // tile pool — the backpressure that bounds peak memory.
            }
            Some(StreamEvent::End(result)) => {
                match result {
                    Ok(_) => {
                        w.write_all(&[STATUS_STREAM_FINAL, 0u8])?;
                        w.write_all(&crc.finish().to_be_bytes())?;
                    }
                    Err(e) => write_stream_failure(w, begun, &e)?,
                }
                return w.flush();
            }
            None => {
                // Worker hung up without an End event (shard died
                // mid-stream).
                write_stream_failure(w, begun, &ServeError::WorkerGone)?;
                return w.flush();
            }
        }
    }
}

/// Encode a stream failure: abort-final when the stream header is already
/// out, plain error/busy/shutdown frame when it is not. (Also used by the
/// event-driven frontend, which serializes streams incrementally.)
pub(crate) fn write_stream_failure(
    w: &mut impl Write,
    begun: bool,
    e: &ServeError,
) -> io::Result<()> {
    if begun {
        let msg = e.to_string();
        let bytes = msg.as_bytes();
        w.write_all(&[STATUS_STREAM_FINAL, 1u8])?;
        w.write_all(&(bytes.len() as u32).to_be_bytes())?;
        w.write_all(bytes)
    } else {
        match e {
            ServeError::Busy { retry_after } => {
                w.write_all(&[2u8])?;
                let us = retry_after.as_micros().min(u32::MAX as u128) as u32;
                w.write_all(&us.to_be_bytes())
            }
            ServeError::Shutdown => w.write_all(&[3u8]),
            e => write_error(w, &e.to_string()),
        }
    }
}

/// Client side: read one response frame. The `Result` is transport
/// failure; per-request outcomes (including errors, sheds and the
/// shutdown drain) arrive in-band as [`ServerReply`] variants. Streamed
/// responses (status 5/6/7) are reassembled into one whole-image
/// [`ResponseFrame`] — bit-identical to a non-streamed reply — with the
/// running CRC verified against the StreamFinal trailer.
pub fn read_response(r: &mut impl Read) -> io::Result<ServerReply> {
    read_response_impl(r, None)
}

/// Like [`read_response`], but hands each streamed row-tile chunk to
/// `sink` as it arrives *instead of* accumulating the whole image — the
/// reassembled frame in a streamed `Ok`/`Degraded` reply carries empty
/// `rgb` (dimensions are still filled in). Non-streamed replies are
/// returned whole and never touch the sink.
pub fn read_response_streamed(
    r: &mut impl Read,
    sink: &mut dyn FnMut(&[u8]),
) -> io::Result<ServerReply> {
    read_response_impl(r, Some(sink))
}

/// Destination for streamed row-tile chunks: `None` buffers them into the
/// returned frame, `Some(sink)` hands each chunk over exactly once.
type ChunkSink<'a> = Option<&'a mut dyn FnMut(&[u8])>;

fn read_response_impl(r: &mut impl Read, mut sink: ChunkSink<'_>) -> io::Result<ServerReply> {
    let mut status = [0u8; 1];
    read_full(r, &mut status)?;
    let mut u32_buf = [0u8; 4];
    match status[0] {
        s @ (0 | 4) => {
            read_full(r, &mut u32_buf)?;
            let width = u32::from_be_bytes(u32_buf);
            read_full(r, &mut u32_buf)?;
            let height = u32::from_be_bytes(u32_buf);
            read_full(r, &mut u32_buf)?;
            let len = u32::from_be_bytes(u32_buf);
            if len > MAX_RESPONSE {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "response length exceeds MAX_RESPONSE",
                ));
            }
            let mut rgb = vec![0u8; len as usize];
            read_full(r, &mut rgb)?;
            let frame = ResponseFrame { width, height, rgb };
            Ok(if s == 0 {
                ServerReply::Ok(frame)
            } else {
                ServerReply::Degraded(frame)
            })
        }
        1 => {
            read_full(r, &mut u32_buf)?;
            let len = u32::from_be_bytes(u32_buf);
            if len > MAX_FRAME {
                // A clamped partial read would desync the stream; treat an
                // absurd error-message length the same as an absurd RGB
                // length.
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "error-message length exceeds MAX_FRAME",
                ));
            }
            let mut msg = vec![0u8; len as usize];
            read_full(r, &mut msg)?;
            Ok(ServerReply::Error(
                String::from_utf8_lossy(&msg).into_owned(),
            ))
        }
        2 => {
            read_full(r, &mut u32_buf)?;
            Ok(ServerReply::Busy {
                retry_after: Duration::from_micros(u32::from_be_bytes(u32_buf) as u64),
            })
        }
        3 => Ok(ServerReply::Shutdown),
        5 => {
            let mut head = [0u8; 9];
            read_full(r, &mut head)?;
            let degraded = head[0] != 0;
            let width = u32::from_be_bytes([head[1], head[2], head[3], head[4]]);
            let height = u32::from_be_bytes([head[5], head[6], head[7], head[8]]);
            let mut rgb = Vec::new();
            let mut crc = Crc32::new();
            loop {
                read_full(r, &mut status)?;
                match status[0] {
                    STATUS_STREAM_CHUNK => {
                        read_full(r, &mut u32_buf)?;
                        let n = u32::from_be_bytes(u32_buf);
                        if n > MAX_RESPONSE {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                "stream chunk exceeds MAX_RESPONSE",
                            ));
                        }
                        let mut chunk = vec![0u8; n as usize];
                        read_full(r, &mut chunk)?;
                        crc.update(&chunk);
                        match sink.as_deref_mut() {
                            Some(f) => f(&chunk),
                            None => {
                                if rgb.len() as u64 + chunk.len() as u64 > MAX_RESPONSE as u64 {
                                    return Err(io::Error::new(
                                        io::ErrorKind::InvalidData,
                                        "streamed response exceeds MAX_RESPONSE",
                                    ));
                                }
                                rgb.extend_from_slice(&chunk);
                            }
                        }
                    }
                    STATUS_STREAM_FINAL => {
                        let mut kind = [0u8; 1];
                        read_full(r, &mut kind)?;
                        if kind[0] == 0 {
                            read_full(r, &mut u32_buf)?;
                            let wire_crc = u32::from_be_bytes(u32_buf);
                            if wire_crc != crc.finish() {
                                return Err(io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    "stream CRC mismatch",
                                ));
                            }
                            let frame = ResponseFrame { width, height, rgb };
                            return Ok(if degraded {
                                ServerReply::Degraded(frame)
                            } else {
                                ServerReply::Ok(frame)
                            });
                        }
                        // Abort trailer: the stream died mid-flight; the
                        // error message is the reply.
                        read_full(r, &mut u32_buf)?;
                        let len = u32::from_be_bytes(u32_buf);
                        if len > MAX_FRAME {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                "abort-message length exceeds MAX_FRAME",
                            ));
                        }
                        let mut msg = vec![0u8; len as usize];
                        read_full(r, &mut msg)?;
                        return Ok(ServerReply::Error(
                            String::from_utf8_lossy(&msg).into_owned(),
                        ));
                    }
                    s => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unexpected status {s} inside a stream"),
                        ))
                    }
                }
            }
        }
        s => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown response status {s}"),
        )),
    }
}

/// Serve one connection: read request frames from `reader`, submit each to
/// the shard pool as it arrives, and write responses to `writer` in
/// request order from a companion thread — pipelined clients keep the
/// admission queues fed, so their frames can coalesce into batches.
/// Returns the number of requests served.
pub fn serve_connection(
    handle: &ServeHandle,
    reader: &mut impl Read,
    writer: &mut (impl Write + Send),
) -> io::Result<u64> {
    let force = forced_streaming();
    let mut served = 0u64;
    std::thread::scope(|s| -> io::Result<u64> {
        let (tx, rx) = mpsc::channel::<Result<Ticket, ServeError>>();
        let responder = s.spawn(move || -> io::Result<u64> {
            let mut n = 0u64;
            for ticket in rx {
                match ticket.map(Ticket::wait_reply) {
                    Ok(Ok(ServeReply::Whole(served))) => {
                        write_response(writer, &Ok(served))?;
                    }
                    Ok(Ok(ServeReply::Stream(stream))) => {
                        write_stream_response(writer, &stream)?;
                    }
                    Ok(Err(e)) | Err(e) => write_response(writer, &Err(e))?,
                }
                n += 1;
            }
            Ok(n)
        });
        while let Some(mut frame) = read_request(reader)? {
            // Only v2 clients understand stream statuses, so the forced-
            // streaming override never applies to a v1 frame.
            if force && frame.v2 {
                frame.options.options.streaming = true;
            }
            // Submission errors (shutdown, admission sheds) still produce
            // an in-order response frame for this request.
            let submitted = handle.submit_with(frame.jpeg, frame.options);
            if tx.send(submitted).is_err() {
                break; // responder hit an I/O error and hung up
            }
        }
        drop(tx);
        served = responder.join().expect("responder thread")?;
        Ok(served)
    })?;
    Ok(served)
}

/// Default cap on concurrently served TCP connections (see
/// [`serve_tcp_with`] to pick another). Each thread-per-connection
/// connection costs two OS threads (reader + responder); beyond the cap
/// new connections receive a Busy frame with a retry-after hint and are
/// then closed — an in-band shed, not a silent drop. Decode throughput is
/// bounded by the shard count, so a few hundred pipelined connections
/// saturate any pool long before this limit costs a legitimate client
/// anything.
pub const MAX_CONNECTIONS: usize = 256;

/// [`serve_tcp`] with the default [`MAX_CONNECTIONS`] cap.
pub fn serve_tcp(handle: &ServeHandle, listener: TcpListener) -> io::Result<()> {
    serve_tcp_with(handle, listener, MAX_CONNECTIONS)
}

/// Accept loop: serve every incoming TCP connection on its own thread
/// until the listener fails (e.g. is closed externally). Each connection
/// gets a clone of the handle, so all connections share the shard pool.
/// At most `max_connections` are served at once; an excess connection is
/// told so — a status-2 Busy frame with a retry-after hint — before being
/// closed, so its client can back off instead of diagnosing a mystery
/// hangup. (For an event-driven front end that holds thousands of idle
/// connections without threads, see [`crate::frontend`].)
///
/// Per-connection accept failures (a client resetting mid-handshake,
/// transient fd exhaustion) are skipped rather than allowed to take the
/// whole accept loop — and with it the server — down. A `try_clone`
/// failure on an accepted connection is answered with an in-band error
/// frame rather than a silent close. When the active fault plan carries
/// read faults, every connection reader is wrapped in a [`ChaosReader`];
/// a torn connection kills only that connection.
pub fn serve_tcp_with(
    handle: &ServeHandle,
    listener: TcpListener,
    max_connections: usize,
) -> io::Result<()> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let active = AtomicUsize::new(0);
    let active = &active;
    std::thread::scope(|s| {
        for stream in listener.incoming() {
            let mut stream = match stream {
                Ok(stream) => stream,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionAborted
                            | io::ErrorKind::ConnectionReset
                            | io::ErrorKind::Interrupted
                            | io::ErrorKind::WouldBlock
                    ) =>
                {
                    continue
                }
                // EMFILE/ENFILE: the fd table is full because of *other*
                // connections; back off briefly instead of dying.
                Err(e) if matches!(e.raw_os_error(), Some(23) | Some(24)) => {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
                Err(e) => return Err(e),
            };
            if active.fetch_add(1, Ordering::AcqRel) >= max_connections {
                active.fetch_sub(1, Ordering::AcqRel);
                // Tell the client why before closing: Busy with a
                // retry-after hint, the same shed a full admission queue
                // produces.
                let _ = write_response(
                    &mut stream,
                    &Err(ServeError::Busy {
                        retry_after: Duration::from_millis(10),
                    }),
                );
                drop(stream);
                continue;
            }
            let conn_handle = handle.clone();
            s.spawn(move || {
                match stream.try_clone() {
                    Ok(reader) => {
                        let chaos = conn_handle.fault_plan().filter(|p| p.has_read_faults());
                        let _ = match chaos {
                            Some(plan) => {
                                let mut reader = ChaosReader::new(reader, plan);
                                serve_connection(&conn_handle, &mut reader, &mut stream)
                            }
                            None => {
                                let mut reader = reader;
                                serve_connection(&conn_handle, &mut reader, &mut stream)
                            }
                        };
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                    }
                    Err(e) => {
                        // The connection is healthy — only the fd dup
                        // failed — so say what happened in-band instead of
                        // hanging up silently.
                        let _ = write_error(&mut stream, &format!("connection setup failed: {e}"));
                        let _ = stream.flush();
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                    }
                }
                active.fetch_sub(1, Ordering::AcqRel);
            });
        }
        Ok(())
    })
}

/// Serve request frames from stdin and write responses to stdout until
/// EOF or the goodbye frame — the scripting-friendly transport
/// (`hetjpeg-serve --stdio`). Returns the number of requests served.
pub fn serve_stdio(handle: &ServeHandle) -> io::Result<u64> {
    let stdin = io::stdin();
    let reader = stdin.lock();
    // `Stdout` (unlocked) is used because the responder thread needs a
    // `Send` writer; its internal line-buffer lock is taken per write.
    let mut writer = io::stdout();
    match handle.fault_plan().filter(|p| p.has_read_faults()) {
        Some(plan) => {
            let mut reader = ChaosReader::new(reader, plan);
            serve_connection(handle, &mut reader, &mut writer)
        }
        None => {
            let mut reader = reader;
            serve_connection(handle, &mut reader, &mut writer)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use std::sync::Arc;

    #[test]
    fn request_frames_roundtrip() {
        let mut buf = Vec::new();
        write_request(&mut buf, b"hello jpeg").unwrap();
        write_goodbye(&mut buf).unwrap();
        let mut r = io::Cursor::new(buf);
        let frame = read_request(&mut r).unwrap().expect("one frame");
        assert_eq!(frame.jpeg, b"hello jpeg");
        assert_eq!(frame.options.deadline, None);
        assert!(!frame.options.degrade);
        assert!(read_request(&mut r).unwrap().is_none());
        // Clean EOF also reads as end-of-stream.
        assert!(read_request(&mut io::Cursor::new(Vec::new()))
            .unwrap()
            .is_none());
    }

    #[test]
    fn v2_request_frames_carry_deadline_and_degrade() {
        let mut buf = Vec::new();
        write_request_v2(
            &mut buf,
            b"v2 jpeg",
            Some(Duration::from_micros(1500)),
            true,
        )
        .unwrap();
        write_request_v2(&mut buf, b"no slo", None, false).unwrap();
        let mut r = io::Cursor::new(buf);
        let frame = read_request(&mut r).unwrap().expect("v2 frame");
        assert_eq!(frame.jpeg, b"v2 jpeg");
        assert_eq!(frame.options.deadline, Some(Duration::from_micros(1500)));
        assert!(frame.options.degrade);
        let frame = read_request(&mut r).unwrap().expect("second v2 frame");
        assert_eq!(frame.jpeg, b"no slo");
        assert_eq!(frame.options.deadline, None);
        assert!(!frame.options.degrade);
        // Sub-microsecond deadlines survive as 1 µs, not "no deadline".
        let mut buf = Vec::new();
        write_request_v2(&mut buf, b"x", Some(Duration::from_nanos(3)), false).unwrap();
        let frame = read_request(&mut io::Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(frame.options.deadline, Some(Duration::from_micros(1)));
    }

    #[test]
    fn malformed_v2_headers_are_protocol_errors() {
        // jpeg_len disagreeing with the frame length must not desync.
        let mut buf = Vec::new();
        buf.extend_from_slice(&((V2_HEADER_LEN as u32 + 4) | FRAME_V2_FLAG).to_be_bytes());
        buf.extend_from_slice(&[2u8, 0]);
        buf.extend_from_slice(&0u32.to_be_bytes()); // deadline
        buf.extend_from_slice(&99u32.to_be_bytes()); // lies about jpeg_len
        buf.extend_from_slice(&[1, 2, 3, 4]);
        let err = read_request(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Unknown version byte.
        let mut buf = Vec::new();
        buf.extend_from_slice(&((V2_HEADER_LEN as u32) | FRAME_V2_FLAG).to_be_bytes());
        buf.extend_from_slice(&[9u8, 0]);
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        let err = read_request(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_length_is_a_protocol_error_not_an_allocation() {
        let mut framed = Vec::new();
        framed.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        framed.extend_from_slice(&[0u8; 16]);
        let err = read_request(&mut io::Cursor::new(framed)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_an_io_error() {
        let mut framed = Vec::new();
        framed.extend_from_slice(&100u32.to_be_bytes());
        framed.extend_from_slice(&[7u8; 10]); // promises 100, delivers 10
        assert!(read_request(&mut io::Cursor::new(framed)).is_err());
    }

    #[test]
    fn oversized_response_lengths_are_protocol_errors() {
        // Success frame promising more RGB than MAX_RESPONSE.
        let mut buf = vec![0u8];
        buf.extend_from_slice(&5u32.to_be_bytes());
        buf.extend_from_slice(&5u32.to_be_bytes());
        buf.extend_from_slice(&(MAX_RESPONSE + 1).to_be_bytes());
        let err = read_response(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Error frame promising an absurd message length must also be a
        // hard error — clamping would desync the stream.
        let mut buf = vec![1u8];
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        let err = read_response(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn error_busy_and_shutdown_responses_roundtrip() {
        let mut buf = Vec::new();
        write_response(
            &mut buf,
            &Err(ServeError::Decode(
                hetjpeg_jpeg::error::Error::BadHuffmanCode,
            )),
        )
        .unwrap();
        write_response(
            &mut buf,
            &Err(ServeError::Busy {
                retry_after: Duration::from_micros(777),
            }),
        )
        .unwrap();
        write_response(&mut buf, &Err(ServeError::Shutdown)).unwrap();
        let mut r = io::Cursor::new(buf);
        match read_response(&mut r).unwrap() {
            ServerReply::Error(msg) => assert!(msg.contains("decode failed"), "{msg}"),
            other => panic!("expected error reply, got {other:?}"),
        }
        assert_eq!(
            read_response(&mut r).unwrap(),
            ServerReply::Busy {
                retry_after: Duration::from_micros(777)
            }
        );
        assert_eq!(read_response(&mut r).unwrap(), ServerReply::Shutdown);
    }

    #[test]
    fn eintr_and_short_reads_do_not_desync_request_framing() {
        // Satellite regression (PR 8): every read in read_request — prefix
        // remainder and payload included — must survive EINTR and one-byte
        // reads. The chaos harness's short-read site makes *every* read
        // either interrupted or one byte long.
        let payload: Vec<u8> = (0u8..200).collect();
        let mut buf = Vec::new();
        write_request(&mut buf, &payload).unwrap();
        write_request_v2(&mut buf, &payload, Some(Duration::from_millis(5)), true).unwrap();
        write_goodbye(&mut buf).unwrap();
        let plan = Arc::new(FaultPlan::parse("shortread=1:11").unwrap());
        let mut r = ChaosReader::new(io::Cursor::new(buf), plan);
        let first = read_request(&mut r).unwrap().expect("v1 frame survives");
        assert_eq!(first.jpeg, payload);
        let second = read_request(&mut r).unwrap().expect("v2 frame survives");
        assert_eq!(second.jpeg, payload);
        assert_eq!(second.options.deadline, Some(Duration::from_millis(5)));
        assert!(second.options.degrade);
        assert!(read_request(&mut r).unwrap().is_none(), "goodbye survives");
    }

    #[test]
    fn torn_reads_surface_as_connection_errors() {
        let mut buf = Vec::new();
        write_request(&mut buf, &[9u8; 64]).unwrap();
        let plan = Arc::new(FaultPlan::parse("torn=#2").unwrap());
        let mut r = ChaosReader::new(io::Cursor::new(buf), plan);
        let err = read_request(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }

    fn full_options() -> RequestOptions {
        RequestOptions {
            format: Some(OutputFormat::PlanarYcc),
            strictness: Some(Strictness::Tolerant),
            max_pixels: Some(123_456_789_012),
            simd_cap: Some(SimdLevel::Sse2),
            max_scans: Some(7),
            streaming: true,
        }
    }

    #[test]
    fn options_block_roundtrips_on_the_wire() {
        let sub = SubmitOptions {
            deadline: Some(Duration::from_micros(777)),
            degrade: true,
            options: full_options(),
        };
        let mut buf = Vec::new();
        write_request_v2_opts(&mut buf, b"opt jpeg", &sub).unwrap();
        let frame = read_request(&mut io::Cursor::new(buf))
            .unwrap()
            .expect("frame");
        assert!(frame.v2);
        assert_eq!(frame.jpeg, b"opt jpeg");
        assert_eq!(frame.options, sub);
    }

    #[test]
    fn empty_options_produce_no_block() {
        // Default options must serialize exactly as the plain v2 writer:
        // no FLAG_HAS_OPTIONS, no opt_len bytes on the wire.
        let mut plain = Vec::new();
        write_request_v2(&mut plain, b"x", Some(Duration::from_micros(5)), false).unwrap();
        let mut via_opts = Vec::new();
        write_request_v2_opts(
            &mut via_opts,
            b"x",
            &SubmitOptions {
                deadline: Some(Duration::from_micros(5)),
                degrade: false,
                options: RequestOptions::default(),
            },
        )
        .unwrap();
        assert_eq!(plain, via_opts);
    }

    #[test]
    fn deadline_edges_round_up_and_reject() {
        // Sub-microsecond: rounds UP to 1µs, never silently to "none".
        let mut buf = Vec::new();
        write_request_v2(&mut buf, b"j", Some(Duration::from_nanos(1)), false).unwrap();
        let frame = read_request(&mut io::Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(frame.options.deadline, Some(Duration::from_micros(1)));

        // Exactly u32::MAX µs: representable, roundtrips exactly.
        let max = Duration::from_micros(u32::MAX as u64);
        let mut buf = Vec::new();
        write_request_v2(&mut buf, b"j", Some(max), false).unwrap();
        let frame = read_request(&mut io::Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(frame.options.deadline, Some(max));

        // One microsecond over: rejected at write time, not saturated.
        let mut buf = Vec::new();
        let err = write_request_v2(
            &mut buf,
            b"j",
            Some(Duration::from_micros(u32::MAX as u64 + 1)),
            false,
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(buf.is_empty(), "nothing hit the wire");
    }

    #[test]
    fn deadline_wire_roundtrip_is_exact_across_the_range() {
        // Property sweep: every representable deadline comes back exactly
        // — no off-by-one anywhere in [1, u32::MAX] µs.
        let mut us: u64 = 1;
        let mut samples = vec![1u64, 2, u32::MAX as u64 - 1, u32::MAX as u64];
        while us < u32::MAX as u64 {
            samples.push(us);
            samples.push(us + 1);
            us = us.saturating_mul(3);
        }
        for us in samples {
            let d = Duration::from_micros(us.min(u32::MAX as u64));
            let mut buf = Vec::new();
            write_request_v2(&mut buf, b"p", Some(d), false).unwrap();
            let frame = read_request(&mut io::Cursor::new(buf)).unwrap().unwrap();
            assert_eq!(frame.options.deadline, Some(d), "us={us}");
        }
    }

    #[test]
    fn jpeg_len_mismatch_with_options_block_is_rejected() {
        let sub = SubmitOptions {
            deadline: None,
            degrade: false,
            options: RequestOptions {
                max_scans: Some(3),
                ..RequestOptions::default()
            },
        };
        let mut buf = Vec::new();
        write_request_v2_opts(&mut buf, b"mismatch me", &sub).unwrap();
        // Corrupt the jpeg_len field (header bytes 6..10 of the payload,
        // i.e. wire offset 4+6).
        buf[4 + 6..4 + 10].copy_from_slice(&999u32.to_be_bytes());
        let err = read_request(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("jpeg_len"));
    }

    #[test]
    fn unknown_tlv_tags_are_skipped_for_forward_compat() {
        // Hand-build a v2 frame whose options block mixes an unknown tag
        // (0xEE) between two known ones; the known ones must still parse.
        let mut tlv = Vec::new();
        tlv.extend_from_slice(&[OPT_STRICTNESS, 1, 1]);
        tlv.extend_from_slice(&[0xEE, 3, 1, 2, 3]); // future option
        tlv.extend_from_slice(&[OPT_MAX_SCANS, 4]);
        tlv.extend_from_slice(&5u32.to_be_bytes());
        let jpeg = b"fwd";
        let total = (V2_HEADER_LEN + 2 + tlv.len() + jpeg.len()) as u32;
        let mut buf = Vec::new();
        buf.extend_from_slice(&(total | FRAME_V2_FLAG).to_be_bytes());
        buf.extend_from_slice(&[2u8, FLAG_HAS_OPTIONS]);
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&(jpeg.len() as u32).to_be_bytes());
        buf.extend_from_slice(&(tlv.len() as u16).to_be_bytes());
        buf.extend_from_slice(&tlv);
        buf.extend_from_slice(jpeg);
        let frame = read_request(&mut io::Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(frame.jpeg, jpeg);
        assert_eq!(frame.options.options.strictness, Some(Strictness::Tolerant));
        assert_eq!(frame.options.options.max_scans, Some(5));
        assert_eq!(frame.options.options.format, None);
    }

    #[test]
    fn truncated_tlv_is_a_protocol_error() {
        // An options block whose last TLV claims more bytes than remain.
        let tlv = [OPT_MAX_PIXELS, 8, 0, 0]; // claims 8, has 2
        let jpeg = b"t";
        let total = (V2_HEADER_LEN + 2 + tlv.len() + jpeg.len()) as u32;
        let mut buf = Vec::new();
        buf.extend_from_slice(&(total | FRAME_V2_FLAG).to_be_bytes());
        buf.extend_from_slice(&[2u8, FLAG_HAS_OPTIONS]);
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&(jpeg.len() as u32).to_be_bytes());
        buf.extend_from_slice(&(tlv.len() as u16).to_be_bytes());
        buf.extend_from_slice(&tlv);
        buf.extend_from_slice(jpeg);
        let err = read_request(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn frame_length_cap_is_exact() {
        // MAX_FRAME on the nose is accepted; one byte over is refused at
        // write time and rejected at read time.
        let at_cap = vec![0u8; MAX_FRAME as usize];
        let mut buf = Vec::new();
        write_request(&mut buf, &at_cap).unwrap();
        let frame = read_request(&mut io::Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(frame.jpeg.len(), MAX_FRAME as usize);

        let over = vec![0u8; MAX_FRAME as usize + 1];
        let mut buf = Vec::new();
        let err = write_request(&mut buf, &over).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);

        // A hostile length prefix one over the cap is a read-side error.
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let err = read_request(&mut io::Cursor::new(wire)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // And the v2 writer accounts for its header + options overhead.
        let almost = vec![0u8; MAX_FRAME as usize - V2_HEADER_LEN + 1];
        let err = write_request_v2(&mut Vec::new(), &almost, None, false).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn parse_request_is_incremental_and_handles_goodbye() {
        let sub = SubmitOptions {
            deadline: Some(Duration::from_micros(42)),
            degrade: true,
            options: RequestOptions {
                streaming: true,
                ..RequestOptions::default()
            },
        };
        let mut wire = Vec::new();
        write_request_v2_opts(&mut wire, b"first", &sub).unwrap();
        write_request(&mut wire, b"second").unwrap();
        write_goodbye(&mut wire).unwrap();
        write_request(&mut wire, b"after goodbye, never parsed by a server").unwrap();

        // Byte-at-a-time: no prefix shorter than a full frame yields one.
        let mut fed = Vec::new();
        let mut frames = Vec::new();
        let mut goodbye_at = None;
        for (i, &b) in wire.iter().enumerate() {
            fed.push(b);
            loop {
                match parse_request(&fed).unwrap() {
                    None => break,
                    Some((None, consumed)) => {
                        fed.drain(..consumed);
                        goodbye_at = Some(i);
                        break;
                    }
                    Some((Some(frame), consumed)) => {
                        fed.drain(..consumed);
                        frames.push(frame);
                    }
                }
            }
            if goodbye_at.is_some() {
                break; // goodbye mid-pipeline: later bytes are ignored
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].jpeg, b"first");
        assert_eq!(frames[0].options, sub);
        assert!(frames[0].v2);
        assert_eq!(frames[1].jpeg, b"second");
        assert!(!frames[1].v2);
        assert!(goodbye_at.is_some(), "goodbye frame was recognized");
        assert!(fed.is_empty() || !frames.is_empty());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        let mut crc = Crc32::new();
        crc.update(b"123456789");
        assert_eq!(crc.finish(), 0xCBF4_3926);
        // Incremental == one-shot.
        let mut a = Crc32::new();
        a.update(b"1234");
        a.update(b"56789");
        assert_eq!(a.finish(), 0xCBF4_3926);
        assert_eq!(Crc32::new().finish(), 0);
    }

    #[test]
    fn streamed_response_reassembles_and_verifies_crc() {
        // Hand-craft a streamed wire response and read it back whole.
        let tiles: [&[u8]; 3] = [&[1, 2, 3, 4, 5, 6], &[7, 8, 9, 10, 11, 12], &[13, 14, 15]];
        let mut crc = Crc32::new();
        let mut wire = vec![STATUS_STREAM_BEGIN, 0u8];
        wire.extend_from_slice(&5u32.to_be_bytes());
        wire.extend_from_slice(&1u32.to_be_bytes());
        for t in tiles {
            crc.update(t);
            wire.push(STATUS_STREAM_CHUNK);
            wire.extend_from_slice(&(t.len() as u32).to_be_bytes());
            wire.extend_from_slice(t);
        }
        wire.extend_from_slice(&[STATUS_STREAM_FINAL, 0u8]);
        wire.extend_from_slice(&crc.finish().to_be_bytes());

        let reply = read_response(&mut io::Cursor::new(wire.clone())).unwrap();
        let frame = reply.frame().expect("ok frame");
        assert_eq!(frame.width, 5);
        assert_eq!(frame.height, 1);
        assert_eq!(frame.rgb, (1u8..=15).collect::<Vec<_>>());

        // Sink mode: chunks arrive in order, frame body stays empty.
        let mut seen = Vec::new();
        let reply = read_response_streamed(&mut io::Cursor::new(wire.clone()), &mut |c| {
            seen.extend_from_slice(c)
        })
        .unwrap();
        assert_eq!(seen, (1u8..=15).collect::<Vec<_>>());
        assert!(reply.frame().unwrap().rgb.is_empty());

        // A flipped payload byte fails the CRC check.
        let mut bad = wire;
        let flip_at = 2 + 8 + 1 + 4; // first byte of the first chunk
        bad[flip_at] ^= 0xFF;
        let err = read_response(&mut io::Cursor::new(bad)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("CRC"));
    }

    #[test]
    fn stream_abort_surfaces_as_in_band_error() {
        let mut wire = vec![STATUS_STREAM_BEGIN, 0u8];
        wire.extend_from_slice(&4u32.to_be_bytes());
        wire.extend_from_slice(&4u32.to_be_bytes());
        wire.push(STATUS_STREAM_CHUNK);
        wire.extend_from_slice(&3u32.to_be_bytes());
        wire.extend_from_slice(&[1, 2, 3]);
        let msg = b"decode panicked mid-stream";
        wire.extend_from_slice(&[STATUS_STREAM_FINAL, 1u8]);
        wire.extend_from_slice(&(msg.len() as u32).to_be_bytes());
        wire.extend_from_slice(msg);
        match read_response(&mut io::Cursor::new(wire)).unwrap() {
            ServerReply::Error(m) => assert!(m.contains("mid-stream")),
            other => panic!("expected in-band error, got {other:?}"),
        }
    }
}
