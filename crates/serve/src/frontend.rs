//! Event-driven TCP front end: one thread, readiness-driven I/O, no
//! per-connection threads.
//!
//! The thread-per-connection loop in [`crate::protocol::serve_tcp`] costs
//! two OS threads per connection, which is why it needs a hard
//! [`crate::protocol::MAX_CONNECTIONS`] cap at all. This module replaces
//! it with a single-threaded readiness loop over nonblocking sockets
//! (epoll on Linux via the offline `polling` shim, a level-triggered
//! claim-all fallback elsewhere): idle connections cost one registered fd
//! and a small buffer, **zero threads**, so the connection cap becomes a
//! soft admission knob — an over-cap client is told `Busy` in-band with a
//! retry hint instead of being silently dropped.
//!
//! Per connection the loop:
//!
//! 1. reads until `WouldBlock` into an input buffer and cuts complete
//!    frames with [`parse_request`];
//! 2. submits each frame via [`ServeHandle::submit_nonblocking`] — the
//!    frontend thread must never sleep on a full shard queue, so queue
//!    pressure surfaces as an in-band `Busy` frame (same shed the SLO
//!    admission path produces);
//! 3. pumps replies **in request order**: whole images serialize straight
//!    into the output buffer; streamed replies drain their tile channel
//!    incrementally, so response memory for a streaming connection stays
//!    at a few row tiles plus the write watermark;
//! 4. writes until `WouldBlock`, closing once a goodbye (or EOF) has been
//!    read and every pending reply is flushed.
//!
//! Backpressure: the output buffer is only refilled while it holds less
//! than [`WRITE_WATERMARK`] unflushed bytes; a slow reader therefore
//! stalls its own stream's tile drain (tiles stay pooled in the shard)
//! rather than ballooning server memory.

use crate::pool::{ServeHandle, ServeReply, ServedStream, StreamEvent, Ticket, TryEvent};
use crate::protocol::{
    forced_streaming, parse_request, write_response, write_stream_failure, Crc32, MAX_FRAME,
    STATUS_STREAM_BEGIN, STATUS_STREAM_CHUNK, STATUS_STREAM_FINAL,
};
use crate::ServeError;
use polling::{Event, Interest, Poller};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Soft cap on concurrently open connections (default for
/// [`FrontEnd::new`]); over-cap accepts are answered with a `Busy` frame
/// and closed. Unlike the thread-per-connection cap this bounds only fd
/// and buffer usage — idle connections cost no threads.
pub const DEFAULT_MAX_CONNECTIONS: usize = 1024;

/// Stop refilling a connection's output buffer while it already holds
/// this many unflushed bytes. Bounds per-connection response memory and
/// exerts backpressure on streaming decodes (tiles stay in the shard's
/// bounded pool until the client drains).
pub const WRITE_WATERMARK: usize = 1 << 20;

/// Cap on a connection's *input* buffer. A frame can legitimately be up
/// to 4 + [`MAX_FRAME`] bytes; anything growing beyond that is a protocol
/// violation.
const READ_LIMIT: usize = 4 + MAX_FRAME as usize;

/// Per-tick poll timeout. The loop must wake even with no socket events
/// to pump decode replies that completed in the shard pool.
const TICK: Duration = Duration::from_millis(1);

/// Counters published by [`FrontEnd::run`] (readable concurrently via
/// [`FrontEndStats`]).
#[derive(Debug, Default)]
pub struct FrontEndCounters {
    accepted: AtomicU64,
    rejected: AtomicU64,
    requests: AtomicU64,
    peak_connections: AtomicU64,
}

/// Snapshot of a front end's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontEndStats {
    /// Connections accepted and served.
    pub accepted: u64,
    /// Connections refused over the cap (each got a `Busy` frame first).
    pub rejected: u64,
    /// Request frames parsed and submitted.
    pub requests: u64,
    /// High-water mark of concurrently open connections.
    pub peak_connections: u64,
}

/// One queued reply slot. Replies are written strictly in request order,
/// so a slot may sit behind earlier slots while already resolved.
enum Pending {
    /// Fully serialized response bytes, ready to copy out.
    Ready(Vec<u8>),
    /// Submitted to the pool; resolved by polling the ticket.
    Waiting(Ticket),
    /// A streamed reply mid-drain: tiles are serialized as they arrive.
    Streaming {
        stream: ServedStream,
        begun: bool,
        crc: Crc32,
    },
}

/// Per-connection state.
struct Conn {
    stream: TcpStream,
    /// Unparsed request bytes.
    buf: Vec<u8>,
    /// In-order reply queue.
    pending: VecDeque<Pending>,
    /// Serialized-but-unflushed response bytes.
    out: Vec<u8>,
    /// Flushed prefix of `out`.
    out_pos: usize,
    /// Goodbye or EOF seen: close once `pending` and `out` drain.
    closing: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            pending: VecDeque::new(),
            out: Vec::new(),
            out_pos: 0,
            closing: false,
        }
    }

    fn unflushed(&self) -> usize {
        self.out.len() - self.out_pos
    }

    fn done(&self) -> bool {
        self.closing && self.pending.is_empty() && self.unflushed() == 0
    }
}

/// The event-driven front end. Construct with [`FrontEnd::new`], then
/// [`run`](FrontEnd::run) the loop (it owns the calling thread until
/// [`stop`](FrontEnd::stop) is flagged or the listener dies).
pub struct FrontEnd {
    handle: ServeHandle,
    listener: TcpListener,
    max_connections: usize,
    stop: AtomicBool,
    counters: FrontEndCounters,
}

impl FrontEnd {
    /// Wrap a listener with the [`DEFAULT_MAX_CONNECTIONS`] soft cap.
    pub fn new(handle: ServeHandle, listener: TcpListener) -> io::Result<FrontEnd> {
        FrontEnd::with_max_connections(handle, listener, DEFAULT_MAX_CONNECTIONS)
    }

    /// Wrap a listener with an explicit connection cap (`0` is clamped
    /// to 1).
    pub fn with_max_connections(
        handle: ServeHandle,
        listener: TcpListener,
        max_connections: usize,
    ) -> io::Result<FrontEnd> {
        listener.set_nonblocking(true)?;
        Ok(FrontEnd {
            handle,
            listener,
            max_connections: max_connections.max(1),
            stop: AtomicBool::new(false),
            counters: FrontEndCounters::default(),
        })
    }

    /// Flag the loop to exit after the current tick. Safe from any
    /// thread.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Counter snapshot; callable concurrently with [`run`](Self::run).
    pub fn stats(&self) -> FrontEndStats {
        FrontEndStats {
            accepted: self.counters.accepted.load(Ordering::Acquire),
            rejected: self.counters.rejected.load(Ordering::Acquire),
            requests: self.counters.requests.load(Ordering::Acquire),
            peak_connections: self.counters.peak_connections.load(Ordering::Acquire),
        }
    }

    /// Run the readiness loop on the calling thread until
    /// [`stop`](Self::stop) is flagged or the listener fails fatally.
    /// Returns the number of requests served.
    pub fn run(&self) -> io::Result<u64> {
        const LISTENER_TOKEN: u64 = u64::MAX;
        let force = forced_streaming();
        let mut poller = Poller::new()?;
        poller.register(
            self.listener.as_raw_fd(),
            LISTENER_TOKEN,
            Interest::READABLE,
        )?;
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_token = 0u64;
        let mut events: Vec<Event> = Vec::new();
        let mut dead: Vec<u64> = Vec::new();
        while !self.stop.load(Ordering::Acquire) {
            events.clear();
            poller.wait(&mut events, Some(TICK))?;
            let mut accept_ready = conns.is_empty() && events.is_empty();
            for ev in &events {
                if ev.token == LISTENER_TOKEN {
                    accept_ready = true;
                }
            }
            // The portable poller fallback reports nothing for an idle
            // tick; accepting opportunistically on a nonblocking listener
            // is free (WouldBlock) and keeps the fallback live.
            if accept_ready || events.is_empty() {
                self.accept_ready(&mut poller, &mut conns, &mut next_token)?;
            }
            // Readiness only tells us *which* connections to read first;
            // every connection still gets a reply-pump pass each tick
            // because decode completions are not fd events.
            for (&token, conn) in conns.iter_mut() {
                let readable =
                    events.iter().any(|e| e.token == token && e.readable) || conn.unflushed() == 0;
                let alive = (!readable || Self::fill(conn, &self.counters, &self.handle, force))
                    && Self::pump(conn)
                    && Self::flush(conn);
                if !alive || conn.done() {
                    dead.push(token);
                }
            }
            for token in dead.drain(..) {
                if let Some(conn) = conns.remove(&token) {
                    let _ = poller.deregister(conn.stream.as_raw_fd());
                    let _ = conn.stream.shutdown(Shutdown::Both);
                }
            }
        }
        Ok(self.counters.requests.load(Ordering::Acquire))
    }

    /// Drain the accept queue; over-cap connections get a `Busy` frame
    /// then close.
    fn accept_ready(
        &self,
        poller: &mut Poller,
        conns: &mut HashMap<u64, Conn>,
        next_token: &mut u64,
    ) -> io::Result<()> {
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionAborted
                            | io::ErrorKind::ConnectionReset
                            | io::ErrorKind::Interrupted
                    ) =>
                {
                    continue
                }
                Err(e) if matches!(e.raw_os_error(), Some(23) | Some(24)) => return Ok(()),
                Err(e) => return Err(e),
            };
            if conns.len() >= self.max_connections {
                self.counters.rejected.fetch_add(1, Ordering::AcqRel);
                let mut stream = stream;
                let _ = write_response(
                    &mut stream,
                    &Err(ServeError::Busy {
                        retry_after: Duration::from_millis(10),
                    }),
                );
                let _ = stream.shutdown(Shutdown::Both);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let token = *next_token;
            *next_token += 1;
            if poller
                .register(stream.as_raw_fd(), token, Interest::READABLE)
                .is_err()
            {
                continue;
            }
            self.counters.accepted.fetch_add(1, Ordering::AcqRel);
            conns.insert(token, Conn::new(stream));
            let open = conns.len() as u64;
            self.counters
                .peak_connections
                .fetch_max(open, Ordering::AcqRel);
        }
    }

    /// Read until `WouldBlock`, then parse and submit every complete
    /// frame. Returns `false` when the connection should be torn down
    /// (I/O error or protocol violation).
    fn fill(
        conn: &mut Conn,
        counters: &FrontEndCounters,
        handle: &ServeHandle,
        force: bool,
    ) -> bool {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.closing = true;
                    break;
                }
                Ok(n) => {
                    if conn.buf.len() + n > READ_LIMIT {
                        return false;
                    }
                    conn.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        loop {
            match parse_request(&conn.buf) {
                Ok(None) => break,
                Ok(Some((None, consumed))) => {
                    conn.buf.drain(..consumed);
                    conn.closing = true;
                    break;
                }
                Ok(Some((Some(mut frame), consumed))) => {
                    conn.buf.drain(..consumed);
                    if force && frame.v2 {
                        frame.options.options.streaming = true;
                    }
                    counters.requests.fetch_add(1, Ordering::AcqRel);
                    match handle.submit_nonblocking(frame.jpeg, frame.options) {
                        Ok(ticket) => conn.pending.push_back(Pending::Waiting(ticket)),
                        Err(e) => {
                            let mut out = Vec::new();
                            let _ = write_response(&mut out, &Err(e));
                            conn.pending.push_back(Pending::Ready(out));
                        }
                    }
                }
                Err(_) => return false,
            }
        }
        true
    }

    /// Move resolved replies, **in request order**, into the output
    /// buffer, stopping at the first still-waiting ticket or once the
    /// write watermark is reached. Returns `false` on a wedged reply
    /// channel with nothing recoverable (never happens in practice — the
    /// error is serialized in-band instead).
    fn pump(conn: &mut Conn) -> bool {
        while conn.unflushed() < WRITE_WATERMARK {
            let Some(front) = conn.pending.front_mut() else {
                break;
            };
            match front {
                Pending::Ready(bytes) => {
                    let bytes = std::mem::take(bytes);
                    conn.out.extend_from_slice(&bytes);
                    conn.pending.pop_front();
                }
                Pending::Waiting(ticket) => match ticket.try_reply() {
                    None => break,
                    Some(Ok(ServeReply::Whole(served))) => {
                        let mut out = Vec::new();
                        let _ = write_response(&mut out, &Ok(served));
                        conn.out.extend_from_slice(&out);
                        conn.pending.pop_front();
                    }
                    Some(Ok(ServeReply::Stream(stream))) => {
                        *front = Pending::Streaming {
                            stream,
                            begun: false,
                            crc: Crc32::new(),
                        };
                    }
                    Some(Err(e)) => {
                        let mut out = Vec::new();
                        let _ = write_response(&mut out, &Err(e));
                        conn.out.extend_from_slice(&out);
                        conn.pending.pop_front();
                    }
                },
                Pending::Streaming { stream, begun, crc } => {
                    match stream.try_next() {
                        TryEvent::Pending => break,
                        TryEvent::Event(StreamEvent::Begin {
                            width,
                            height,
                            degraded,
                        }) => {
                            conn.out
                                .extend_from_slice(&[STATUS_STREAM_BEGIN, u8::from(degraded)]);
                            conn.out.extend_from_slice(&width.to_be_bytes());
                            conn.out.extend_from_slice(&height.to_be_bytes());
                            *begun = true;
                        }
                        TryEvent::Event(StreamEvent::Tile(tile)) => {
                            let bytes = tile.bytes();
                            crc.update(bytes);
                            conn.out.extend_from_slice(&[STATUS_STREAM_CHUNK]);
                            conn.out
                                .extend_from_slice(&(bytes.len() as u32).to_be_bytes());
                            conn.out.extend_from_slice(bytes);
                        }
                        TryEvent::Event(StreamEvent::End(result)) => {
                            let terminal = match result {
                                Ok(_) if *begun => {
                                    let mut out = vec![STATUS_STREAM_FINAL, 0u8];
                                    out.extend_from_slice(&crc.finish().to_be_bytes());
                                    out
                                }
                                // Defensive: End(Ok) without a Begin means
                                // the decode emitted zero tiles — answer
                                // with a plain error frame, never a
                                // headerless stream trailer.
                                Ok(_) => {
                                    let mut out = Vec::new();
                                    let _ = write_stream_failure(
                                        &mut out,
                                        false,
                                        &ServeError::WorkerGone,
                                    );
                                    out
                                }
                                Err(e) => {
                                    let mut out = Vec::new();
                                    let _ = write_stream_failure(&mut out, *begun, &e);
                                    out
                                }
                            };
                            conn.out.extend_from_slice(&terminal);
                            conn.pending.pop_front();
                        }
                        TryEvent::Gone => {
                            let begun = *begun;
                            let mut out = Vec::new();
                            let _ = write_stream_failure(&mut out, begun, &ServeError::WorkerGone);
                            conn.out.extend_from_slice(&out);
                            conn.pending.pop_front();
                        }
                    }
                }
            }
        }
        true
    }

    /// Write `conn.out` until `WouldBlock`. Returns `false` on a dead
    /// socket.
    fn flush(conn: &mut Conn) -> bool {
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => return false,
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if conn.out_pos == conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
        } else if conn.out_pos > WRITE_WATERMARK {
            conn.out.drain(..conn.out_pos);
            conn.out_pos = 0;
        }
        true
    }
}

/// Convenience: run a front end to completion on the calling thread —
/// the event-driven analogue of
/// [`serve_tcp`](crate::protocol::serve_tcp). `stop` is checked each
/// tick; flip it from another thread (or a signal handler) to shut down.
pub fn serve_event_driven(
    handle: &ServeHandle,
    listener: TcpListener,
    max_connections: usize,
    stop: &AtomicBool,
) -> io::Result<u64> {
    let fe = FrontEnd::with_max_connections(handle.clone(), listener, max_connections)?;
    // Bridge the caller's stop flag into the front end's own.
    std::thread::scope(|s| {
        let fe_ref = &fe;
        let watcher = s.spawn(move || {
            while !stop.load(Ordering::Acquire) && !fe_ref.stop.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(5));
            }
            fe_ref.stop();
        });
        let served = fe.run();
        fe.stop(); // release the watcher if run() exited on its own
        let _ = watcher.join();
        served
    })
}
