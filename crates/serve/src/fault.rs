//! Deterministic fault injection for the serve layer.
//!
//! A [`FaultPlan`] is a seeded, reproducible schedule of failures injected
//! at **named sites** in the shard-worker and protocol paths. It exists so
//! the resilience machinery (panic isolation, session rebuild, circuit
//! breakers, SLO shedding, EINTR handling) can be *proved* rather than
//! hoped for: the chaos tests and `hetjpeg-serve --chaos-smoke` run real
//! traffic through a plan and assert exact counter deltas and bit-identical
//! output for every request the plan did not touch.
//!
//! ## Sites
//!
//! | site        | where it fires                  | effect                                     |
//! |-------------|---------------------------------|--------------------------------------------|
//! | `panic`     | shard worker, start of a decode | panics **inside the session lock** (via [`hetjpeg_core::Decoder::inject_panic`]), genuinely poisoning the session |
//! | `latency`   | shard worker, before a decode   | sleeps for the rule's duration argument    |
//! | `alloc`     | shard worker, request options   | caps `max_pixels` at 1, forcing the real allocation-guard error path |
//! | `shortread` | protocol reader ([`ChaosReader`]) | truncates reads to one byte and interleaves `EINTR` (`ErrorKind::Interrupted`) errors |
//! | `torn`      | protocol reader ([`ChaosReader`]) | fails the read with `ConnectionReset` and pins the stream dead — a torn connection mid-frame |
//!
//! ## Spec grammar (`HETJPEG_FAULT`)
//!
//! ```text
//! plan  := rule ("," rule)* [":" seed]
//! rule  := site ["@" shard] "=" when ["x" duration]
//! when  := N        every Nth occurrence of the site (1-based)
//!        | "#" N    exactly the Nth occurrence
//!        | "p" F    probability F in [0,1], decided by a seeded hash
//! ```
//!
//! Examples: `panic=#2` (the second decode on **each** shard panics),
//! `latency@1=3x2ms` (every third decode on shard 1 sleeps 2 ms),
//! `shortread=1,torn=#40:7` (every protocol read is short, the 40th read
//! tears the connection; seed 7). Occurrences are counted per `(rule,
//! shard)` — the schedule is reproducible per shard regardless of how the
//! OS interleaves shard threads.
//!
//! Plans are **off by default and zero-cost when absent**: the worker and
//! protocol paths carry an `Option<Arc<FaultPlan>>` that is `None` unless
//! [`crate::ServeConfig::fault_plan`] or the `HETJPEG_FAULT` environment
//! variable supplies one.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A named injection point. See the module docs for where each site fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Panic inside the shard session lock (poisons the session).
    Panic,
    /// Sleep before a decode (a stalled worker / slow request).
    Latency,
    /// Force the allocation-cap (`max_pixels`) error path for a request.
    AllocCap,
    /// One-byte reads with interleaved `EINTR` on the protocol reader.
    ShortRead,
    /// Connection torn mid-frame on the protocol reader.
    TornRead,
}

impl FaultSite {
    fn parse(s: &str) -> Option<FaultSite> {
        Some(match s {
            "panic" => FaultSite::Panic,
            "latency" => FaultSite::Latency,
            "alloc" => FaultSite::AllocCap,
            "shortread" => FaultSite::ShortRead,
            "torn" => FaultSite::TornRead,
            _ => return None,
        })
    }

    fn name(self) -> &'static str {
        match self {
            FaultSite::Panic => "panic",
            FaultSite::Latency => "latency",
            FaultSite::AllocCap => "alloc",
            FaultSite::ShortRead => "shortread",
            FaultSite::TornRead => "torn",
        }
    }
}

/// When a rule fires, relative to the per-`(rule, shard)` occurrence count.
#[derive(Debug, Clone, Copy, PartialEq)]
enum When {
    /// Every Nth occurrence (count % n == 0).
    Every(u64),
    /// Exactly the Nth occurrence.
    Nth(u64),
    /// Seeded pseudo-random with this probability per occurrence.
    Prob(f64),
}

/// One parsed fault rule.
#[derive(Debug, Clone, PartialEq)]
struct Rule {
    site: FaultSite,
    /// Restrict to one shard; `None` applies to every shard (each with its
    /// own occurrence counter). Protocol sites ignore the shard field.
    shard: Option<usize>,
    when: When,
    /// Duration argument (`latency` only).
    arg: Option<Duration>,
}

/// A malformed `HETJPEG_FAULT` / fault-plan spec; carries the offending
/// fragment and what was expected of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError {
    /// The fragment that failed to parse.
    pub fragment: String,
    /// What the parser expected there.
    pub expected: &'static str,
}

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad fault spec fragment {:?}: expected {}",
            self.fragment, self.expected
        )
    }
}

impl std::error::Error for FaultParseError {}

/// A seeded, reproducible fault-injection schedule. See the module docs.
pub struct FaultPlan {
    seed: u64,
    rules: Vec<Rule>,
    /// Occurrence counters per `(rule index, shard)`. Protocol sites use
    /// [`NO_SHARD`]. A `Mutex<HashMap>` rather than a flat array because
    /// the shard count is unknown at parse time; the map is touched only
    /// when a plan is active, never on the fault-free fast path.
    counts: Mutex<HashMap<(usize, usize), u64>>,
    /// Total injections fired, for observability.
    fired: AtomicU64,
}

/// Shard index used for sites that fire outside any shard (protocol reads).
const NO_SHARD: usize = usize::MAX;

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("rules", &self.rules)
            .field("fired", &self.fired.load(Ordering::Relaxed))
            .finish()
    }
}

fn parse_duration(s: &str) -> Option<Duration> {
    let (num, unit) = s.split_at(s.find(|c: char| c.is_ascii_alphabetic())?);
    let n: u64 = num.parse().ok()?;
    Some(match unit {
        "ns" => Duration::from_nanos(n),
        "us" => Duration::from_micros(n),
        "ms" => Duration::from_millis(n),
        "s" => Duration::from_secs(n),
        _ => return None,
    })
}

impl FaultPlan {
    /// Parse a plan from the spec grammar documented on the module.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultParseError> {
        let err = |fragment: &str, expected: &'static str| FaultParseError {
            fragment: fragment.to_string(),
            expected,
        };
        // The seed is the final ":"-separated field when it parses as an
        // integer; rule bodies never contain ":".
        let (body, seed) = match spec.rsplit_once(':') {
            Some((body, tail)) => match tail.parse::<u64>() {
                Ok(seed) => (body, seed),
                Err(_) => return Err(err(tail, "a u64 seed after the final ':'")),
            },
            None => (spec, 0),
        };
        let mut rules = Vec::new();
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (lhs, rhs) = part
                .split_once('=')
                .ok_or_else(|| err(part, "site[@shard]=when[xduration]"))?;
            let (site_s, shard) = match lhs.split_once('@') {
                Some((site, shard)) => (
                    site,
                    Some(
                        shard
                            .parse::<usize>()
                            .map_err(|_| err(shard, "a shard index after '@'"))?,
                    ),
                ),
                None => (lhs, None),
            };
            let site = FaultSite::parse(site_s)
                .ok_or_else(|| err(site_s, "panic|latency|alloc|shortread|torn"))?;
            let (when_s, arg) = match rhs.split_once('x') {
                Some((w, a)) => (
                    w,
                    Some(parse_duration(a).ok_or_else(|| err(a, "a duration like 200us or 2ms"))?),
                ),
                None => (rhs, None),
            };
            let when = if let Some(n) = when_s.strip_prefix('#') {
                When::Nth(
                    n.parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| err(when_s, "#N with N >= 1"))?,
                )
            } else if let Some(p) = when_s.strip_prefix('p') {
                let p: f64 = p
                    .parse()
                    .ok()
                    .filter(|p| (0.0..=1.0).contains(p))
                    .ok_or_else(|| err(when_s, "pF with F in [0,1]"))?;
                When::Prob(p)
            } else {
                When::Every(
                    when_s
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| err(when_s, "N (every Nth), #N (the Nth) or pF"))?,
                )
            };
            if site == FaultSite::Latency && arg.is_none() {
                return Err(err(part, "latency rules need an xDURATION argument"));
            }
            rules.push(Rule {
                site,
                shard,
                when,
                arg,
            });
        }
        if rules.is_empty() {
            return Err(err(spec, "at least one rule"));
        }
        Ok(FaultPlan {
            seed,
            rules,
            counts: Mutex::new(HashMap::new()),
            fired: AtomicU64::new(0),
        })
    }

    /// Read a plan from the `HETJPEG_FAULT` environment variable. `Ok(None)`
    /// when the variable is unset or empty; `Err` when it is set but
    /// malformed (a server must refuse to start on a typo rather than run
    /// chaos-free while the operator believes faults are active).
    pub fn from_env() -> Result<Option<Arc<FaultPlan>>, FaultParseError> {
        match std::env::var("HETJPEG_FAULT") {
            Ok(spec) if !spec.trim().is_empty() => Ok(Some(Arc::new(FaultPlan::parse(&spec)?))),
            _ => Ok(None),
        }
    }

    /// Record one occurrence of `site` on `shard` and report whether any
    /// matching rule fires for it. Occurrence counters are per `(rule,
    /// shard)`, so the decision sequence each shard observes is a pure
    /// function of the plan — independent of thread interleaving across
    /// shards.
    pub fn fires(&self, site: FaultSite, shard: Option<usize>) -> bool {
        self.decide(site, shard).is_some()
    }

    /// Like [`Self::fires`] for the `latency` site, returning the sleep
    /// duration of the first firing rule.
    pub fn latency(&self, shard: Option<usize>) -> Option<Duration> {
        self.decide(FaultSite::Latency, shard)
            .and_then(|rule_idx| self.rules[rule_idx].arg)
    }

    fn decide(&self, site: FaultSite, shard: Option<usize>) -> Option<usize> {
        let shard_key = shard.unwrap_or(NO_SHARD);
        let mut counts = self.counts.lock().expect("fault plan counters");
        let mut hit = None;
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.site != site {
                continue;
            }
            if let (Some(want), Some(have)) = (rule.shard, shard) {
                if want != have {
                    continue;
                }
            }
            let n = counts.entry((i, shard_key)).or_insert(0);
            *n += 1;
            let fires = match rule.when {
                When::Every(k) => (*n).is_multiple_of(k),
                When::Nth(k) => *n == k,
                When::Prob(p) => {
                    // Seeded hash of (seed, rule, shard, occurrence): the
                    // same plan replays the same decisions.
                    let h =
                        splitmix64(self.seed ^ (i as u64) << 48 ^ (shard_key as u64) << 24 ^ *n);
                    // Top 53 bits as a uniform float in [0,1).
                    ((h >> 11) as f64) / ((1u64 << 53) as f64) < p
                }
            };
            if fires && hit.is_none() {
                hit = Some(i);
            }
        }
        if hit.is_some() {
            self.fired.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// True when the plan contains protocol-read sites (`shortread` /
    /// `torn`) — what decides whether a connection reader is wrapped in a
    /// [`ChaosReader`].
    pub fn has_read_faults(&self) -> bool {
        self.rules
            .iter()
            .any(|r| matches!(r.site, FaultSite::ShortRead | FaultSite::TornRead))
    }

    /// Total injections fired so far (all sites).
    pub fn injections_fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// One-line human description, for startup banners.
    pub fn describe(&self) -> String {
        let rules: Vec<String> = self
            .rules
            .iter()
            .map(|r| {
                let shard = r.shard.map(|s| format!("@{s}")).unwrap_or_default();
                let when = match r.when {
                    When::Every(n) => format!("{n}"),
                    When::Nth(n) => format!("#{n}"),
                    When::Prob(p) => format!("p{p}"),
                };
                let arg = r
                    .arg
                    .map(|d| format!("x{}us", d.as_micros()))
                    .unwrap_or_default();
                format!("{}{shard}={when}{arg}", r.site.name())
            })
            .collect();
        format!("{}:{}", rules.join(","), self.seed)
    }
}

/// SplitMix64 — tiny, seedable, statistically fine for fault scheduling.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A [`Read`] adapter that injects the plan's `shortread` and `torn` sites
/// into an underlying stream. The protocol layer wraps connection readers
/// in this when the active plan has read faults; tests wrap `Cursor`s.
///
/// * `shortread` firing: the read is truncated to one byte, and every
///   second firing first returns an `ErrorKind::Interrupted` error instead
///   (a signal landing mid-`read(2)`) — the caller must retry, exactly
///   what the protocol's EINTR handling exists for.
/// * `torn` firing: the read fails with `ConnectionReset` and the stream
///   stays dead (all subsequent reads fail too), like a peer vanishing
///   mid-frame.
pub struct ChaosReader<R> {
    inner: R,
    plan: Arc<FaultPlan>,
    /// Alternates EINTR vs short data on successive `shortread` firings.
    interrupt_next: bool,
    torn: bool,
}

impl<R: Read> ChaosReader<R> {
    /// Wrap `inner`, consulting `plan` on every read.
    pub fn new(inner: R, plan: Arc<FaultPlan>) -> Self {
        ChaosReader {
            inner,
            plan,
            interrupt_next: true,
            torn: false,
        }
    }
}

impl<R: Read> Read for ChaosReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.torn || self.plan.fires(FaultSite::TornRead, None) {
            self.torn = true;
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected torn read",
            ));
        }
        if !buf.is_empty() && self.plan.fires(FaultSite::ShortRead, None) {
            self.interrupt_next = !self.interrupt_next;
            if !self.interrupt_next {
                return Err(io::Error::new(io::ErrorKind::Interrupted, "injected EINTR"));
            }
            return self.inner.read(&mut buf[..1]);
        }
        self.inner.read(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn spec_grammar_roundtrips() {
        let plan = FaultPlan::parse("panic@0=#2,latency@1=3x2ms,shortread=1:42").unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(plan.rules[0].shard, Some(0));
        assert_eq!(plan.rules[0].when, When::Nth(2));
        assert_eq!(plan.rules[1].arg, Some(Duration::from_millis(2)));
        assert_eq!(plan.rules[1].when, When::Every(3));
        assert_eq!(plan.rules[2].shard, None);
        // No seed suffix defaults to 0.
        assert_eq!(FaultPlan::parse("panic=p0.5").unwrap().seed, 0);
        // describe() emits the same grammar back.
        assert_eq!(
            plan.describe(),
            "panic@0=#2,latency@1=3x2000us,shortread=1:42"
        );
    }

    #[test]
    fn malformed_specs_are_rejected_with_the_fragment() {
        for (spec, frag) in [
            ("explode=1", "explode"),
            ("panic=", ""),
            ("panic=#0", "#0"),
            ("panic=0", "0"),
            ("panic=p1.5", "p1.5"),
            ("latency=1", "latency=1"), // missing duration
            ("latency=1x2lightyears", "2lightyears"),
            ("panic@x=1", "x"),
            ("panic=1:notaseed", "notaseed"),
            ("", ""),
        ] {
            let e = FaultPlan::parse(spec).expect_err(spec);
            assert_eq!(e.fragment, frag, "spec {spec:?}");
        }
    }

    #[test]
    fn occurrence_schedules_are_deterministic_per_shard() {
        let plan = FaultPlan::parse("panic=#2").unwrap();
        // Each shard counts its own occurrences: the second decode on each
        // shard fires, independent of interleaving.
        for shard in [0usize, 1, 2] {
            assert!(
                !plan.fires(FaultSite::Panic, Some(shard)),
                "shard {shard} #1"
            );
            assert!(
                plan.fires(FaultSite::Panic, Some(shard)),
                "shard {shard} #2"
            );
            assert!(
                !plan.fires(FaultSite::Panic, Some(shard)),
                "shard {shard} #3"
            );
        }
        // A shard-targeted rule never fires elsewhere.
        let plan = FaultPlan::parse("alloc@1=1").unwrap();
        assert!(!plan.fires(FaultSite::AllocCap, Some(0)));
        assert!(plan.fires(FaultSite::AllocCap, Some(1)));
        assert_eq!(plan.injections_fired(), 1);
    }

    #[test]
    fn probability_rules_replay_identically_for_one_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::parse(&format!("latency=p0.5x1us:{seed}")).unwrap();
            (0..64).map(|_| plan.latency(Some(0)).is_some()).collect()
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7), run(8), "different seed, different schedule");
        let fired = run(7).iter().filter(|&&b| b).count();
        assert!((10..=54).contains(&fired), "p0.5 fired {fired}/64");
    }

    #[test]
    fn chaos_reader_short_reads_and_eintr_are_survivable() {
        let payload: Vec<u8> = (0u8..=255).collect();
        let plan = Arc::new(FaultPlan::parse("shortread=1:3").unwrap());
        let mut r = ChaosReader::new(Cursor::new(payload.clone()), plan);
        // A retrying reader reassembles the stream exactly.
        let mut got = Vec::new();
        let mut buf = [0u8; 32];
        loop {
            match r.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => got.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert_eq!(got, payload);
    }

    #[test]
    fn chaos_reader_torn_stream_stays_dead() {
        let plan = Arc::new(FaultPlan::parse("torn=#3").unwrap());
        let mut r = ChaosReader::new(Cursor::new(vec![9u8; 64]), plan);
        let mut buf = [0u8; 4];
        assert!(r.read(&mut buf).is_ok());
        assert!(r.read(&mut buf).is_ok());
        let e = r.read(&mut buf).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);
        // Once torn, always torn — no phantom recovery mid-frame.
        assert!(r.read(&mut buf).is_err());
    }
}
