//! # hetjpeg-serve — multi-session decode server front end
//!
//! The `hetjpeg-core` [`Decoder`](hetjpeg_core::Decoder) session is the
//! unit of scaling: it owns
//! one platform + trained model + pooled scratch and amortizes them across
//! images. This crate scales *across* sessions the way the paper scales
//! across devices — where Sodsong et al. partition one image between CPU
//! and GPU, a server partitions a **stream of requests** between session
//! shards:
//!
//! * a **shard pool** ([`Server`]) of worker threads, each owning its own
//!   `Decoder` session (same platform/model configuration, independent
//!   pools and `Mode::Auto` caches);
//! * an **admission queue** per shard — bounded, so a flooded server
//!   exerts backpressure on submitters instead of growing an unbounded
//!   backlog — whose consumer coalesces queued requests into one
//!   [`decode_batch`](hetjpeg_core::Decoder::decode_batch) call
//!   (deadline-aware: the first request in a batch waits at most
//!   [`ServeConfig::flush_after`]);
//! * **shape-keyed routing**: requests are routed to shards by a cheap
//!   header scan of (width, height, subsampling), so images of one shape
//!   land on one session and its per-shape `Auto` decision cache and
//!   re-shaped pooled buffers stay hot — with overflow spill to the next
//!   shard with queue room, so a single-shape workload still uses every
//!   shard;
//! * a **length-prefixed wire protocol** ([`protocol`]) served over TCP or
//!   stdio by the `hetjpeg-serve` binary, plus the in-process
//!   [`ServeHandle`] used by tests and benches.
//!
//! ```
//! use hetjpeg_serve::{ServeConfig, Server};
//! use hetjpeg_corpus::{generate_jpeg, ImageSpec, Pattern};
//! use hetjpeg_jpeg::types::Subsampling;
//!
//! let spec = ImageSpec { width: 96, height: 96,
//!                        pattern: Pattern::PhotoLike { detail: 0.5 }, seed: 9 };
//! let jpeg = generate_jpeg(&spec, 85, Subsampling::S420).unwrap();
//!
//! let server = Server::start(ServeConfig { shards: 2, ..ServeConfig::default() }).unwrap();
//! let handle = server.handle();
//! let out = handle.decode(&jpeg).unwrap();          // synchronous round trip
//! assert_eq!(out.image.width, 96);
//! let ticket = handle.submit(jpeg).unwrap();        // or async: submit…
//! assert!(ticket.wait().is_ok());                   // …and await the ticket
//! let stats = server.shutdown();                    // drains in-flight batches
//! assert_eq!(stats.requests(), 2);
//! ```
//!
//! See `docs/ARCHITECTURE.md` for a request's full path through the
//! server and how the pieces map onto the paper.

#![warn(missing_docs)]

pub mod fault;
#[cfg(unix)]
pub mod frontend;
pub mod pool;
pub mod protocol;

pub use pool::{
    RequestOptions, ServeHandle, ServeReply, Served, ServedStream, Server, ServerStats, ShardStats,
    StreamEnd, StreamEvent, StreamTile, SubmitOptions, Ticket, TryEvent, TILE_POOL_CAP,
};

use hetjpeg_core::{DecodeOptions, Platform, DEFAULT_AUTO_CACHE_CAP};
use std::fmt;
use std::time::Duration;

/// Configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of session shards (worker threads, each owning one
    /// `Decoder`). Defaults to the host's available parallelism, capped
    /// at 8.
    pub shards: usize,
    /// Per-shard admission-queue depth. A submit against a full queue
    /// blocks — backpressure, not unbounded buffering.
    pub queue_depth: usize,
    /// Maximum images coalesced into one `decode_batch` call.
    pub max_batch: usize,
    /// How long the first request of a batch may wait for company before
    /// the batch is flushed regardless of size.
    pub flush_after: Duration,
    /// `Mode::Auto` decision-cache cap for each shard's session.
    pub auto_cache_cap: usize,
    /// Target platform shared by every shard.
    pub platform: Platform,
    /// Trained performance model; `None` uses the platform's analytic
    /// seed.
    pub model: Option<hetjpeg_core::model::PerformanceModel>,
    /// Entropy worker threads per session (`Mode::ParallelEntropy`).
    pub threads: usize,
    /// Decode options applied to every request (mode, strictness,
    /// `max_pixels` guard). The output format must be RGB for the wire
    /// protocol.
    pub options: DecodeOptions,
    /// Per-request decode budget for *progressive* (SOF2) images. When a
    /// progressive request is predicted (from the shard's measured decode
    /// throughput) to exceed this budget, the shard answers with a prefix
    /// render instead: `max_scans` is reduced to the largest scan prefix
    /// whose predicted time fits, and the outcome is flagged truncated.
    /// Baseline images and the first progressive request of a shard (which
    /// seeds the throughput estimate) always decode in full. `None`
    /// disables pacing.
    pub scan_deadline: Option<Duration>,
    /// Deterministic fault-injection schedule ([`fault::FaultPlan`]); `None`
    /// (the default) disables injection entirely. [`Server::start`] also
    /// honors the `HETJPEG_FAULT` environment variable when this is `None`.
    pub fault_plan: Option<std::sync::Arc<fault::FaultPlan>>,
    /// Consecutive decode *panics* on one shard that trip its circuit
    /// breaker (an open breaker routes new requests to other shards and
    /// fail-fasts its own queue until a backoff probe succeeds). Decode
    /// errors — a malformed request — do not count. Must be ≥ 1.
    pub breaker_threshold: u32,
    /// Initial breaker cooldown: how long a tripped shard waits before the
    /// half-open probe. Doubles on each re-trip, capped at 64× the base.
    pub breaker_cooldown: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let shards = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        ServeConfig {
            shards,
            queue_depth: 64,
            max_batch: 8,
            flush_after: Duration::from_micros(200),
            auto_cache_cap: DEFAULT_AUTO_CACHE_CAP,
            platform: Platform::gtx560(),
            model: None,
            threads: 4,
            options: DecodeOptions::default(),
            scan_deadline: None,
            fault_plan: None,
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_millis(200),
        }
    }
}

/// Errors surfaced by the server API.
#[derive(Debug)]
pub enum ServeError {
    /// The server configuration was rejected (invalid shard count, or the
    /// underlying session builder refused the platform/model/threads).
    Config(ConfigError),
    /// The server is shutting down and no longer admits requests.
    ShuttingDown,
    /// The decode itself failed; carries the codec error verbatim.
    Decode(hetjpeg_jpeg::error::Error),
    /// The shard worker died before answering (a bug, not a request
    /// error).
    WorkerGone,
    /// The decode panicked. The panic was confined to this request: the
    /// shard rebuilt its session and kept serving. Carries the panic
    /// payload's message.
    Panicked(String),
    /// The request was shed — its deadline is not achievable at current
    /// load, or its home shard's circuit breaker is open. Carries a
    /// retry-after hint derived from the shard's estimated drain time.
    Busy {
        /// Suggested wait before retrying.
        retry_after: Duration,
    },
    /// The request was queued when the server shut down; it was drained
    /// with this explicit error instead of being dropped silently.
    Shutdown,
}

/// Why [`Server::start`] rejected a [`ServeConfig`].
#[derive(Debug)]
pub enum ConfigError {
    /// `shards` was zero.
    ZeroShards,
    /// `queue_depth` was zero (every submit would deadlock).
    ZeroQueueDepth,
    /// `max_batch` was zero (a batch could never form).
    ZeroMaxBatch,
    /// `breaker_threshold` was zero (the breaker would trip before the
    /// first request).
    ZeroBreakerThreshold,
    /// The `HETJPEG_FAULT` spec (or `ServeConfig::fault_plan` source
    /// string) failed to parse.
    Fault(fault::FaultParseError),
    /// The per-shard session builder rejected the configuration.
    Session(hetjpeg_core::BuildError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(c) => write!(f, "invalid server configuration: {c}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Decode(e) => write!(f, "decode failed: {e}"),
            ServeError::WorkerGone => write!(f, "shard worker terminated unexpectedly"),
            ServeError::Panicked(msg) => {
                write!(f, "decode panicked (session rebuilt): {msg}")
            }
            ServeError::Busy { retry_after } => write!(
                f,
                "busy: deadline not achievable, retry after {}us",
                retry_after.as_micros()
            ),
            ServeError::Shutdown => {
                write!(f, "request drained by server shutdown before decode")
            }
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroShards => write!(f, "shards must be >= 1"),
            ConfigError::ZeroQueueDepth => write!(f, "queue_depth must be >= 1"),
            ConfigError::ZeroMaxBatch => write!(f, "max_batch must be >= 1"),
            ConfigError::ZeroBreakerThreshold => {
                write!(f, "breaker_threshold must be >= 1")
            }
            ConfigError::Fault(e) => write!(f, "fault plan: {e}"),
            ConfigError::Session(e) => write!(f, "session builder: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}
impl std::error::Error for ConfigError {}
