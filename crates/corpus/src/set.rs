//! Training and test corpus builders.
//!
//! The paper: "Our training set consists of twelve images from an online
//! image benchmark and seven self-taken images ... cropped to create
//! combinations of width and height up to 25 megapixels. The total number of
//! images in the training set is 4449" (§5.1), and a disjoint test set of
//! 3597 images (§6). This module reproduces the *structure* — base patterns
//! × size grid × subsampling — at a configurable scale so unit tests stay
//! fast while benches can approach the paper's volume.

use crate::crop::{crop_rgb, size_grid};
use crate::synth::{generate_rgb, ImageSpec, Pattern};
use hetjpeg_jpeg::encoder::{encode_rgb, EncodeParams};
use hetjpeg_jpeg::types::Subsampling;

/// One corpus member: an encoded JPEG plus its provenance.
#[derive(Debug, Clone)]
pub struct CorpusImage {
    /// Encoded bytes.
    pub jpeg: Vec<u8>,
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Pattern family name.
    pub pattern: &'static str,
    /// Subsampling of the encoding.
    pub subsampling: Subsampling,
    /// JPEG quality of the encoding.
    pub quality: u8,
    /// Restart interval of the encoding (0 = no restart markers).
    pub restart_interval: usize,
    /// Entropy density in bytes/pixel (paper Eq. (3)).
    pub density: f64,
}

/// Corpus scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct CorpusParams {
    /// Smallest image dimension in the grid.
    pub min_dim: usize,
    /// Largest image dimension in the grid.
    pub max_dim: usize,
    /// Number of geometric steps per axis.
    pub steps: usize,
    /// Subsampling for the encoded files.
    pub subsampling: Subsampling,
    /// JPEG quality for the encoded files.
    pub quality: u8,
    /// Restart interval for the encoded files (0 = no restart markers —
    /// the default, so every corpus exercises the speculative entropy
    /// path unless a bench opts into restartful streams).
    pub restart_interval: usize,
}

impl Default for CorpusParams {
    fn default() -> Self {
        CorpusParams {
            min_dim: 64,
            max_dim: 512,
            steps: 4,
            subsampling: Subsampling::S422,
            quality: 85,
            restart_interval: 0,
        }
    }
}

/// The training-set pattern families (disjoint from [`test_patterns`]).
fn training_patterns() -> Vec<(Pattern, u64)> {
    vec![
        (Pattern::Gradient, 101),
        (Pattern::SmoothField, 102),
        (
            Pattern::ValueNoise {
                octaves: 3,
                detail: 0.3,
            },
            103,
        ),
        (
            Pattern::ValueNoise {
                octaves: 5,
                detail: 0.55,
            },
            104,
        ),
        (
            Pattern::ValueNoise {
                octaves: 7,
                detail: 0.8,
            },
            105,
        ),
        (Pattern::WhiteNoise { amount: 0.25 }, 106),
        (Pattern::WhiteNoise { amount: 0.7 }, 107),
        (Pattern::PhotoLike { detail: 0.4 }, 108),
        (Pattern::PhotoLike { detail: 0.75 }, 109),
    ]
}

/// The test-set pattern families: same statistics family, disjoint
/// parameters and seeds (the paper's test set shares no image with the
/// training set).
fn test_patterns() -> Vec<(Pattern, u64)> {
    vec![
        (Pattern::Gradient, 201),
        (Pattern::SmoothField, 202),
        (
            Pattern::ValueNoise {
                octaves: 4,
                detail: 0.45,
            },
            203,
        ),
        (
            Pattern::ValueNoise {
                octaves: 6,
                detail: 0.7,
            },
            204,
        ),
        (Pattern::WhiteNoise { amount: 0.45 }, 205),
        (Pattern::Checker { cell: 6 }, 206),
        (Pattern::PhotoLike { detail: 0.6 }, 207),
    ]
}

fn build(patterns: Vec<(Pattern, u64)>, params: &CorpusParams) -> Vec<CorpusImage> {
    let dims = size_grid(params.min_dim, params.max_dim, params.steps);
    let max = *dims.last().expect("non-empty grid");
    let mut out = Vec::new();
    for (pattern, seed) in patterns {
        // Render the master once at full size, crop the grid out of it.
        let master = generate_rgb(&ImageSpec {
            width: max,
            height: max,
            pattern,
            seed,
        });
        for &w in &dims {
            for &h in &dims {
                let rgb = if w == max && h == max {
                    master.clone()
                } else {
                    crop_rgb(&master, max, max, 0, 0, w, h)
                };
                let jpeg = encode_rgb(
                    &rgb,
                    w as u32,
                    h as u32,
                    &EncodeParams {
                        quality: params.quality,
                        subsampling: params.subsampling,
                        restart_interval: params.restart_interval,
                    },
                )
                .expect("corpus encode");
                let density = jpeg.len() as f64 / (w * h) as f64;
                out.push(CorpusImage {
                    jpeg,
                    width: w,
                    height: h,
                    pattern: pattern.name(),
                    subsampling: params.subsampling,
                    quality: params.quality,
                    restart_interval: params.restart_interval,
                    density,
                });
            }
        }
    }
    out
}

/// Build the training corpus (pattern families × size grid).
pub fn training_set(params: &CorpusParams) -> Vec<CorpusImage> {
    build(training_patterns(), params)
}

/// Build the evaluation corpus; shares no pattern instance with training.
pub fn test_set(params: &CorpusParams) -> Vec<CorpusImage> {
    build(test_patterns(), params)
}

/// The sub × quality synthesis matrix at `restart_interval = 0`: one test
/// corpus per (subsampling, quality) cell, every member restart-free, so
/// no-restart streams — the common real-world case the speculative
/// entropy path (ISSUE 6) exists for — are first-class in every sweep.
pub fn no_restart_matrix(
    base: &CorpusParams,
    subsamplings: &[Subsampling],
    qualities: &[u8],
) -> Vec<CorpusImage> {
    let mut out = Vec::new();
    for &subsampling in subsamplings {
        for &quality in qualities {
            out.extend(test_set(&CorpusParams {
                subsampling,
                quality,
                restart_interval: 0,
                ..*base
            }));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CorpusParams {
        CorpusParams {
            min_dim: 32,
            max_dim: 64,
            steps: 2,
            ..CorpusParams::default()
        }
    }

    #[test]
    fn corpus_counts_match_grid() {
        let p = tiny();
        let train = training_set(&p);
        // 9 patterns x 2 widths x 2 heights.
        assert_eq!(train.len(), 9 * 4);
        let test = test_set(&p);
        assert_eq!(test.len(), 7 * 4);
    }

    #[test]
    fn members_decode_and_report_density() {
        for img in training_set(&tiny()).into_iter().take(6) {
            let decoded = hetjpeg_jpeg::decoder::decode(&img.jpeg).unwrap();
            assert_eq!((decoded.width, decoded.height), (img.width, img.height));
            assert!(img.density > 0.0 && img.density < 4.0);
        }
    }

    #[test]
    fn no_restart_matrix_spans_sub_and_quality_without_markers() {
        let p = tiny();
        let subs = [Subsampling::S444, Subsampling::S420];
        let quals = [75, 90];
        let matrix = no_restart_matrix(&p, &subs, &quals);
        // 7 test patterns x 2x2 grid per (sub, quality) cell.
        assert_eq!(matrix.len(), 7 * 4 * subs.len() * quals.len());
        for img in &matrix {
            assert_eq!(img.restart_interval, 0);
            let parsed = hetjpeg_jpeg::markers::parse_jpeg(&img.jpeg).unwrap();
            assert_eq!(parsed.frame.restart_interval, 0, "stream has DRI");
        }
        // Restartful params really thread through to the stream.
        let dri = CorpusParams {
            restart_interval: 4,
            ..p
        };
        let img = &test_set(&dri)[0];
        assert_eq!(img.restart_interval, 4);
        let parsed = hetjpeg_jpeg::markers::parse_jpeg(&img.jpeg).unwrap();
        assert_eq!(parsed.frame.restart_interval, 4);
    }

    #[test]
    fn train_and_test_bytes_are_disjoint() {
        let p = tiny();
        let train = training_set(&p);
        let test = test_set(&p);
        for t in &test {
            assert!(train.iter().all(|tr| tr.jpeg != t.jpeg));
        }
    }

    #[test]
    fn densities_vary_across_patterns() {
        let p = tiny();
        let train = training_set(&p);
        let min = train.iter().map(|i| i.density).fold(f64::MAX, f64::min);
        let max = train.iter().map(|i| i.density).fold(f64::MIN, f64::max);
        assert!(
            max / min > 3.0,
            "density spread too small: {min:.3}..{max:.3}"
        );
    }
}
