//! # hetjpeg-corpus — synthetic image corpora with controllable entropy
//!
//! The paper trains its performance model on 4449 images (12 benchmark + 7
//! self-taken photographs, cropped to a grid of width × height combinations
//! up to 25 megapixels) and evaluates on a disjoint set of 3597 images
//! (§5.1, §6). Photographs cannot ship with this repository, so this crate
//! synthesizes deterministic images whose *entropy density* — the paper's
//! model input `d = file_size / (w·h)`, Eq. (3) — spans the same range
//! (roughly 0.02–0.5 bytes/pixel), and crops them into comparable size
//! grids.
//!
//! The train/test split mirrors the paper's disjoint image sets by using
//! disjoint generator families and seeds.

pub mod crop;
pub mod set;
pub mod synth;

pub use set::{no_restart_matrix, test_set, training_set, CorpusImage, CorpusParams};
pub use synth::{generate_rgb, ImageSpec, Pattern};

use hetjpeg_jpeg::encoder::{encode_rgb, EncodeParams};
use hetjpeg_jpeg::types::Subsampling;

/// Render a spec and encode it to a JPEG byte stream.
pub fn generate_jpeg(
    spec: &ImageSpec,
    quality: u8,
    subsampling: Subsampling,
) -> hetjpeg_jpeg::Result<Vec<u8>> {
    let rgb = generate_rgb(spec);
    encode_rgb(
        &rgb,
        spec.width as u32,
        spec.height as u32,
        &EncodeParams {
            quality,
            subsampling,
            restart_interval: 0,
        },
    )
}

/// Render a spec and encode it as a *progressive* (SOF2) JPEG using one of
/// the standard scan-script presets — the multi-scan counterpart of
/// [`generate_jpeg`] for exercising the progressive subsystem.
pub fn generate_progressive_jpeg(
    spec: &ImageSpec,
    quality: u8,
    subsampling: Subsampling,
    preset: hetjpeg_jpeg::progressive::ScanPreset,
) -> hetjpeg_jpeg::Result<Vec<u8>> {
    let rgb = generate_rgb(spec);
    hetjpeg_jpeg::progressive::encode_rgb_progressive(
        &rgb,
        spec.width as u32,
        spec.height as u32,
        &EncodeParams {
            quality,
            subsampling,
            restart_interval: 0,
        },
        preset,
    )
}

/// Entropy density of an encoded JPEG in bytes per pixel (paper Eq. (3)).
pub fn entropy_density(jpeg: &[u8]) -> f64 {
    match hetjpeg_jpeg::markers::parse_jpeg(jpeg) {
        Ok(p) => p.entropy_density(),
        Err(_) => f64::NAN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_increases_with_detail() {
        let mk = |pattern| {
            let spec = ImageSpec {
                width: 128,
                height: 128,
                pattern,
                seed: 42,
            };
            entropy_density(&generate_jpeg(&spec, 85, Subsampling::S422).unwrap())
        };
        let smooth = mk(Pattern::Gradient);
        let medium = mk(Pattern::ValueNoise {
            octaves: 4,
            detail: 0.5,
        });
        let noisy = mk(Pattern::WhiteNoise { amount: 1.0 });
        assert!(
            smooth < medium,
            "gradient {smooth:.3} vs value-noise {medium:.3}"
        );
        assert!(
            medium < noisy,
            "value-noise {medium:.3} vs white-noise {noisy:.3}"
        );
    }

    #[test]
    fn progressive_corpus_images_decode_like_baseline() {
        use hetjpeg_jpeg::progressive::ScanPreset;
        let spec = ImageSpec {
            width: 96,
            height: 72,
            pattern: Pattern::ValueNoise {
                octaves: 3,
                detail: 0.6,
            },
            seed: 9,
        };
        let base = generate_jpeg(&spec, 85, Subsampling::S420).unwrap();
        for preset in [ScanPreset::Standard10, ScanPreset::Spectral4] {
            let prog = generate_progressive_jpeg(&spec, 85, Subsampling::S420, preset).unwrap();
            assert!(hetjpeg_jpeg::progressive::is_progressive(&prog));
            let parsed = hetjpeg_jpeg::progressive::parse_progressive(&prog).unwrap();
            let prep = hetjpeg_jpeg::decoder::Prepared::from_progressive(&parsed).unwrap();
            let mut coef = hetjpeg_jpeg::coef::CoefBuffer::new(&prep.geom);
            coef.reset_for(&prep.geom);
            hetjpeg_jpeg::progressive::decode_scans(&parsed, &prep.geom, &mut coef, None, false)
                .unwrap();
            let mut img = hetjpeg_jpeg::types::RgbImage::new(prep.geom.width, prep.geom.height);
            hetjpeg_jpeg::decoder::stages::decode_region_rgb(
                &prep,
                &coef,
                0,
                prep.geom.mcus_y,
                &mut img.data,
            )
            .unwrap();
            let want = hetjpeg_jpeg::decoder::decode(&base).unwrap();
            assert_eq!(img.data, want.data, "{preset:?}");
        }
    }

    #[test]
    fn densities_span_paper_range() {
        // Fig. 7's x-axis runs to ~0.45 bytes/pixel; our corpus must be able
        // to reach both tails.
        let lo = entropy_density(
            &generate_jpeg(
                &ImageSpec {
                    width: 256,
                    height: 256,
                    pattern: Pattern::Gradient,
                    seed: 1,
                },
                60,
                Subsampling::S420,
            )
            .unwrap(),
        );
        let hi = entropy_density(
            &generate_jpeg(
                &ImageSpec {
                    width: 256,
                    height: 256,
                    pattern: Pattern::WhiteNoise { amount: 1.0 },
                    seed: 1,
                },
                95,
                Subsampling::S444,
            )
            .unwrap(),
        );
        assert!(lo < 0.1, "smooth floor {lo:.3}");
        assert!(hi > 0.4, "noisy ceiling {hi:.3}");
    }
}
