//! Cropping master renders into size grids.
//!
//! "Polynomial regression poorly estimates performance for images with the
//! dimensions outside of the training set range. Thus, the training-set
//! baseline images are cropped to create combinations of width and height"
//! (paper §5.1). We render each base pattern once at the maximum size and
//! crop windows out of it, which both matches the paper's procedure and
//! amortizes synthesis cost.

/// Crop a `cw x ch` window at (`x0`, `y0`) out of a `w x h` RGB image.
///
/// # Panics
/// Panics if the window exceeds the source bounds.
pub fn crop_rgb(
    src: &[u8],
    w: usize,
    h: usize,
    x0: usize,
    y0: usize,
    cw: usize,
    ch: usize,
) -> Vec<u8> {
    assert!(x0 + cw <= w && y0 + ch <= h, "crop window out of bounds");
    assert_eq!(src.len(), w * h * 3, "source buffer size");
    let mut out = Vec::with_capacity(cw * ch * 3);
    for row in 0..ch {
        let off = ((y0 + row) * w + x0) * 3;
        out.extend_from_slice(&src[off..off + cw * 3]);
    }
    out
}

/// The width/height grid used to build corpora: geometric steps from
/// `min_dim` up to `max_dim` (inclusive), mimicking the paper's crop
/// combinations "up to 25 megapixels".
pub fn size_grid(min_dim: usize, max_dim: usize, steps: usize) -> Vec<usize> {
    assert!(steps >= 1 && max_dim >= min_dim && min_dim > 0);
    if steps == 1 {
        return vec![max_dim];
    }
    let ratio = (max_dim as f64 / min_dim as f64).powf(1.0 / (steps - 1) as f64);
    let mut out = Vec::with_capacity(steps);
    let mut v = min_dim as f64;
    for _ in 0..steps {
        // Round to a multiple of 16 so every subsampling gets whole MCUs.
        let d = ((v / 16.0).round() as usize * 16).clamp(16, max_dim);
        if out.last() != Some(&d) {
            out.push(d);
        }
        v *= ratio;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crop_extracts_expected_pixels() {
        // 4x3 image with pixel value = x*10 + y in the red channel.
        let (w, h) = (4usize, 3usize);
        let mut src = vec![0u8; w * h * 3];
        for y in 0..h {
            for x in 0..w {
                src[(y * w + x) * 3] = (x * 10 + y) as u8;
            }
        }
        let out = crop_rgb(&src, w, h, 1, 1, 2, 2);
        assert_eq!(out.len(), 12);
        assert_eq!(out[0], 11); // (1,1)
        assert_eq!(out[3], 21); // (2,1)
        assert_eq!(out[6], 12); // (1,2)
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn crop_rejects_oob() {
        let src = vec![0u8; 4 * 3 * 3];
        crop_rgb(&src, 4, 3, 3, 0, 2, 2);
    }

    #[test]
    fn size_grid_is_monotonic_mcu_aligned() {
        let grid = size_grid(64, 1024, 6);
        assert!(grid.len() >= 4);
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
        assert!(grid.iter().all(|&d| d % 16 == 0));
        assert_eq!(*grid.first().unwrap(), 64);
        assert_eq!(*grid.last().unwrap(), 1024);
    }

    #[test]
    fn size_grid_single_step() {
        assert_eq!(size_grid(64, 512, 1), vec![512]);
    }
}
