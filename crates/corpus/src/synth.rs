//! Parametric image synthesis.
//!
//! Each [`Pattern`] family produces deterministic RGB content whose spatial
//! detail — and therefore post-quantization entropy — is tunable. The
//! families are intentionally photograph-like in their statistics: smooth
//! regions, edges, and band-limited texture, because the Huffman-rate model
//! (paper Fig. 7) is only meaningful if entropy varies with content the way
//! it does in photographs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic synthetic image description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageSpec {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Content family.
    pub pattern: Pattern,
    /// Seed; same spec ⇒ same bytes.
    pub seed: u64,
}

/// Content families, ordered roughly by entropy density.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Bilinear color gradient: minimal entropy.
    Gradient,
    /// Sum of a few low-frequency sine fields: low entropy.
    SmoothField,
    /// Fractal value noise; `detail` (0..=1) is the octave persistence.
    ValueNoise {
        /// Number of octaves (1..=8 sensible).
        octaves: u8,
        /// Persistence: higher keeps more high-frequency energy.
        detail: f64,
    },
    /// Smooth base plus white noise; `amount` (0..=1) scales the noise.
    WhiteNoise {
        /// Noise amplitude fraction.
        amount: f64,
    },
    /// Axis-aligned checkerboard with `cell`-pixel squares: edge-heavy.
    Checker {
        /// Square size in pixels.
        cell: usize,
    },
    /// Composite "photograph": sky gradient, textured ground, hard skyline.
    PhotoLike {
        /// Texture persistence of the ground region.
        detail: f64,
    },
    /// Detail ramps from `top` at row 0 to `bottom` at the last row —
    /// deliberately *non-uniform entropy* along the scan direction, the
    /// case the paper's Eq. 16/17 re-partitioning exists for ("the density
    /// of entropy data is unlikely to be evenly distributed in practice").
    DetailRamp {
        /// Texture persistence at the top of the image.
        top: f64,
        /// Texture persistence at the bottom.
        bottom: f64,
    },
}

impl Pattern {
    /// Short name used in reports and corpus listings.
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::Gradient => "gradient",
            Pattern::SmoothField => "smooth-field",
            Pattern::ValueNoise { .. } => "value-noise",
            Pattern::WhiteNoise { .. } => "white-noise",
            Pattern::Checker { .. } => "checker",
            Pattern::PhotoLike { .. } => "photo-like",
            Pattern::DetailRamp { .. } => "detail-ramp",
        }
    }
}

/// Render a spec to interleaved RGB.
pub fn generate_rgb(spec: &ImageSpec) -> Vec<u8> {
    let (w, h) = (spec.width, spec.height);
    match spec.pattern {
        Pattern::Gradient => gradient(w, h, spec.seed),
        Pattern::SmoothField => smooth_field(w, h, spec.seed),
        Pattern::ValueNoise { octaves, detail } => value_noise(w, h, spec.seed, octaves, detail),
        Pattern::WhiteNoise { amount } => white_noise(w, h, spec.seed, amount),
        Pattern::Checker { cell } => checker(w, h, spec.seed, cell.max(1)),
        Pattern::PhotoLike { detail } => photo_like(w, h, spec.seed, detail),
        Pattern::DetailRamp { top, bottom } => detail_ramp(w, h, spec.seed, top, bottom),
    }
}

fn gradient(w: usize, h: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let (r0, g0, b0): (f64, f64, f64) = (rng.gen(), rng.gen(), rng.gen());
    let (r1, g1, b1): (f64, f64, f64) = (rng.gen(), rng.gen(), rng.gen());
    let mut out = Vec::with_capacity(w * h * 3);
    for y in 0..h {
        let fy = y as f64 / h.max(1) as f64;
        for x in 0..w {
            let fx = x as f64 / w.max(1) as f64;
            let t = (fx + fy) / 2.0;
            out.push((255.0 * (r0 + (r1 - r0) * t)) as u8);
            out.push((255.0 * (g0 + (g1 - g0) * t)) as u8);
            out.push((255.0 * (b0 + (b1 - b0) * t)) as u8);
        }
    }
    out
}

fn smooth_field(w: usize, h: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Three channels, each a sum of 3 low-frequency plane waves.
    let mut waves = [[(0.0f64, 0.0f64, 0.0f64); 3]; 3];
    for ch in waves.iter_mut() {
        for wv in ch.iter_mut() {
            *wv = (
                rng.gen_range(0.5..3.0), // cycles across the image
                rng.gen_range(0.5..3.0),
                rng.gen_range(0.0..std::f64::consts::TAU),
            );
        }
    }
    let mut out = Vec::with_capacity(w * h * 3);
    for y in 0..h {
        let fy = y as f64 / h.max(1) as f64;
        for x in 0..w {
            let fx = x as f64 / w.max(1) as f64;
            for ch in &waves {
                let mut v = 0.0;
                for &(kx, ky, phase) in ch {
                    v += ((fx * kx + fy * ky) * std::f64::consts::TAU + phase).sin();
                }
                out.push((128.0 + v * 40.0).clamp(0.0, 255.0) as u8);
            }
        }
    }
    out
}

/// Hash-based lattice gradient for value noise (no stored lattice, so any
/// size is cheap).
#[inline]
fn lattice(seed: u64, xi: i64, yi: i64, ch: u64) -> f64 {
    let mut v = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((xi as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add((yi as u64).wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(ch.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    v ^= v >> 29;
    v = v.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    v ^= v >> 32;
    (v & 0xFFFF) as f64 / 65535.0
}

#[inline]
fn smoothstep(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

fn value_noise_at(seed: u64, x: f64, y: f64, ch: u64, octaves: u8, persistence: f64) -> f64 {
    let mut amp = 1.0;
    let mut freq = 4.0; // base cells across the image
    let mut total = 0.0;
    let mut norm = 0.0;
    for _ in 0..octaves.max(1) {
        let fx = x * freq;
        let fy = y * freq;
        let (x0, y0) = (fx.floor() as i64, fy.floor() as i64);
        let (tx, ty) = (smoothstep(fx - x0 as f64), smoothstep(fy - y0 as f64));
        let v00 = lattice(seed, x0, y0, ch);
        let v10 = lattice(seed, x0 + 1, y0, ch);
        let v01 = lattice(seed, x0, y0 + 1, ch);
        let v11 = lattice(seed, x0 + 1, y0 + 1, ch);
        let v = v00 * (1.0 - tx) * (1.0 - ty)
            + v10 * tx * (1.0 - ty)
            + v01 * (1.0 - tx) * ty
            + v11 * tx * ty;
        total += v * amp;
        norm += amp;
        amp *= persistence;
        freq *= 2.0;
    }
    total / norm
}

fn value_noise(w: usize, h: usize, seed: u64, octaves: u8, detail: f64) -> Vec<u8> {
    let persistence = detail.clamp(0.0, 1.0);
    let mut out = Vec::with_capacity(w * h * 3);
    for y in 0..h {
        let fy = y as f64 / h.max(1) as f64;
        for x in 0..w {
            let fx = x as f64 / w.max(1) as f64;
            for ch in 0..3u64 {
                let v = value_noise_at(seed, fx, fy, ch, octaves, persistence);
                out.push((v * 255.0) as u8);
            }
        }
    }
    out
}

fn white_noise(w: usize, h: usize, seed: u64, amount: f64) -> Vec<u8> {
    let amount = amount.clamp(0.0, 1.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let base = gradient(w, h, seed.wrapping_add(1));
    base.into_iter()
        .map(|b| {
            let n: f64 = rng.gen_range(-128.0..128.0);
            (b as f64 * (1.0 - amount) + (128.0 + n) * amount).clamp(0.0, 255.0) as u8
        })
        .collect()
}

fn checker(w: usize, h: usize, seed: u64, cell: usize) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let a: [u8; 3] = [rng.gen(), rng.gen(), rng.gen()];
    let b: [u8; 3] = [rng.gen(), rng.gen(), rng.gen()];
    let mut out = Vec::with_capacity(w * h * 3);
    for y in 0..h {
        for x in 0..w {
            let c = if (x / cell + y / cell).is_multiple_of(2) {
                a
            } else {
                b
            };
            out.extend_from_slice(&c);
        }
    }
    out
}

fn photo_like(w: usize, h: usize, seed: u64, detail: f64) -> Vec<u8> {
    let persistence = detail.clamp(0.0, 1.0);
    let skyline = 0.35 + lattice(seed, 7, 7, 9) * 0.3; // fraction of height
    let mut out = Vec::with_capacity(w * h * 3);
    for y in 0..h {
        let fy = y as f64 / h.max(1) as f64;
        for x in 0..w {
            let fx = x as f64 / w.max(1) as f64;
            // Gentle horizon wobble so the skyline is not a pure horizontal
            // edge (those quantize to nothing under DCT).
            let wobble = value_noise_at(seed, fx, 0.0, 5, 3, 0.6) * 0.08;
            if fy < skyline + wobble {
                // Sky: vertical gradient with faint texture.
                let t = fy / (skyline + wobble).max(1e-6);
                let haze = value_noise_at(seed, fx, fy, 3, 2, 0.4) * 20.0;
                out.push((120.0 + t * 60.0 + haze).clamp(0.0, 255.0) as u8);
                out.push((160.0 + t * 40.0 + haze).clamp(0.0, 255.0) as u8);
                out.push((220.0 - t * 30.0 + haze).clamp(0.0, 255.0) as u8);
            } else {
                // Ground: textured greens/browns.
                let g = value_noise_at(seed, fx, fy, 0, 5, persistence);
                let r = value_noise_at(seed, fx, fy, 1, 5, persistence);
                out.push((60.0 + r * 120.0) as u8);
                out.push((80.0 + g * 140.0) as u8);
                out.push((40.0 + g * 60.0) as u8);
            }
        }
    }
    out
}

fn detail_ramp(w: usize, h: usize, seed: u64, top: f64, bottom: f64) -> Vec<u8> {
    let top = top.clamp(0.0, 1.0);
    let bottom = bottom.clamp(0.0, 1.0);
    let mut out = Vec::with_capacity(w * h * 3);
    for y in 0..h {
        let fy = y as f64 / h.max(1) as f64;
        // Mix a smooth field with white-ish high-octave noise; the noise
        // share ramps with the row, so entropy density does too.
        let noise_share = top + (bottom - top) * fy;
        for x in 0..w {
            let fx = x as f64 / w.max(1) as f64;
            for ch in 0..3u64 {
                let smooth = value_noise_at(seed, fx, fy, ch, 2, 0.4);
                let rough = value_noise_at(seed.wrapping_add(7), fx, fy, ch + 3, 7, 0.95);
                let v = smooth * (1.0 - noise_share) + rough * noise_share;
                out.push((v * 255.0) as u8);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detail_ramp_entropy_really_ramps() {
        // Encode the top and bottom halves separately; the bottom must be
        // denser when bottom detail > top detail.
        use hetjpeg_jpeg::encoder::{encode_rgb, EncodeParams};
        let (w, h) = (128usize, 128usize);
        let rgb = generate_rgb(&ImageSpec {
            width: w,
            height: h,
            pattern: Pattern::DetailRamp {
                top: 0.05,
                bottom: 0.9,
            },
            seed: 5,
        });
        let params = EncodeParams {
            quality: 85,
            subsampling: hetjpeg_jpeg::types::Subsampling::S422,
            restart_interval: 0,
        };
        let top_half =
            encode_rgb(&rgb[..w * (h / 2) * 3], w as u32, (h / 2) as u32, &params).unwrap();
        let bottom_half =
            encode_rgb(&rgb[w * (h / 2) * 3..], w as u32, (h / 2) as u32, &params).unwrap();
        assert!(
            bottom_half.len() as f64 > top_half.len() as f64 * 1.5,
            "bottom {} vs top {}",
            bottom_half.len(),
            top_half.len()
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = ImageSpec {
            width: 33,
            height: 21,
            pattern: Pattern::PhotoLike { detail: 0.7 },
            seed: 99,
        };
        assert_eq!(generate_rgb(&spec), generate_rgb(&spec));
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            generate_rgb(&ImageSpec {
                width: 32,
                height: 32,
                pattern: Pattern::ValueNoise {
                    octaves: 4,
                    detail: 0.5,
                },
                seed,
            })
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn output_sizes_are_exact() {
        for (w, h) in [(1, 1), (17, 3), (64, 48)] {
            for pattern in [
                Pattern::Gradient,
                Pattern::SmoothField,
                Pattern::ValueNoise {
                    octaves: 3,
                    detail: 0.4,
                },
                Pattern::WhiteNoise { amount: 0.5 },
                Pattern::Checker { cell: 4 },
                Pattern::PhotoLike { detail: 0.5 },
            ] {
                let spec = ImageSpec {
                    width: w,
                    height: h,
                    pattern,
                    seed: 5,
                };
                assert_eq!(generate_rgb(&spec).len(), w * h * 3, "{}", pattern.name());
            }
        }
    }

    #[test]
    fn value_noise_detail_raises_variance() {
        let var = |detail: f64| {
            let rgb = generate_rgb(&ImageSpec {
                width: 64,
                height: 64,
                pattern: Pattern::ValueNoise { octaves: 6, detail },
                seed: 11,
            });
            // High-frequency energy: mean absolute horizontal delta.
            rgb.chunks_exact(3)
                .map(|p| p[0] as f64)
                .collect::<Vec<_>>()
                .windows(2)
                .map(|w| (w[0] - w[1]).abs())
                .sum::<f64>()
        };
        assert!(var(0.9) > var(0.2) * 1.5);
    }

    #[test]
    fn lattice_is_in_unit_range() {
        for i in 0..100 {
            let v = lattice(3, i, -i, (i % 3) as u64);
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
