//! # hetjpeg — dynamic partitioning-based JPEG decompression
//!
//! Facade over the workspace crates, re-exported under one roof:
//!
//! * [`jpeg`] (`hetjpeg-jpeg`) — the baseline JPEG codec substrate with
//!   region-addressable decode stages and the EOB-dispatched sparse hot
//!   path,
//! * [`gpusim`] (`hetjpeg-gpu-sim`) — the functional + analytic
//!   OpenCL-style GPU simulator,
//! * [`core`] (`hetjpeg-core`) — performance model, partitioners, the six
//!   decode modes, and the real-thread pipelined executor,
//! * [`corpus`] (`hetjpeg-corpus`) — synthetic corpora with controllable
//!   entropy density,
//! * [`serve`] (`hetjpeg-serve`) — the multi-session decode server:
//!   sharded session pool, async batch admission, wire protocol.
//!
//! The `hetjpeg` binary (`src/bin/hetjpeg.rs`) is the command-line front
//! end and `hetjpeg-serve` (`src/bin/hetjpeg-serve.rs`) the server; see
//! `docs/ARCHITECTURE.md` for the end-to-end picture and `docs/PERF.md`
//! for the hot-path architecture and bench methodology.

pub use hetjpeg_core as core;
pub use hetjpeg_corpus as corpus;
pub use hetjpeg_gpusim as gpusim;
pub use hetjpeg_jpeg as jpeg;
pub use hetjpeg_serve as serve;

pub use hetjpeg_core::{
    BuildError, DecodeOptions, DecodeOutcome, Decoder, DecoderBuilder, Mode, OutputFormat,
    Platform, SessionStats, Strictness,
};
pub use hetjpeg_serve::{ServeConfig, ServeHandle, Server, ServerStats};

/// Decode a JPEG byte stream with the reference scalar pipeline.
///
/// For anything beyond a one-off decode, build a [`Decoder`] session (it
/// amortizes pools and `Mode::Auto` decisions across images), or front a
/// pool of sessions with [`Server`] when requests arrive concurrently:
///
/// ```
/// use hetjpeg::{DecodeOptions, Decoder, ServeConfig, Server};
/// use hetjpeg::corpus::{generate_jpeg, ImageSpec, Pattern};
/// use hetjpeg::jpeg::types::Subsampling;
///
/// let spec = ImageSpec { width: 64, height: 64,
///                        pattern: Pattern::PhotoLike { detail: 0.5 }, seed: 3 };
/// let jpeg = generate_jpeg(&spec, 85, Subsampling::S420).unwrap();
///
/// let reference = hetjpeg::decode(&jpeg).unwrap();
///
/// let decoder = Decoder::builder().build().unwrap();
/// let out = decoder.decode(&jpeg, DecodeOptions::default()).unwrap();
/// assert_eq!(out.image.data, reference.data);
///
/// let server = Server::start(ServeConfig { shards: 2, ..ServeConfig::default() }).unwrap();
/// let served = server.handle().decode(&jpeg).unwrap();
/// assert_eq!(served.image.data, reference.data);
/// server.shutdown();
/// ```
pub fn decode(data: &[u8]) -> hetjpeg_jpeg::Result<hetjpeg_jpeg::RgbImage> {
    hetjpeg_jpeg::decoder::decode(data)
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_decodes() {
        use hetjpeg_jpeg::encoder::{encode_rgb, EncodeParams};
        use hetjpeg_jpeg::types::Subsampling;
        let rgb = vec![100u8; 16 * 8 * 3];
        let jpeg = encode_rgb(
            &rgb,
            16,
            8,
            &EncodeParams {
                quality: 90,
                subsampling: Subsampling::S444,
                restart_interval: 0,
            },
        )
        .unwrap();
        let img = super::decode(&jpeg).unwrap();
        assert_eq!((img.width, img.height), (16, 8));
    }
}
