//! # hetjpeg — dynamic partitioning-based JPEG decompression
//!
//! Facade over the workspace crates, re-exported under one roof:
//!
//! * [`jpeg`] (`hetjpeg-jpeg`) — the baseline JPEG codec substrate with
//!   region-addressable decode stages and the EOB-dispatched sparse hot
//!   path,
//! * [`gpusim`] (`hetjpeg-gpu-sim`) — the functional + analytic
//!   OpenCL-style GPU simulator,
//! * [`core`] (`hetjpeg-core`) — performance model, partitioners, the six
//!   decode modes, and the real-thread pipelined executor,
//! * [`corpus`] (`hetjpeg-corpus`) — synthetic corpora with controllable
//!   entropy density.
//!
//! The `hetjpeg` binary (`src/bin/hetjpeg.rs`) is the command-line front
//! end; see `docs/PERF.md` for the hot-path architecture and bench
//! methodology.

pub use hetjpeg_core as core;
pub use hetjpeg_corpus as corpus;
pub use hetjpeg_gpusim as gpusim;
pub use hetjpeg_jpeg as jpeg;

pub use hetjpeg_core::{
    BuildError, DecodeOptions, DecodeOutcome, Decoder, DecoderBuilder, Mode, OutputFormat,
    Platform, Strictness,
};

/// Decode a JPEG byte stream with the reference scalar pipeline.
pub fn decode(data: &[u8]) -> hetjpeg_jpeg::Result<hetjpeg_jpeg::RgbImage> {
    hetjpeg_jpeg::decoder::decode(data)
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_decodes() {
        use hetjpeg_jpeg::encoder::{encode_rgb, EncodeParams};
        use hetjpeg_jpeg::types::Subsampling;
        let rgb = vec![100u8; 16 * 8 * 3];
        let jpeg = encode_rgb(
            &rgb,
            16,
            8,
            &EncodeParams {
                quality: 90,
                subsampling: Subsampling::S444,
                restart_interval: 0,
            },
        )
        .unwrap();
        let img = super::decode(&jpeg).unwrap();
        assert_eq!((img.width, img.height), (16, 8));
    }
}
