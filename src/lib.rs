//! Facade crate.
