//! `hetjpeg-serve` — the multi-session decode server front end.
//!
//! ```text
//! hetjpeg-serve --addr 127.0.0.1:7033 --shards 4          # TCP server
//! hetjpeg-serve --stdio < frames.bin > responses.bin      # stdio framing
//! hetjpeg-serve --smoke                                   # CI self-test
//! ```
//!
//! The wire protocol is length-prefixed (see `hetjpeg_serve::protocol`):
//! each request is `u32_be length + JPEG bytes`, each response either
//! `0u8 + width + height + len + RGB` or `1u8 + len + UTF-8 error`. A
//! zero-length request closes the connection gracefully.
//!
//! `--smoke` is the end-to-end proof CI runs: start a TCP server on an
//! ephemeral loopback port, decode corpus images through the protocol
//! from several pipelined client connections, compare every payload
//! against a direct `Decoder::decode`, and shut down checking the drain
//! accounting.

use hetjpeg_core::{DecodeOptions, Decoder, Platform};
use hetjpeg_corpus::{generate_jpeg, ImageSpec, Pattern};
use hetjpeg_jpeg::types::Subsampling;
use hetjpeg_serve::{protocol, ServeConfig, Server};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  hetjpeg-serve (--addr HOST:PORT | --stdio | --smoke)\n\
         \u{20}              [--shards N] [--queue-depth N] [--max-batch N] [--flush-us N]\n\
         \u{20}              [--cache-cap N] [--threads N] [--platform gt430|gtx560|gtx680]\n\
         \u{20}              [--model model.txt] [--max-pixels N] [--tolerant]\n\
         \u{20}              [--max-scans N] [--scan-deadline-us N]"
    );
    ExitCode::from(2)
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_or_usage<T: std::str::FromStr>(args: &[String], key: &str) -> Result<Option<T>, ExitCode> {
    match arg_value(args, key) {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| {
            eprintln!("invalid {key} value {v:?}");
            usage()
        }),
    }
}

fn config_from_args(args: &[String]) -> Result<ServeConfig, ExitCode> {
    let mut config = ServeConfig::default();
    if let Some(n) = parse_or_usage(args, "--shards")? {
        config.shards = n;
    }
    if let Some(n) = parse_or_usage(args, "--queue-depth")? {
        config.queue_depth = n;
    }
    if let Some(n) = parse_or_usage(args, "--max-batch")? {
        config.max_batch = n;
    }
    if let Some(us) = parse_or_usage::<u64>(args, "--flush-us")? {
        config.flush_after = Duration::from_micros(us);
    }
    if let Some(n) = parse_or_usage(args, "--cache-cap")? {
        config.auto_cache_cap = n;
    }
    if let Some(n) = parse_or_usage(args, "--threads")? {
        config.threads = n;
    }
    match arg_value(args, "--platform").as_deref() {
        None => {}
        Some("gt430") => config.platform = Platform::gt430(),
        Some("gtx560") => config.platform = Platform::gtx560(),
        Some("gtx680") => config.platform = Platform::gtx680(),
        Some(other) => {
            eprintln!("unknown platform {other}");
            return Err(usage());
        }
    }
    if let Some(path) = arg_value(args, "--model") {
        match std::fs::read_to_string(&path)
            .ok()
            .and_then(|t| hetjpeg_core::model::PerformanceModel::load_str(&t))
        {
            Some(m) => config.model = Some(m),
            None => {
                eprintln!("cannot load model from {path}");
                return Err(ExitCode::FAILURE);
            }
        }
    }
    let mut opts = DecodeOptions::default();
    if let Some(px) = parse_or_usage(args, "--max-pixels")? {
        opts = opts.max_pixels(px);
    }
    if args.iter().any(|a| a == "--tolerant") {
        opts = opts.tolerant();
    }
    if let Some(n) = parse_or_usage(args, "--max-scans")? {
        opts = opts.max_scans(n);
    }
    config.options = opts;
    if let Some(us) = parse_or_usage::<u64>(args, "--scan-deadline-us")? {
        config.scan_deadline = Some(Duration::from_micros(us));
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match config_from_args(&args) {
        Ok(c) => c,
        Err(code) => return code,
    };
    if args.iter().any(|a| a == "--smoke") {
        return smoke(config);
    }
    let stdio = args.iter().any(|a| a == "--stdio");
    let addr = arg_value(&args, "--addr");
    match (stdio, addr) {
        (true, None) => run_stdio(config),
        (false, Some(addr)) => run_tcp(config, &addr),
        _ => usage(),
    }
}

fn print_stats(stats: &hetjpeg_serve::ServerStats) {
    eprintln!(
        "served {} requests in {} batches (mean batch {:.2}, errors {}); \
         auto cache: {} evals, {} hits, {} evictions",
        stats.requests(),
        stats.batches(),
        stats.mean_batch(),
        stats.decode_errors(),
        stats.auto_evals(),
        stats.auto_cache_hits(),
        stats.auto_evictions(),
    );
    let prog = stats.progressive();
    if prog.scans_decoded > 0 {
        eprintln!(
            "progressive: {} scans decoded, {} refinement passes, \
             {} partial renders ({} deadline-paced)",
            prog.scans_decoded,
            prog.refine_passes,
            prog.partial_renders,
            stats.deadline_partials(),
        );
    }
}

fn run_stdio(config: ServeConfig) -> ExitCode {
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let handle = server.handle();
    let result = protocol::serve_stdio(&handle);
    let stats = server.shutdown();
    print_stats(&stats);
    match result {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("stdio serving failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_tcp(config: ServeConfig, addr: &str) -> ExitCode {
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let local = listener.local_addr().map(|a| a.to_string());
    eprintln!(
        "hetjpeg-serve listening on {}",
        local.as_deref().unwrap_or(addr)
    );
    let handle = server.handle();
    let result = protocol::serve_tcp(&handle, listener);
    let stats = server.shutdown();
    print_stats(&stats);
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("TCP serving failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// CI self-test: full server lifecycle over the real TCP protocol,
/// byte-compared against direct session decodes.
fn smoke(mut config: ServeConfig) -> ExitCode {
    config.shards = config.shards.max(2);
    let shards = config.shards;

    // A small mixed corpus: several shapes, subsamplings and qualities.
    let mut corpus: Vec<Vec<u8>> = [
        (96usize, 96usize, 85u8, Subsampling::S420),
        (128, 96, 85, Subsampling::S422),
        (96, 96, 92, Subsampling::S420),
        (160, 128, 80, Subsampling::S444),
    ]
    .iter()
    .enumerate()
    .flat_map(|(i, &(w, h, q, sub))| {
        (0..3).map(move |seed| {
            let spec = ImageSpec {
                width: w,
                height: h,
                pattern: Pattern::PhotoLike { detail: 0.55 },
                seed: (i * 100 + seed) as u64,
            };
            generate_jpeg(&spec, q, sub).expect("encode corpus image")
        })
    })
    .collect();
    // Plus progressive (SOF2) counterparts: the smoke proves multi-scan
    // requests ride the same wire and match direct decodes byte for byte.
    for seed in 0..2u64 {
        let spec = ImageSpec {
            width: 112,
            height: 80,
            pattern: Pattern::PhotoLike { detail: 0.55 },
            seed: 900 + seed,
        };
        corpus.push(
            hetjpeg_corpus::generate_progressive_jpeg(
                &spec,
                85,
                Subsampling::S420,
                hetjpeg_jpeg::progressive::ScanPreset::Standard10,
            )
            .expect("encode progressive corpus image"),
        );
    }
    let corpus = corpus;

    // Reference bytes from a plain session with the same configuration.
    let reference_decoder = Decoder::builder()
        .platform(config.platform.clone())
        .model(
            config
                .model
                .clone()
                .unwrap_or_else(|| config.platform.untrained_model()),
        )
        .threads(config.threads)
        .build()
        .expect("reference session");
    let references: Vec<Vec<u8>> = corpus
        .iter()
        .map(|j| {
            reference_decoder
                .decode(j, config.options)
                .expect("reference decode")
                .image
                .data
                .clone()
        })
        .collect();

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("smoke: cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let handle = server.handle();

    let total = corpus.len();
    let ok = std::thread::scope(|s| {
        // The accept loop runs for the duration of the scope; it exits
        // when the listener is dropped after the clients finish... the
        // listener cannot be "closed" portably, so the accept thread is
        // left to end with the process in real serving; here the clients
        // finish first and the scope would block — so serve a bounded
        // number of connections instead.
        let accept_handle = handle.clone();
        s.spawn(move || {
            for _ in 0..2 {
                if let Ok((mut stream, _)) = listener.accept() {
                    let conn_handle = accept_handle.clone();
                    let mut reader = stream.try_clone().expect("clone stream");
                    let _ = protocol::serve_connection(&conn_handle, &mut reader, &mut stream);
                }
            }
        });

        // Two pipelined client connections splitting the corpus.
        let mut mismatches = 0usize;
        let mut answered = 0usize;
        for half in 0..2 {
            let mut stream = TcpStream::connect(addr).expect("connect");
            let jpegs: Vec<&Vec<u8>> = corpus.iter().skip(half).step_by(2).collect();
            let refs: Vec<&Vec<u8>> = references.iter().skip(half).step_by(2).collect();
            // Pipeline: write every request before reading any response.
            for j in &jpegs {
                protocol::write_request(&mut stream, j).expect("write request");
            }
            protocol::write_goodbye(&mut stream).expect("goodbye");
            for (i, want) in refs.iter().enumerate() {
                match protocol::read_response(&mut stream).expect("read response") {
                    Ok(frame) => {
                        answered += 1;
                        if &frame.rgb != *want {
                            eprintln!("smoke: payload mismatch on image {i} of half {half}");
                            mismatches += 1;
                        }
                    }
                    Err(msg) => {
                        eprintln!("smoke: server error on image {i} of half {half}: {msg}");
                        mismatches += 1;
                    }
                }
            }
        }
        mismatches == 0 && answered == total
    });

    let stats = server.shutdown();
    print_stats(&stats);
    if !ok {
        eprintln!("smoke: FAILED");
        return ExitCode::FAILURE;
    }
    if stats.requests() != total as u64 || stats.decode_errors() != 0 {
        eprintln!(
            "smoke: accounting mismatch: {} requests recorded for {total} sent, {} errors",
            stats.requests(),
            stats.decode_errors()
        );
        return ExitCode::FAILURE;
    }
    // Every shard must have decoded at the host's detected kernel level
    // (honoring HETJPEG_SIMD) — a silent scalar fallback would still
    // produce bit-identical bytes, so only the stats can catch it.
    let expected = hetjpeg_core::SimdLevel::detect();
    if stats.simd_level() != Some(expected) {
        eprintln!(
            "smoke: shard SIMD level {:?} != detected {:?}",
            stats.simd_level(),
            expected
        );
        return ExitCode::FAILURE;
    }
    // The two progressive requests must have exercised the multi-scan
    // path: 10 scans and 5 refinement passes each, no partial renders.
    let prog = stats.progressive();
    if prog.scans_decoded != 20 || prog.refine_passes != 10 || prog.partial_renders != 0 {
        eprintln!("smoke: unexpected progressive counters: {prog:?}");
        return ExitCode::FAILURE;
    }
    // Deadline pacing end to end: seed a 1-shard server's throughput
    // estimate with one full decode, then a 1 ns budget must force a
    // prefix render flagged truncated and counted as deadline-paced.
    let paced_spec = ImageSpec {
        width: 112,
        height: 80,
        pattern: Pattern::PhotoLike { detail: 0.55 },
        seed: 900,
    };
    let paced_jpeg = hetjpeg_corpus::generate_progressive_jpeg(
        &paced_spec,
        85,
        Subsampling::S420,
        hetjpeg_jpeg::progressive::ScanPreset::Standard10,
    )
    .expect("encode paced image");
    let paced_server = Server::start(ServeConfig {
        shards: 1,
        scan_deadline: Some(Duration::from_nanos(1)),
        ..ServeConfig::default()
    })
    .expect("start paced server");
    let paced_handle = paced_server.handle();
    let seeded = paced_handle.decode(&paced_jpeg).expect("seeding decode");
    let paced_out = paced_handle.decode(&paced_jpeg).expect("paced decode");
    let paced_stats = paced_server.shutdown();
    if seeded.truncated
        || !paced_out.truncated
        || paced_stats.deadline_partials() != 1
        || paced_stats.progressive().partial_renders != 1
    {
        eprintln!(
            "smoke: deadline pacing misbehaved: seeded.truncated={} paced.truncated={} \
             deadline_partials={} progressive={:?}",
            seeded.truncated,
            paced_out.truncated,
            paced_stats.deadline_partials(),
            paced_stats.progressive(),
        );
        return ExitCode::FAILURE;
    }
    println!(
        "smoke OK: {total} images through {shards} shards over TCP ({} kernels), all payloads \
         bit-identical to direct decode",
        expected.name()
    );
    ExitCode::SUCCESS
}
