//! `hetjpeg-serve` — the multi-session decode server front end.
//!
//! ```text
//! hetjpeg-serve --addr 127.0.0.1:7033 --shards 4          # TCP server
//! hetjpeg-serve --stdio < frames.bin > responses.bin      # stdio framing
//! hetjpeg-serve --smoke                                   # CI self-test
//! hetjpeg-serve --chaos-smoke                             # CI fault-tolerance proof
//! ```
//!
//! The wire protocol is length-prefixed (see `hetjpeg_serve::protocol`):
//! requests are v1 (`u32_be length + JPEG`) or v2 frames carrying a
//! per-request deadline, degrade-ok flag, TLV decode options and a
//! streaming opt-in; responses are `ok`, `error`, `busy`, `shutdown`,
//! `degraded-ok` or streamed (`begin`/`chunk`*/`final` with a CRC-32)
//! frames. A zero-length request closes the connection gracefully.
//!
//! On unix, `--addr` serves with the event-driven front end
//! (`hetjpeg_serve::frontend`): one thread, epoll readiness, zero threads
//! per idle connection. `--threaded-frontend` selects the legacy
//! thread-per-connection loop; `--max-connections N` sets the admission
//! cap for either (over-cap clients get a `busy` frame, never a silent
//! drop).
//!
//! `--smoke` is the end-to-end proof CI runs: start a TCP server on an
//! ephemeral loopback port, decode corpus images through the protocol
//! from several pipelined client connections, compare every payload
//! against a direct `Decoder::decode`, and shut down checking the drain
//! accounting.
//!
//! `--chaos-smoke` is the PR-8 resilience proof: run seeded fault plans
//! (decode panics, a stalled shard, short/EINTR reads) against real
//! traffic and assert that non-faulted requests stay bit-identical to
//! direct decodes, panicked sessions are rebuilt (counter-verified), the
//! circuit breaker sheds around a dying shard, and deadline-infeasible
//! requests are shed or degraded — never silently slow.
//!
//! `--fault SPEC` (or `HETJPEG_FAULT`) arms the deterministic fault
//! harness on any serving mode; see `hetjpeg_serve::fault` for the
//! grammar.

use hetjpeg_core::{DecodeOptions, Decoder, Platform};
use hetjpeg_corpus::{generate_jpeg, ImageSpec, Pattern};
use hetjpeg_jpeg::types::Subsampling;
use hetjpeg_serve::fault::{ChaosReader, FaultPlan};
use hetjpeg_serve::{protocol, ServeConfig, ServeError, Server, SubmitOptions};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  hetjpeg-serve (--addr HOST:PORT | --stdio | --smoke | --chaos-smoke)\n\
         \u{20}              [--shards N] [--queue-depth N] [--max-batch N] [--flush-us N]\n\
         \u{20}              [--cache-cap N] [--threads N] [--platform gt430|gtx560|gtx680]\n\
         \u{20}              [--model model.txt] [--max-pixels N] [--tolerant]\n\
         \u{20}              [--max-scans N] [--scan-deadline-us N]\n\
         \u{20}              [--fault SPEC[:SEED]] [--breaker-threshold N] [--breaker-cooldown-us N]\n\
         \u{20}              [--max-connections N] [--threaded-frontend]"
    );
    ExitCode::from(2)
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_or_usage<T: std::str::FromStr>(args: &[String], key: &str) -> Result<Option<T>, ExitCode> {
    match arg_value(args, key) {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| {
            eprintln!("invalid {key} value {v:?}");
            usage()
        }),
    }
}

fn config_from_args(args: &[String]) -> Result<ServeConfig, ExitCode> {
    let mut config = ServeConfig::default();
    if let Some(n) = parse_or_usage(args, "--shards")? {
        config.shards = n;
    }
    if let Some(n) = parse_or_usage(args, "--queue-depth")? {
        config.queue_depth = n;
    }
    if let Some(n) = parse_or_usage(args, "--max-batch")? {
        config.max_batch = n;
    }
    if let Some(us) = parse_or_usage::<u64>(args, "--flush-us")? {
        config.flush_after = Duration::from_micros(us);
    }
    if let Some(n) = parse_or_usage(args, "--cache-cap")? {
        config.auto_cache_cap = n;
    }
    if let Some(n) = parse_or_usage(args, "--threads")? {
        config.threads = n;
    }
    match arg_value(args, "--platform").as_deref() {
        None => {}
        Some("gt430") => config.platform = Platform::gt430(),
        Some("gtx560") => config.platform = Platform::gtx560(),
        Some("gtx680") => config.platform = Platform::gtx680(),
        Some(other) => {
            eprintln!("unknown platform {other}");
            return Err(usage());
        }
    }
    if let Some(path) = arg_value(args, "--model") {
        match std::fs::read_to_string(&path)
            .ok()
            .and_then(|t| hetjpeg_core::model::PerformanceModel::load_str(&t))
        {
            Some(m) => config.model = Some(m),
            None => {
                eprintln!("cannot load model from {path}");
                return Err(ExitCode::FAILURE);
            }
        }
    }
    let mut opts = DecodeOptions::default();
    if let Some(px) = parse_or_usage(args, "--max-pixels")? {
        opts = opts.max_pixels(px);
    }
    if args.iter().any(|a| a == "--tolerant") {
        opts = opts.tolerant();
    }
    if let Some(n) = parse_or_usage(args, "--max-scans")? {
        opts = opts.max_scans(n);
    }
    config.options = opts;
    if let Some(us) = parse_or_usage::<u64>(args, "--scan-deadline-us")? {
        config.scan_deadline = Some(Duration::from_micros(us));
    }
    if let Some(spec) = arg_value(args, "--fault") {
        match FaultPlan::parse(&spec) {
            Ok(plan) => config.fault_plan = Some(Arc::new(plan)),
            Err(e) => {
                eprintln!("invalid --fault spec: {e}");
                return Err(ExitCode::FAILURE);
            }
        }
    }
    if let Some(n) = parse_or_usage(args, "--breaker-threshold")? {
        config.breaker_threshold = n;
    }
    if let Some(us) = parse_or_usage::<u64>(args, "--breaker-cooldown-us")? {
        config.breaker_cooldown = Duration::from_micros(us);
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match config_from_args(&args) {
        Ok(c) => c,
        Err(code) => return code,
    };
    if args.iter().any(|a| a == "--smoke") {
        return smoke(config);
    }
    if args.iter().any(|a| a == "--chaos-smoke") {
        return chaos_smoke(config);
    }
    let stdio = args.iter().any(|a| a == "--stdio");
    let addr = arg_value(&args, "--addr");
    match (stdio, addr) {
        (true, None) => run_stdio(config),
        (false, Some(addr)) => run_tcp(config, &addr, &args),
        _ => usage(),
    }
}

fn print_stats(stats: &hetjpeg_serve::ServerStats) {
    eprintln!(
        "served {} requests in {} batches (mean batch {:.2}, errors {}); \
         auto cache: {} evals, {} hits, {} evictions",
        stats.requests(),
        stats.batches(),
        stats.mean_batch(),
        stats.decode_errors(),
        stats.auto_evals(),
        stats.auto_cache_hits(),
        stats.auto_evictions(),
    );
    let prog = stats.progressive();
    if prog.scans_decoded > 0 {
        eprintln!(
            "progressive: {} scans decoded, {} refinement passes, \
             {} partial renders ({} deadline-paced)",
            prog.scans_decoded,
            prog.refine_passes,
            prog.partial_renders,
            stats.deadline_partials(),
        );
    }
    let resilience = stats.panics_recovered()
        + stats.breaker_trips()
        + stats.shed()
        + stats.degraded()
        + stats.shutdown_drained();
    if resilience > 0 {
        eprintln!(
            "resilience: {} panics recovered, {} sessions rebuilt, {} breaker trips, \
             {} shed, {} degraded, {} drained at shutdown",
            stats.panics_recovered(),
            stats.sessions_rebuilt(),
            stats.breaker_trips(),
            stats.shed(),
            stats.degraded(),
            stats.shutdown_drained(),
        );
    }
}

fn run_stdio(config: ServeConfig) -> ExitCode {
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let handle = server.handle();
    let result = protocol::serve_stdio(&handle);
    let stats = server.shutdown();
    print_stats(&stats);
    match result {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("stdio serving failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_tcp(config: ServeConfig, addr: &str, args: &[String]) -> ExitCode {
    let threaded = args.iter().any(|a| a == "--threaded-frontend");
    let max_connections = match parse_or_usage::<usize>(args, "--max-connections") {
        Ok(n) => n,
        Err(code) => return code,
    };
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let local = listener.local_addr().map(|a| a.to_string());
    eprintln!(
        "hetjpeg-serve listening on {}",
        local.as_deref().unwrap_or(addr)
    );
    let handle = server.handle();
    let result = serve_listener(&handle, listener, threaded, max_connections);
    let stats = server.shutdown();
    print_stats(&stats);
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("TCP serving failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Dispatch to the event-driven front end (the default on unix) or the
/// thread-per-connection loop (`--threaded-frontend`, and the only option
/// off-unix).
fn serve_listener(
    handle: &hetjpeg_serve::ServeHandle,
    listener: TcpListener,
    threaded: bool,
    max_connections: Option<usize>,
) -> std::io::Result<()> {
    #[cfg(unix)]
    if !threaded {
        use hetjpeg_serve::frontend::{FrontEnd, DEFAULT_MAX_CONNECTIONS};
        let fe = FrontEnd::with_max_connections(
            handle.clone(),
            listener,
            max_connections.unwrap_or(DEFAULT_MAX_CONNECTIONS),
        )?;
        fe.run()?;
        return Ok(());
    }
    let _ = threaded;
    protocol::serve_tcp_with(
        handle,
        listener,
        max_connections.unwrap_or(protocol::MAX_CONNECTIONS),
    )
}

/// CI self-test: full server lifecycle over the real TCP protocol,
/// byte-compared against direct session decodes.
fn smoke(mut config: ServeConfig) -> ExitCode {
    config.shards = config.shards.max(2);
    let shards = config.shards;

    // A small mixed corpus: several shapes, subsamplings and qualities.
    let mut corpus: Vec<Vec<u8>> = [
        (96usize, 96usize, 85u8, Subsampling::S420),
        (128, 96, 85, Subsampling::S422),
        (96, 96, 92, Subsampling::S420),
        (160, 128, 80, Subsampling::S444),
    ]
    .iter()
    .enumerate()
    .flat_map(|(i, &(w, h, q, sub))| {
        (0..3).map(move |seed| {
            let spec = ImageSpec {
                width: w,
                height: h,
                pattern: Pattern::PhotoLike { detail: 0.55 },
                seed: (i * 100 + seed) as u64,
            };
            generate_jpeg(&spec, q, sub).expect("encode corpus image")
        })
    })
    .collect();
    // Plus progressive (SOF2) counterparts: the smoke proves multi-scan
    // requests ride the same wire and match direct decodes byte for byte.
    for seed in 0..2u64 {
        let spec = ImageSpec {
            width: 112,
            height: 80,
            pattern: Pattern::PhotoLike { detail: 0.55 },
            seed: 900 + seed,
        };
        corpus.push(
            hetjpeg_corpus::generate_progressive_jpeg(
                &spec,
                85,
                Subsampling::S420,
                hetjpeg_jpeg::progressive::ScanPreset::Standard10,
            )
            .expect("encode progressive corpus image"),
        );
    }
    let corpus = corpus;

    // Reference bytes from a plain session with the same configuration.
    let reference_decoder = Decoder::builder()
        .platform(config.platform.clone())
        .model(
            config
                .model
                .clone()
                .unwrap_or_else(|| config.platform.untrained_model()),
        )
        .threads(config.threads)
        .build()
        .expect("reference session");
    let references: Vec<Vec<u8>> = corpus
        .iter()
        .map(|j| {
            reference_decoder
                .decode(j, config.options)
                .expect("reference decode")
                .image
                .data
                .clone()
        })
        .collect();

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("smoke: cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let handle = server.handle();

    let total = corpus.len();
    let ok = std::thread::scope(|s| {
        // The accept loop runs for the duration of the scope; it exits
        // when the listener is dropped after the clients finish... the
        // listener cannot be "closed" portably, so the accept thread is
        // left to end with the process in real serving; here the clients
        // finish first and the scope would block — so serve a bounded
        // number of connections instead.
        let accept_handle = handle.clone();
        s.spawn(move || {
            for _ in 0..2 {
                if let Ok((mut stream, _)) = listener.accept() {
                    let conn_handle = accept_handle.clone();
                    let mut reader = stream.try_clone().expect("clone stream");
                    let _ = protocol::serve_connection(&conn_handle, &mut reader, &mut stream);
                }
            }
        });

        // Two pipelined client connections splitting the corpus.
        let mut mismatches = 0usize;
        let mut answered = 0usize;
        for half in 0..2 {
            let mut stream = TcpStream::connect(addr).expect("connect");
            let jpegs: Vec<&Vec<u8>> = corpus.iter().skip(half).step_by(2).collect();
            let refs: Vec<&Vec<u8>> = references.iter().skip(half).step_by(2).collect();
            // Pipeline: write every request before reading any response.
            for j in &jpegs {
                protocol::write_request(&mut stream, j).expect("write request");
            }
            protocol::write_goodbye(&mut stream).expect("goodbye");
            for (i, want) in refs.iter().enumerate() {
                match protocol::read_response(&mut stream)
                    .expect("read response")
                    .into_frame()
                {
                    Ok(frame) => {
                        answered += 1;
                        if &frame.rgb != *want {
                            eprintln!("smoke: payload mismatch on image {i} of half {half}");
                            mismatches += 1;
                        }
                    }
                    Err(msg) => {
                        eprintln!("smoke: server error on image {i} of half {half}: {msg}");
                        mismatches += 1;
                    }
                }
            }
        }
        mismatches == 0 && answered == total
    });

    let stats = server.shutdown();
    print_stats(&stats);
    if !ok {
        eprintln!("smoke: FAILED");
        return ExitCode::FAILURE;
    }
    if stats.requests() != total as u64 || stats.decode_errors() != 0 {
        eprintln!(
            "smoke: accounting mismatch: {} requests recorded for {total} sent, {} errors",
            stats.requests(),
            stats.decode_errors()
        );
        return ExitCode::FAILURE;
    }
    // Every shard must have decoded at the host's detected kernel level
    // (honoring HETJPEG_SIMD) — a silent scalar fallback would still
    // produce bit-identical bytes, so only the stats can catch it.
    let expected = hetjpeg_core::SimdLevel::detect();
    if stats.simd_level() != Some(expected) {
        eprintln!(
            "smoke: shard SIMD level {:?} != detected {:?}",
            stats.simd_level(),
            expected
        );
        return ExitCode::FAILURE;
    }
    // The two progressive requests must have exercised the multi-scan
    // path: 10 scans and 5 refinement passes each, no partial renders.
    let prog = stats.progressive();
    if prog.scans_decoded != 20 || prog.refine_passes != 10 || prog.partial_renders != 0 {
        eprintln!("smoke: unexpected progressive counters: {prog:?}");
        return ExitCode::FAILURE;
    }
    // Deadline pacing end to end: seed a 1-shard server's throughput
    // estimate with one full decode, then a 1 ns budget must force a
    // prefix render flagged truncated and counted as deadline-paced.
    let paced_spec = ImageSpec {
        width: 112,
        height: 80,
        pattern: Pattern::PhotoLike { detail: 0.55 },
        seed: 900,
    };
    let paced_jpeg = hetjpeg_corpus::generate_progressive_jpeg(
        &paced_spec,
        85,
        Subsampling::S420,
        hetjpeg_jpeg::progressive::ScanPreset::Standard10,
    )
    .expect("encode paced image");
    let paced_server = Server::start(ServeConfig {
        shards: 1,
        scan_deadline: Some(Duration::from_nanos(1)),
        ..ServeConfig::default()
    })
    .expect("start paced server");
    let paced_handle = paced_server.handle();
    let seeded = paced_handle.decode(&paced_jpeg).expect("seeding decode");
    let paced_out = paced_handle.decode(&paced_jpeg).expect("paced decode");
    let paced_stats = paced_server.shutdown();
    if seeded.truncated
        || !paced_out.truncated
        || paced_stats.deadline_partials() != 1
        || paced_stats.progressive().partial_renders != 1
    {
        eprintln!(
            "smoke: deadline pacing misbehaved: seeded.truncated={} paced.truncated={} \
             deadline_partials={} progressive={:?}",
            seeded.truncated,
            paced_out.truncated,
            paced_stats.deadline_partials(),
            paced_stats.progressive(),
        );
        return ExitCode::FAILURE;
    }
    println!(
        "smoke OK: {total} images through {shards} shards over TCP ({} kernels), all payloads \
         bit-identical to direct decode",
        expected.name()
    );
    ExitCode::SUCCESS
}

/// CI resilience proof: run seeded fault plans against real traffic and
/// verify the failure-domain guarantees end to end — panic isolation with
/// counter-verified session rebuild, circuit-breaker shedding, chaotic
/// reads that never desync the framing, and SLO shed/degrade behaviour.
fn chaos_smoke(config: ServeConfig) -> ExitCode {
    macro_rules! check {
        ($cond:expr, $($msg:tt)+) => {
            if !$cond {
                eprintln!("chaos-smoke FAILED: {}", format_args!($($msg)+));
                return ExitCode::FAILURE;
            }
        };
    }

    let jpeg_for = |seed: u64| {
        let spec = ImageSpec {
            width: 96,
            height: 96,
            pattern: Pattern::PhotoLike { detail: 0.55 },
            seed,
        };
        generate_jpeg(&spec, 85, Subsampling::S420).expect("encode chaos image")
    };
    let reference = Decoder::builder()
        .platform(config.platform.clone())
        .model(
            config
                .model
                .clone()
                .unwrap_or_else(|| config.platform.untrained_model()),
        )
        .threads(config.threads)
        .build()
        .expect("reference session");
    let ref_bytes = |jpeg: &[u8]| {
        reference
            .decode(jpeg, config.options)
            .expect("reference decode")
            .image
            .data
            .clone()
    };

    // Phase 1 — panic isolation on a stuttering shard. One decode panic
    // (request #2 of the home shard) plus a 3 ms stall on every 2nd
    // request; everything except the panicked request must come back
    // bit-identical, and the shard must keep serving after its rebuild.
    let plan = Arc::new(FaultPlan::parse("panic=#2,latency=2x3ms:7").expect("phase 1 plan"));
    eprintln!("chaos-smoke phase 1: {}", plan.describe());
    let mut cfg = config.clone();
    cfg.shards = 2;
    cfg.breaker_threshold = 99; // keep the breaker out of this phase
    cfg.fault_plan = Some(plan.clone());
    let server = Server::start(cfg).expect("phase 1 server");
    let handle = server.handle();
    let mut panicked = 0usize;
    for i in 0..6u64 {
        let jpeg = jpeg_for(i);
        let want = ref_bytes(&jpeg);
        match handle.decode(&jpeg) {
            Ok(out) => {
                check!(
                    out.image.data == want,
                    "phase 1: payload mismatch on image {i}"
                );
            }
            Err(ServeError::Panicked(_)) => {
                panicked += 1;
                check!(
                    i == 1,
                    "phase 1: panic fired on image {i}, expected image 1"
                );
            }
            Err(e) => check!(false, "phase 1: unexpected error on image {i}: {e}"),
        }
    }
    // The rebuilt session keeps serving, bit-identically.
    let jpeg = jpeg_for(100);
    let want = ref_bytes(&jpeg);
    match handle.decode(&jpeg) {
        Ok(out) => check!(
            out.image.data == want,
            "phase 1: post-rebuild payload mismatch"
        ),
        Err(e) => check!(false, "phase 1: post-rebuild decode failed: {e}"),
    }
    let stats = server.shutdown();
    check!(panicked == 1, "phase 1: saw {panicked} panics, expected 1");
    check!(
        stats.requests() == 7
            && stats.panics_recovered() == 1
            && stats.sessions_rebuilt() == 1
            && stats.decode_errors() == 0
            && stats.breaker_trips() == 0,
        "phase 1 counters: requests={} panics_recovered={} sessions_rebuilt={} errors={} trips={}",
        stats.requests(),
        stats.panics_recovered(),
        stats.sessions_rebuilt(),
        stats.decode_errors(),
        stats.breaker_trips(),
    );
    // Deterministic schedule: 1 panic + 3 latency stalls (reads 2, 4, 6).
    check!(
        plan.injections_fired() == 4,
        "phase 1: {} injections fired, expected 4",
        plan.injections_fired()
    );

    // Phase 2 — circuit breaker around a dying shard: two consecutive
    // panics trip it, the next request is shed fast with a retry hint,
    // and after the cooldown a half-open probe closes it again.
    let mut cfg = config.clone();
    cfg.shards = 1;
    cfg.breaker_threshold = 2;
    cfg.breaker_cooldown = Duration::from_millis(60);
    cfg.fault_plan = Some(Arc::new(
        FaultPlan::parse("panic=#1,panic=#2:5").expect("phase 2 plan"),
    ));
    let server = Server::start(cfg).expect("phase 2 server");
    let handle = server.handle();
    let jpeg = jpeg_for(200);
    let want = ref_bytes(&jpeg);
    for n in 0..2 {
        check!(
            matches!(handle.decode(&jpeg), Err(ServeError::Panicked(_))),
            "phase 2: decode {n} did not panic as planned"
        );
    }
    match handle.decode(&jpeg) {
        Err(ServeError::Busy { retry_after }) => check!(
            retry_after <= Duration::from_millis(60),
            "phase 2: retry-after {}us exceeds the cooldown",
            retry_after.as_micros()
        ),
        _ => check!(false, "phase 2: expected Busy while the breaker is open"),
    }
    std::thread::sleep(Duration::from_millis(150));
    match handle.decode(&jpeg) {
        Ok(out) => check!(
            out.image.data == want,
            "phase 2: post-probe payload mismatch"
        ),
        Err(e) => check!(false, "phase 2: half-open probe failed: {e}"),
    }
    let stats = server.shutdown();
    check!(
        stats.panics_recovered() == 2
            && stats.sessions_rebuilt() == 2
            && stats.breaker_trips() == 1
            && stats.shed() == 1
            && stats.decode_errors() == 0,
        "phase 2 counters: panics_recovered={} sessions_rebuilt={} trips={} shed={} errors={}",
        stats.panics_recovered(),
        stats.sessions_rebuilt(),
        stats.breaker_trips(),
        stats.shed(),
        stats.decode_errors(),
    );

    // Phase 3 — chaotic connection reads over real TCP: every 2nd read
    // is interrupted (EINTR) or returns 1 byte, across mixed v1/v2
    // frames. Framing must never desync; every payload bit-identical.
    let plan = Arc::new(FaultPlan::parse("shortread=2:11").expect("phase 3 plan"));
    eprintln!("chaos-smoke phase 3: {}", plan.describe());
    let mut cfg = config.clone();
    cfg.shards = 2;
    cfg.fault_plan = Some(plan.clone());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let server = Server::start(cfg).expect("phase 3 server");
    let handle = server.handle();
    let jpegs: Vec<Vec<u8>> = (0..6).map(|i| jpeg_for(300 + i)).collect();
    let wants: Vec<Vec<u8>> = jpegs.iter().map(|j| ref_bytes(j)).collect();
    let wire_ok = std::thread::scope(|s| {
        let accept_handle = handle.clone();
        let plan_srv = plan.clone();
        s.spawn(move || {
            if let Ok((mut stream, _)) = listener.accept() {
                let reader = stream.try_clone().expect("clone stream");
                let mut chaos = ChaosReader::new(reader, plan_srv);
                let _ = protocol::serve_connection(&accept_handle, &mut chaos, &mut stream);
            }
        });
        let mut stream = TcpStream::connect(addr).expect("connect");
        for (i, j) in jpegs.iter().enumerate() {
            if i < 4 {
                protocol::write_request(&mut stream, j).expect("v1 request");
            } else {
                protocol::write_request_v2(&mut stream, j, Some(Duration::from_secs(5)), true)
                    .expect("v2 request");
            }
        }
        protocol::write_goodbye(&mut stream).expect("goodbye");
        let mut good = true;
        for (i, want) in wants.iter().enumerate() {
            match protocol::read_response(&mut stream).expect("read response") {
                protocol::ServerReply::Ok(frame) => {
                    if &frame.rgb != want {
                        eprintln!("chaos-smoke: phase 3: payload mismatch on image {i}");
                        good = false;
                    }
                }
                _ => {
                    eprintln!("chaos-smoke: phase 3: non-ok reply on image {i}");
                    good = false;
                }
            }
        }
        good
    });
    check!(wire_ok, "phase 3: wire roundtrip failed");
    let stats = server.shutdown();
    check!(
        stats.requests() == 6 && stats.decode_errors() == 0 && stats.shed() == 0,
        "phase 3 counters: requests={} errors={} shed={}",
        stats.requests(),
        stats.decode_errors(),
        stats.shed(),
    );
    check!(
        plan.injections_fired() > 0,
        "phase 3: the chaos reader never fired"
    );

    // Phase 4 — SLO admission and the degradation ladder: infeasible
    // deadlines are shed with Busy, or served degraded (tolerant salvage /
    // scan-prefix render) when the client opts in — never silently slow.
    let mut cfg = config.clone();
    cfg.shards = 1;
    let server = Server::start(cfg).expect("phase 4 server");
    let handle = server.handle();
    let jpeg = jpeg_for(400);
    let want = ref_bytes(&jpeg);
    for n in 0..3 {
        let served = handle.decode_with(
            &jpeg,
            SubmitOptions {
                deadline: Some(Duration::from_secs(10)),
                degrade: false,
                ..SubmitOptions::default()
            },
        );
        check!(
            matches!(&served, Ok(s) if !s.degraded && s.outcome.image.data == want),
            "phase 4: calibration decode {n} failed"
        );
    }
    let shed = handle.decode_with(
        &jpeg,
        SubmitOptions {
            deadline: Some(Duration::ZERO),
            degrade: false,
            ..SubmitOptions::default()
        },
    );
    check!(
        matches!(shed, Err(ServeError::Busy { .. })),
        "phase 4: infeasible deadline was not shed"
    );
    let degraded = handle.decode_with(
        &jpeg,
        SubmitOptions {
            deadline: Some(Duration::ZERO),
            degrade: true,
            ..SubmitOptions::default()
        },
    );
    check!(
        matches!(&degraded, Ok(s) if s.degraded),
        "phase 4: degrade-ok request was not served degraded"
    );
    let prog_spec = ImageSpec {
        width: 112,
        height: 80,
        pattern: Pattern::PhotoLike { detail: 0.55 },
        seed: 410,
    };
    let prog = hetjpeg_corpus::generate_progressive_jpeg(
        &prog_spec,
        85,
        Subsampling::S420,
        hetjpeg_jpeg::progressive::ScanPreset::Standard10,
    )
    .expect("encode progressive chaos image");
    check!(
        matches!(&handle.decode(&prog), Ok(o) if !o.truncated),
        "phase 4: seeding progressive decode failed"
    );
    let prefix = handle.decode_with(
        &prog,
        SubmitOptions {
            deadline: Some(Duration::ZERO),
            degrade: true,
            ..SubmitOptions::default()
        },
    );
    check!(
        matches!(&prefix, Ok(s) if s.degraded && s.outcome.truncated),
        "phase 4: progressive request did not degrade to a prefix render"
    );
    let stats = server.shutdown();
    check!(
        stats.shed() == 1 && stats.degraded() == 2 && stats.decode_errors() == 0,
        "phase 4 counters: shed={} degraded={} errors={}",
        stats.shed(),
        stats.degraded(),
        stats.decode_errors(),
    );

    println!(
        "chaos-smoke OK: panics isolated with sessions rebuilt, breaker shed around a dying \
         shard and re-closed after its probe, chaotic reads never desynced the framing, \
         infeasible deadlines shed or degraded; every healthy payload bit-identical to direct \
         decode and zero worker threads lost"
    );
    ExitCode::SUCCESS
}
