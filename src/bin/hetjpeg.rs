//! `hetjpeg` — command-line front end.
//!
//! ```text
//! hetjpeg decode  photo.jpg -o photo.ppm --mode pps --platform gtx560
//! hetjpeg encode  photo.ppm -o photo.jpg --quality 85 --subsampling 422
//! hetjpeg info    photo.jpg
//! hetjpeg predict photo.jpg --platform gtx680
//! ```
//!
//! `decode` runs the requested scheduler mode, writes a binary PPM (P6) and
//! prints the virtual-time stage breakdown for the chosen Table 1 machine.
//! `predict` prints the §5.1 cost-model ranking without decoding — the same
//! estimate `hetjpeg-serve` uses for SLO admission control.

use hetjpeg_core::platform::Platform;
use hetjpeg_core::schedule::Mode;
use hetjpeg_core::{DecodeOptions, Decoder, OutputFormat};
use hetjpeg_jpeg::encoder::{encode_rgb, EncodeParams};
use hetjpeg_jpeg::markers::parse_jpeg;
use hetjpeg_jpeg::types::Subsampling;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  hetjpeg decode <in.jpg> [-o out.ppm] [--mode auto|seq|simd|gpu|pipeline|sps|pps|par]\n\
         \u{20}                [--platform gt430|gtx560|gtx680] [--model model.txt]\n\
         \u{20}                [--threads N] [--planar] [--tolerant] [--max-pixels N]\n\
         \u{20} hetjpeg encode <in.ppm> [-o out.jpg] [--quality N] [--subsampling 444|422|420]\n\
         \u{20}                [--restart N]\n\
         \u{20} hetjpeg info <in.jpg>\n\
         \u{20} hetjpeg predict <in.jpg> [--platform gt430|gtx560|gtx680] [--model model.txt]\n\
         \u{20}                [--threads N]"
    );
    ExitCode::from(2)
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, input) = match (args.first(), args.get(1)) {
        (Some(c), Some(i)) if !i.starts_with("--") => (c.clone(), i.clone()),
        _ => return usage(),
    };
    match cmd.as_str() {
        "decode" => cmd_decode(&input, &args),
        "encode" => cmd_encode(&input, &args),
        "info" => cmd_info(&input),
        "predict" => cmd_predict(&input, &args),
        _ => usage(),
    }
}

fn cmd_decode(input: &str, args: &[String]) -> ExitCode {
    let data = match std::fs::read(input) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mode = match arg_value(args, "--mode").as_deref().unwrap_or("auto") {
        "auto" => Mode::Auto,
        "seq" | "sequential" => Mode::Sequential,
        "simd" => Mode::Simd,
        "gpu" => Mode::Gpu,
        "pipeline" => Mode::PipelinedGpu,
        "sps" => Mode::Sps,
        "pps" => Mode::Pps,
        "par" | "par-entropy" => Mode::ParallelEntropy,
        other => {
            eprintln!("unknown mode {other}");
            return usage();
        }
    };
    let platform = match arg_value(args, "--platform").as_deref().unwrap_or("gtx560") {
        "gt430" => Platform::gt430(),
        "gtx560" => Platform::gtx560(),
        "gtx680" => Platform::gtx680(),
        other => {
            eprintln!("unknown platform {other}");
            return usage();
        }
    };
    let model = match arg_value(args, "--model") {
        Some(path) => match std::fs::read_to_string(&path)
            .ok()
            .and_then(|t| hetjpeg_core::model::PerformanceModel::load_str(&t))
        {
            Some(m) => m,
            None => {
                eprintln!("cannot load model from {path}");
                return ExitCode::FAILURE;
            }
        },
        None => platform.untrained_model(),
    };
    let threads: usize = match arg_value(args, "--threads") {
        Some(v) => match v.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("invalid --threads value {v:?}");
                return usage();
            }
        },
        None => 4,
    };

    let decoder = match Decoder::builder()
        .platform(platform.clone())
        .model(model)
        .threads(threads)
        .build()
    {
        Ok(d) => d,
        Err(e) => {
            eprintln!("invalid decoder configuration: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut opts = DecodeOptions::with_mode(mode);
    if args.iter().any(|a| a == "--planar") {
        opts = opts.format(OutputFormat::PlanarYcc);
    }
    if args.iter().any(|a| a == "--tolerant") {
        opts = opts.tolerant();
    }
    if let Some(v) = arg_value(args, "--max-pixels") {
        // A typo here must not silently disable the bomb guard.
        match v.parse() {
            Ok(px) => opts = opts.max_pixels(px),
            Err(_) => {
                eprintln!("invalid --max-pixels value {v:?}");
                return usage();
            }
        }
    }

    let out = match decoder.decode(&data, opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("decode failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Diagnostic ranking only after a successful decode, so guarded or
    // malformed inputs never reach the (stream-scanning) predictor.
    if mode == Mode::Auto {
        if let Ok(decision) = decoder.predict(&data) {
            for p in &decision.predictions {
                eprintln!(
                    "  predicted {:<12} {:>9.3} ms",
                    p.mode.name(),
                    p.seconds * 1e3
                );
            }
        }
    }
    let output = arg_value(args, "-o").unwrap_or_else(|| format!("{input}.ppm"));
    if let Some(ycc) = out.planar() {
        // Planar output: three binary PGMs next to the requested path.
        for (plane, tag) in [(&ycc.y, "y"), (&ycc.cb, "cb"), (&ycc.cr, "cr")] {
            let path = format!("{output}.{tag}.pgm");
            if let Err(e) = write_pgm(&path, ycc.width, ycc.height, plane) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if let Err(e) = write_ppm(&output, out.image.width, out.image.height, &out.image.data) {
        eprintln!("cannot write {output}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "{} {}x{} decoded with {} on {} -> {}{}",
        input,
        out.image.width,
        out.image.height,
        out.mode.name(),
        platform.name,
        output,
        if out.truncated {
            " (truncated stream salvaged)"
        } else {
            ""
        }
    );
    let b = out.times;
    println!(
        "virtual time {:.3} ms  (huffman {:.3}, h2d {:.3}, kernels {:.3}, d2h {:.3}, cpu {:.3}, dispatch {:.3})",
        b.total * 1e3,
        b.huffman * 1e3,
        b.h2d * 1e3,
        b.kernels * 1e3,
        b.d2h * 1e3,
        b.cpu_parallel * 1e3,
        b.dispatch * 1e3
    );
    if let Some(p) = out.partition {
        println!(
            "partition: {} MCU rows on GPU, {} on CPU ({} Newton iterations)",
            p.gpu_mcu_rows, p.cpu_mcu_rows, p.iterations
        );
    }
    ExitCode::SUCCESS
}

fn cmd_predict(input: &str, args: &[String]) -> ExitCode {
    let data = match std::fs::read(input) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let platform = match arg_value(args, "--platform").as_deref().unwrap_or("gtx560") {
        "gt430" => Platform::gt430(),
        "gtx560" => Platform::gtx560(),
        "gtx680" => Platform::gtx680(),
        other => {
            eprintln!("unknown platform {other}");
            return usage();
        }
    };
    let model = match arg_value(args, "--model") {
        Some(path) => match std::fs::read_to_string(&path)
            .ok()
            .and_then(|t| hetjpeg_core::model::PerformanceModel::load_str(&t))
        {
            Some(m) => m,
            None => {
                eprintln!("cannot load model from {path}");
                return ExitCode::FAILURE;
            }
        },
        None => platform.untrained_model(),
    };
    let threads: usize = arg_value(args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let decoder = match Decoder::builder()
        .platform(platform.clone())
        .model(model)
        .threads(threads)
        .build()
    {
        Ok(d) => d,
        Err(e) => {
            eprintln!("invalid decoder configuration: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Progressive (SOF2) streams have no per-mode cost model; the server
    // prices them from measured shard throughput instead.
    let decision = match decoder.predict(&data) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot predict {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{input} on {}: would choose {}",
        platform.name,
        decision.mode.name()
    );
    for p in &decision.predictions {
        println!(
            "  {:<12} {:>9.3} ms{}",
            p.mode.name(),
            p.seconds * 1e3,
            if p.mode == decision.mode {
                "  <- chosen"
            } else {
                ""
            }
        );
    }
    ExitCode::SUCCESS
}

fn cmd_encode(input: &str, args: &[String]) -> ExitCode {
    let (w, h, rgb) = match read_ppm(input) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("cannot read PPM {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let quality: u8 = arg_value(args, "--quality")
        .and_then(|v| v.parse().ok())
        .unwrap_or(85);
    let subsampling = match arg_value(args, "--subsampling").as_deref().unwrap_or("422") {
        "444" => Subsampling::S444,
        "422" => Subsampling::S422,
        "420" => Subsampling::S420,
        other => {
            eprintln!("unknown subsampling {other}");
            return usage();
        }
    };
    let restart: usize = arg_value(args, "--restart")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let jpeg = match encode_rgb(
        &rgb,
        w as u32,
        h as u32,
        &EncodeParams {
            quality,
            subsampling,
            restart_interval: restart,
        },
    ) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("encode failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let output = arg_value(args, "-o").unwrap_or_else(|| format!("{input}.jpg"));
    if let Err(e) = std::fs::write(&output, &jpeg) {
        eprintln!("cannot write {output}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "{input} {w}x{h} -> {output} ({} bytes, q{quality}, {}, {:.3} B/px)",
        jpeg.len(),
        subsampling.notation(),
        jpeg.len() as f64 / (w * h) as f64
    );
    ExitCode::SUCCESS
}

fn cmd_info(input: &str) -> ExitCode {
    let data = match std::fs::read(input) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if hetjpeg_jpeg::progressive::is_progressive(&data) {
        return cmd_info_progressive(input, &data);
    }
    let parsed = match parse_jpeg(&data) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("not a decodable baseline JPEG: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{input}:");
    println!(
        "  {}x{} {}",
        parsed.frame.width,
        parsed.frame.height,
        parsed.frame.subsampling.notation()
    );
    println!("  file size      {} bytes", parsed.file_size);
    println!(
        "  entropy density {:.4} bytes/pixel (Eq. 3)",
        parsed.entropy_density()
    );
    println!("  restart interval {}", parsed.frame.restart_interval);
    if let Ok(geom) = hetjpeg_jpeg::geometry::Geometry::new(
        parsed.frame.width,
        parsed.frame.height,
        parsed.frame.subsampling,
    ) {
        println!(
            "  {} x {} MCUs ({} blocks)",
            geom.mcus_x, geom.mcus_y, geom.total_blocks
        );
        let segs = hetjpeg_jpeg::entropy::split_restart_segments(&parsed, &geom);
        println!(
            "  {} independently decodable entropy segment(s)",
            segs.len()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_info_progressive(input: &str, data: &[u8]) -> ExitCode {
    let parsed = match hetjpeg_jpeg::progressive::parse_progressive(data) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("not a decodable progressive JPEG: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{input}: progressive (SOF2)");
    println!(
        "  {}x{} {}",
        parsed.frame.width,
        parsed.frame.height,
        parsed.frame.subsampling.notation()
    );
    println!("  file size      {} bytes", parsed.file_size);
    println!(
        "  entropy density {:.4} bytes/pixel (Eq. 3)",
        parsed.entropy_density()
    );
    println!(
        "  {} scan(s), {} refinement pass(es){}",
        parsed.scans.len(),
        parsed.refinement_scans(),
        if parsed.complete {
            ""
        } else {
            " (truncated: no EOI)"
        }
    );
    for (i, scan) in parsed.scans.iter().enumerate() {
        let h = &scan.header;
        println!(
            "    scan {:2}: {} comp(s), Ss={} Se={} Ah={} Al={}, {} bytes",
            i + 1,
            h.comps.len(),
            h.ss,
            h.se,
            h.ah,
            h.al,
            scan.data.len()
        );
    }
    if let Some(d) = &parsed.damage {
        println!("  structural damage after last recovered scan: {d}");
    }
    ExitCode::SUCCESS
}

fn write_pgm(path: &str, w: usize, h: usize, plane: &[u8]) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(plane.len() + 32);
    out.extend_from_slice(format!("P5\n{w} {h}\n255\n").as_bytes());
    out.extend_from_slice(plane);
    std::fs::write(path, out)
}

fn write_ppm(path: &str, w: usize, h: usize, rgb: &[u8]) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(rgb.len() + 32);
    out.extend_from_slice(format!("P6\n{w} {h}\n255\n").as_bytes());
    out.extend_from_slice(rgb);
    std::fs::write(path, out)
}

fn read_ppm(path: &str) -> Result<(usize, usize, Vec<u8>), String> {
    let data = std::fs::read(path).map_err(|e| e.to_string())?;
    // Parse the P6 header: magic, width, height, maxval, then raw bytes.
    let mut fields = Vec::new();
    let mut pos = 0usize;
    while fields.len() < 4 && pos < data.len() {
        // Skip whitespace and comments.
        while pos < data.len() && (data[pos].is_ascii_whitespace()) {
            pos += 1;
        }
        if pos < data.len() && data[pos] == b'#' {
            while pos < data.len() && data[pos] != b'\n' {
                pos += 1;
            }
            continue;
        }
        let start = pos;
        while pos < data.len() && !data[pos].is_ascii_whitespace() {
            pos += 1;
        }
        fields.push(String::from_utf8_lossy(&data[start..pos]).to_string());
    }
    if fields.len() < 4 || fields[0] != "P6" {
        return Err("expected binary PPM (P6)".into());
    }
    let w: usize = fields[1].parse().map_err(|_| "bad width")?;
    let h: usize = fields[2].parse().map_err(|_| "bad height")?;
    if fields[3] != "255" {
        return Err("only maxval 255 supported".into());
    }
    pos += 1; // single whitespace after maxval
    let body = data
        .get(pos..pos + w * h * 3)
        .ok_or("truncated pixel data")?;
    Ok((w, h, body.to_vec()))
}
